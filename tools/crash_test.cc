// crash_test: the durability gauntlet. For N seeded iterations, fork a
// writer child that appends a deterministic statement stream to a journal
// in fsync mode through a FaultInjectingEnv configured to tear a write or
// fail an fsync at seeded points and then _exit — a real process death with
// whatever half-record made it to the file. The parent then recovers and
// asserts the ARIES-style contract:
//
//   1. recovery always succeeds (torn tails truncate, never fail),
//   2. every acknowledged (fsynced) statement is present,
//   3. the recovered database equals a reference replay of the surviving
//      statement prefix, byte for byte,
//   4. the RecoveryReport's accounting matches the file.
//
// Usage:
//   crash_test [--iterations=50] [--seed=1 | --seed=1..5]
//              [--statements=120] [--dir=/tmp/...]
//
// Exit code 0 iff every iteration of every seed holds the contract.

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/model/database.h"
#include "src/storage/binary_format.h"
#include "src/storage/io_env.h"
#include "src/storage/journal.h"
#include "src/storage/text_format.h"

namespace vqldb {
namespace {

// The deterministic workload: object declarations interleaved with facts
// about already-declared objects. One statement per journal record.
std::vector<std::string> MakeStatements(uint64_t seed, size_t count) {
  Rng rng(seed ^ 0xABCDEF0123456789ULL);
  std::vector<std::string> out;
  size_t objects = 0;
  for (size_t i = 0; i < count; ++i) {
    if (objects == 0 || rng.Bernoulli(0.4)) {
      out.push_back("object o" + std::to_string(objects) + " { name: \"v" +
                    std::to_string(objects) + "\", idx: " +
                    std::to_string(i) + " }.");
      ++objects;
    } else {
      size_t target = rng.UniformU64(objects);
      out.push_back("touched(o" + std::to_string(target) + ", " +
                    std::to_string(i) + ").");
    }
  }
  return out;
}

// Child body: append the stream through the fault env, acknowledging each
// fsynced statement by growing the ack file by one byte (itself fsynced, so
// the ack count on disk never exceeds the durable statement count).
int RunWriterChild(const std::string& journal_path,
                   const std::string& ack_path, uint64_t fault_seed,
                   const std::vector<std::string>& statements) {
  FaultOptions faults;
  faults.seed = fault_seed;
  faults.write_fault_p = 0.05;
  faults.sync_fault_p = 0.02;
  faults.crash_on_fault = true;
  FaultInjectingEnv env(Env::Default(), faults);

  Journal::Options jopts;
  jopts.durability = Journal::Durability::kFsync;
  jopts.env = &env;
  auto journal = Journal::Open(journal_path, jopts);
  if (!journal.ok()) return 3;

  auto ack = Env::Default()->NewAppendableFile(ack_path);
  if (!ack.ok()) return 3;

  for (const std::string& statement : statements) {
    if (!journal->Append(statement).ok()) return 2;  // non-crash fault
    // Acknowledge only after the fsynced append returned OK.
    if (!(*ack)->Append("a").ok() || !(*ack)->Sync().ok()) return 2;
  }
  return 0;
}

struct Flags {
  size_t iterations = 25;
  uint64_t seed_lo = 1, seed_hi = 1;
  size_t statements = 120;
  std::string dir;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      size_t n = std::strlen(name);
      return arg.compare(0, n, name) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--iterations=")) {
      flags->iterations = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--statements=")) {
      flags->statements = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--dir=")) {
      flags->dir = v;
    } else if (const char* v = value_of("--seed=")) {
      const char* dots = std::strstr(v, "..");
      char* end = nullptr;
      flags->seed_lo = std::strtoull(v, &end, 10);
      flags->seed_hi = dots != nullptr
                           ? std::strtoull(dots + 2, nullptr, 10)
                           : flags->seed_lo;
      if (flags->seed_hi < flags->seed_lo) return false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return flags->iterations > 0 && flags->statements > 0;
}

// One fork/kill/recover cycle. Returns true when the contract holds.
// `crashes`/`truncations` count iterations where the child was killed at an
// injected fault / recovery cut a torn tail — proof the harness is actually
// exercising the crash paths, reported in the final summary.
bool RunIteration(const std::string& dir, uint64_t seed, size_t iteration,
                  size_t statement_count, size_t* crashes,
                  size_t* truncations) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal_path = dir + "/journal.wal";
  const std::string ack_path = dir + "/acked";
  const uint64_t fault_seed = seed * 1000003ULL + iteration;
  std::vector<std::string> statements =
      MakeStatements(seed * 7919ULL + iteration, statement_count);

  pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    ::_exit(RunWriterChild(journal_path, ack_path, fault_seed, statements));
  }
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    std::perror("waitpid");
    return false;
  }
  if (!WIFEXITED(wstatus)) {
    std::fprintf(stderr, "seed %llu iter %zu: child died abnormally (0x%x)\n",
                 (unsigned long long)seed, iteration, wstatus);
    return false;
  }
  int child_code = WEXITSTATUS(wstatus);
  if (child_code == FaultInjectingEnv::kCrashExitCode) ++*crashes;
  if (child_code != 0 && child_code != 2 &&
      child_code != FaultInjectingEnv::kCrashExitCode) {
    std::fprintf(stderr, "seed %llu iter %zu: child exit %d (setup failure)\n",
                 (unsigned long long)seed, iteration, child_code);
    return false;
  }

  // Acked = bytes in the ack file: statements whose fsynced append was
  // acknowledged before the crash.
  size_t acked = 0;
  {
    struct stat st;
    if (::stat(ack_path.c_str(), &st) == 0) {
      acked = static_cast<size_t>(st.st_size);
    }
  }

  // Contract 1: recovery succeeds whatever the crash left behind.
  VideoDatabase recovered;
  auto report = Journal::Replay(journal_path, &recovered);
  if (!report.ok()) {
    std::fprintf(stderr, "seed %llu iter %zu: recovery failed: %s\n",
                 (unsigned long long)seed, iteration,
                 report.status().ToString().c_str());
    return false;
  }

  if (report->truncated) ++*truncations;

  // Contract 2: no acknowledged statement is lost.
  if (report->statements_replayed < acked) {
    std::fprintf(stderr,
                 "seed %llu iter %zu: LOST DATA: %zu acked, %zu recovered\n",
                 (unsigned long long)seed, iteration, acked,
                 report->statements_replayed);
    return false;
  }

  // Contract 3: the recovered database equals a reference replay of the
  // surviving prefix.
  VideoDatabase reference;
  for (size_t i = 0; i < report->records_replayed; ++i) {
    auto loaded = TextFormat::Load(statements[i], &reference);
    if (!loaded.ok()) {
      std::fprintf(stderr, "seed %llu iter %zu: reference replay failed: %s\n",
                   (unsigned long long)seed, iteration,
                   loaded.status().ToString().c_str());
      return false;
    }
  }
  auto recovered_bytes = BinaryFormat::Serialize(recovered);
  auto reference_bytes = BinaryFormat::Serialize(reference);
  if (!recovered_bytes.ok() || !reference_bytes.ok() ||
      *recovered_bytes != *reference_bytes) {
    std::fprintf(stderr,
                 "seed %llu iter %zu: recovered database diverges from the "
                 "reference replay of %zu records\n",
                 (unsigned long long)seed, iteration,
                 report->records_replayed);
    return false;
  }

  // Contract 4: the report's byte accounting matches the file.
  struct stat st;
  size_t file_size =
      ::stat(journal_path.c_str(), &st) == 0 ? (size_t)st.st_size : 0;
  if (report->truncated != (report->bytes_dropped > 0) ||
      report->bytes_dropped > file_size ||
      (report->truncated && report->records_dropped == 0)) {
    std::fprintf(stderr,
                 "seed %llu iter %zu: inconsistent RecoveryReport "
                 "(truncated=%d dropped=%zu bytes=%zu file=%zu)\n",
                 (unsigned long long)seed, iteration, (int)report->truncated,
                 report->records_dropped, report->bytes_dropped, file_size);
    return false;
  }

  // Bonus: the atomic snapshot of the recovered state round-trips.
  const std::string snapshot_path = dir + "/state.vqdb";
  if (!BinaryFormat::Save(recovered, snapshot_path).ok()) {
    std::fprintf(stderr, "seed %llu iter %zu: snapshot save failed\n",
                 (unsigned long long)seed, iteration);
    return false;
  }
  auto reloaded = BinaryFormat::Load(snapshot_path);
  auto reloaded_bytes =
      reloaded.ok() ? BinaryFormat::Serialize(*reloaded)
                    : Result<std::string>(reloaded.status());
  if (!reloaded_bytes.ok() || *reloaded_bytes != *recovered_bytes) {
    std::fprintf(stderr, "seed %llu iter %zu: snapshot round-trip diverged\n",
                 (unsigned long long)seed, iteration);
    return false;
  }
  return true;
}

}  // namespace
}  // namespace vqldb

int main(int argc, char** argv) {
  using namespace vqldb;
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    std::fprintf(stderr,
                 "usage: crash_test [--iterations=N] [--seed=A[..B]] "
                 "[--statements=M] [--dir=path]\n");
    return 1;
  }
  if (flags.dir.empty()) {
    flags.dir = "/tmp/vqldb_crash_test_" + std::to_string(::getpid());
  }

  size_t total = 0, crashes = 0, truncations = 0;
  for (uint64_t seed = flags.seed_lo; seed <= flags.seed_hi; ++seed) {
    for (size_t i = 0; i < flags.iterations; ++i) {
      if (!RunIteration(flags.dir, seed, i, flags.statements, &crashes,
                        &truncations)) {
        std::fprintf(stderr, "crash_test: FAILED (seed %llu iteration %zu)\n",
                     (unsigned long long)seed, i);
        return 1;
      }
      ++total;
    }
  }
  std::filesystem::remove_all(flags.dir);
  std::printf(
      "crash_test: OK (%zu iterations, seeds %llu..%llu, %zu injected "
      "crashes, %zu torn tails truncated, 0 acknowledged statements lost)\n",
      total, (unsigned long long)flags.seed_lo,
      (unsigned long long)flags.seed_hi, crashes, truncations);
  return 0;
}
