// crash_test: the durability gauntlet. For N seeded iterations, fork a
// writer child that appends a deterministic statement stream to a journal
// in fsync mode through a FaultInjectingEnv configured to tear a write or
// fail an fsync at seeded points and then _exit — a real process death with
// whatever half-record made it to the file. The parent then recovers and
// asserts the ARIES-style contract:
//
//   1. recovery always succeeds (torn tails truncate, never fail),
//   2. every acknowledged (fsynced) statement is present,
//   3. the recovered database equals a reference replay of the surviving
//      statement prefix, byte for byte,
//   4. the RecoveryReport's accounting matches the file.
//
// Usage:
//   crash_test [--iterations=50] [--seed=1 | --seed=1..5]
//              [--statements=120] [--dir=/tmp/...]
//
// With --kill-shard the gauntlet runs against a ShardedArchive instead: the
// child applies a multi-tenant workload with the fault schedule aimed at ONE
// victim shard's files (FaultOptions::path_substring) and dies at an injected
// fault. The parent then reopens the archive and asserts the fault-isolation
// contract:
//
//   1. the archive opens whatever the crash left (per-shard recovery
//      isolates; it never fails the whole archive),
//   2. healthy shards serve (partial) answers while the victim recovers,
//   3. every unaffected shard is byte-identical to a reference replay of
//      exactly its acknowledged statements,
//   4. the victim holds a prefix of its stream no shorter than its
//      acknowledged count — no fsync-acked fact is ever lost,
//   5. on poisoned iterations (a CRC-valid but foreign record appended to
//      the victim's journal) the victim fails permanently: strict queries
//      refuse with Unavailable and partial queries are marked PARTIAL —
//      never a silently complete answer.
//
//   crash_test --kill-shard [--iterations=250] [--seed=A[..B]]
//              [--statements=120] [--shards=3] [--dir=/tmp/...]
//
// Exit code 0 iff every iteration of every seed holds the contract.

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <atomic>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <thread>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/model/database.h"
#include "src/storage/binary_format.h"
#include "src/storage/io_env.h"
#include "src/storage/journal.h"
#include "src/storage/shard_store.h"
#include "src/storage/text_format.h"

namespace vqldb {
namespace {

// The deterministic workload: object declarations interleaved with facts
// about already-declared objects. One statement per journal record.
std::vector<std::string> MakeStatements(uint64_t seed, size_t count) {
  Rng rng(seed ^ 0xABCDEF0123456789ULL);
  std::vector<std::string> out;
  size_t objects = 0;
  for (size_t i = 0; i < count; ++i) {
    if (objects == 0 || rng.Bernoulli(0.4)) {
      out.push_back("object o" + std::to_string(objects) + " { name: \"v" +
                    std::to_string(objects) + "\", idx: " +
                    std::to_string(i) + " }.");
      ++objects;
    } else {
      size_t target = rng.UniformU64(objects);
      out.push_back("touched(o" + std::to_string(target) + ", " +
                    std::to_string(i) + ").");
    }
  }
  return out;
}

// Child body: append the stream through the fault env, acknowledging each
// fsynced statement by growing the ack file by one byte (itself fsynced, so
// the ack count on disk never exceeds the durable statement count).
int RunWriterChild(const std::string& journal_path,
                   const std::string& ack_path, uint64_t fault_seed,
                   const std::vector<std::string>& statements) {
  FaultOptions faults;
  faults.seed = fault_seed;
  faults.write_fault_p = 0.05;
  faults.sync_fault_p = 0.02;
  faults.crash_on_fault = true;
  FaultInjectingEnv env(Env::Default(), faults);

  Journal::Options jopts;
  jopts.durability = Journal::Durability::kFsync;
  jopts.env = &env;
  auto journal = Journal::Open(journal_path, jopts);
  if (!journal.ok()) return 3;

  auto ack = Env::Default()->NewAppendableFile(ack_path);
  if (!ack.ok()) return 3;

  for (const std::string& statement : statements) {
    if (!journal->Append(statement).ok()) return 2;  // non-crash fault
    // Acknowledge only after the fsynced append returned OK.
    if (!(*ack)->Append("a").ok() || !(*ack)->Sync().ok()) return 2;
  }
  return 0;
}

struct Flags {
  size_t iterations = 25;
  uint64_t seed_lo = 1, seed_hi = 1;
  size_t statements = 120;
  std::string dir;
  bool kill_shard = false;
  size_t shards = 3;
};

// ---------------------------------------------------------------------------
// --kill-shard mode
// ---------------------------------------------------------------------------

// One tenant per shard, found by probing the exported routing hash — the
// child and the parent derive the same mapping independently.
std::vector<std::string> TenantsPerShard(size_t shard_count) {
  std::vector<std::string> tenants(shard_count);
  std::vector<bool> found(shard_count, false);
  size_t remaining = shard_count;
  for (int i = 0; remaining > 0; ++i) {
    std::string tenant = "tenant" + std::to_string(i);
    size_t shard = static_cast<size_t>(TenantHash(tenant) % shard_count);
    if (!found[shard]) {
      found[shard] = true;
      tenants[shard] = tenant;
      --remaining;
    }
  }
  return tenants;
}

// The deterministic multi-tenant workload: statements round-robin over the
// shards; symbols are shard-local ("s<shard>o<k>") so each shard's stream
// replays independently.
struct ShardStatement {
  size_t shard = 0;
  std::string text;
};

std::vector<ShardStatement> MakeShardStatements(uint64_t seed, size_t count,
                                                size_t shard_count) {
  Rng rng(seed ^ 0x5157ACE5157ACE51ULL);
  std::vector<size_t> objects(shard_count, 0);
  std::vector<ShardStatement> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t shard = i % shard_count;
    std::string prefix = "s" + std::to_string(shard) + "o";
    ShardStatement statement;
    statement.shard = shard;
    if (objects[shard] == 0 || rng.Bernoulli(0.4)) {
      statement.text = "object " + prefix + std::to_string(objects[shard]) +
                       " { idx: " + std::to_string(i) + " }.";
      ++objects[shard];
    } else {
      size_t target = rng.UniformU64(objects[shard]);
      statement.text = "touched(" + prefix + std::to_string(target) + ", " +
                       std::to_string(i) + ").";
    }
    out.push_back(std::move(statement));
  }
  return out;
}

// Child body: apply the workload through an archive whose fault schedule is
// aimed at the victim shard's files. Each acknowledged statement grows that
// shard's ack file by one fsynced byte.
int RunShardWriterChild(const std::string& root, uint64_t fault_seed,
                        size_t shard_count, size_t victim,
                        const std::vector<ShardStatement>& statements,
                        const std::vector<std::string>& tenants) {
  FaultOptions faults;
  faults.seed = fault_seed;
  faults.write_fault_p = 0.05;
  faults.sync_fault_p = 0.02;
  faults.crash_on_fault = true;
  faults.path_substring = "shard_" + std::to_string(victim) + "/";
  FaultInjectingEnv env(Env::Default(), faults);

  ShardedArchive::Options options;
  options.shard_count = shard_count;
  options.env = &env;
  options.durability = Journal::Durability::kFsync;
  auto archive = ShardedArchive::Open(root, std::move(options));
  if (!archive.ok()) return 3;

  std::vector<std::unique_ptr<WritableFile>> acks;
  for (size_t s = 0; s < shard_count; ++s) {
    auto ack = Env::Default()->NewAppendableFile(root + "/acked_" +
                                                 std::to_string(s));
    if (!ack.ok()) return 3;
    acks.push_back(std::move(*ack));
  }

  for (const ShardStatement& statement : statements) {
    if (!(*archive)->Apply(tenants[statement.shard], statement.text).ok()) {
      return 2;  // non-crash fault (e.g. the shard degraded under us)
    }
    // Acknowledge only after the fsynced apply returned OK.
    if (!acks[statement.shard]->Append("a").ok() ||
        !acks[statement.shard]->Sync().ok()) {
      return 2;
    }
  }
  return 0;
}

size_t AckedCount(const std::string& root, size_t shard) {
  struct stat st;
  std::string path = root + "/acked_" + std::to_string(shard);
  return ::stat(path.c_str(), &st) == 0 ? static_cast<size_t>(st.st_size) : 0;
}

Result<std::string> ReferenceBytes(
    const std::vector<ShardStatement>& statements, size_t shard,
    size_t prefix) {
  VideoDatabase reference;
  size_t applied = 0;
  for (const ShardStatement& statement : statements) {
    if (statement.shard != shard) continue;
    if (applied == prefix) break;
    VQLDB_ASSIGN_OR_RETURN(LoadedProgram loaded,
                           TextFormat::Load(statement.text, &reference));
    (void)loaded;
    ++applied;
  }
  if (applied < prefix) {
    return Status::InvalidArgument("prefix longer than the shard's stream");
  }
  return BinaryFormat::Serialize(reference);
}

// One fork / kill-one-shard / recover cycle.
bool RunKillShardIteration(const std::string& dir, uint64_t seed,
                           size_t iteration, size_t statement_count,
                           size_t shard_count, size_t* crashes,
                           size_t* poisoned_runs) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const uint64_t fault_seed = seed * 1000003ULL + iteration;
  const size_t victim = static_cast<size_t>((seed + iteration) % shard_count);
  const std::vector<std::string> tenants = TenantsPerShard(shard_count);
  const std::vector<ShardStatement> statements =
      MakeShardStatements(seed * 7919ULL + iteration, statement_count,
                          shard_count);
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "kill-shard seed %llu iter %zu (victim %zu): %s\n",
                 (unsigned long long)seed, iteration, victim, what);
    return false;
  };

  pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    ::_exit(RunShardWriterChild(dir, fault_seed, shard_count, victim,
                                statements, tenants));
  }
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    std::perror("waitpid");
    return false;
  }
  if (!WIFEXITED(wstatus)) return fail("child died abnormally");
  int child_code = WEXITSTATUS(wstatus);
  if (child_code == FaultInjectingEnv::kCrashExitCode) ++*crashes;
  if (child_code != 0 && child_code != 2 &&
      child_code != FaultInjectingEnv::kCrashExitCode) {
    return fail("child setup failure");
  }

  std::vector<size_t> acked(shard_count);
  std::vector<size_t> sent(shard_count, 0);
  for (size_t s = 0; s < shard_count; ++s) acked[s] = AckedCount(dir, s);
  for (const ShardStatement& statement : statements) ++sent[statement.shard];

  // Every fifth iteration: poison the victim's journal with a CRC-valid
  // record no writer would produce (a rule). Replay must treat it as
  // corruption, not a torn tail, so the victim fails permanently.
  const bool poisoned = iteration % 5 == 4;
  if (poisoned) {
    ++*poisoned_runs;
    const std::string journal_path =
        dir + "/shard_" + std::to_string(victim) + "/journal-0.wal";
    // The crash may have left a torn tail; replay stops there and would
    // never reach a record appended after it. Trim to the valid prefix so
    // the poison record is what replay actually meets.
    VideoDatabase scratch;
    auto replayed = Journal::Replay(journal_path, &scratch);
    if (replayed.ok() && replayed->bytes_dropped > 0) {
      std::error_code ec;
      uintmax_t size = std::filesystem::file_size(journal_path, ec);
      if (!ec) {
        std::filesystem::resize_file(journal_path,
                                     size - replayed->bytes_dropped, ec);
      }
    }
    std::ofstream raw(journal_path, std::ios::binary | std::ios::app);
    std::string record = Journal::FrameRecord("p(X) <- q(X).");
    raw.write(record.data(), static_cast<std::streamsize>(record.size()));
  }

  // Contract 1: the archive opens; recovery failures isolate per shard.
  // The recovery hook pins the victim so we can observe contract 2.
  std::mutex mu;
  std::condition_variable cv;
  bool victim_entered = false;
  bool release = false;
  ShardedArchive::Options options;
  options.shard_count = shard_count;
  options.backoff.max_attempts = 1;
  options.backoff.initial_ms = 1;
  options.sleep_between_retries = false;
  options.recovery_threads = shard_count;
  options.defer_recovery = true;
  options.recovery_hook = [&](uint32_t shard_id) {
    if (shard_id != victim) return;
    std::unique_lock<std::mutex> lock(mu);
    victim_entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  auto opened = ShardedArchive::Open(dir, std::move(options));
  if (!opened.ok()) return fail("archive open failed");
  ShardedArchive& archive = **opened;

  std::thread recovery([&] { (void)archive.RecoverAll(); });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return victim_entered; });
  }
  for (size_t s = 0; s < shard_count; ++s) {
    if (s == victim) continue;
    while (archive.shard_state(static_cast<uint32_t>(s)) !=
           ShardedArchive::ShardState::kHealthy) {
      std::this_thread::yield();
    }
  }

  // Contract 2: healthy shards answer (marked partial) while the victim is
  // still recovering.
  ShardedArchive::QueryOptions partial_opts;
  partial_opts.allow_partial = true;
  auto during = archive.Query("?- touched(X, I).", partial_opts);
  bool during_ok = during.ok() && during->partial &&
                   during->shards_answered == shard_count - 1;
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  recovery.join();
  if (!during_ok) return fail("healthy shards did not serve during recovery");

  // Contracts 3 + 4: unaffected shards hold exactly their acked stream;
  // the victim holds a prefix in [acked, sent].
  for (size_t s = 0; s < shard_count; ++s) {
    const uint32_t id = static_cast<uint32_t>(s);
    if (s == victim && poisoned) {
      if (archive.shard_state(id) != ShardedArchive::ShardState::kFailed) {
        return fail("poisoned victim did not fail");
      }
      continue;
    }
    if (archive.shard_state(id) != ShardedArchive::ShardState::kHealthy) {
      return fail("shard did not recover to healthy");
    }
    auto recovered_bytes = BinaryFormat::Serialize(*archive.shard_db(id));
    if (!recovered_bytes.ok()) return fail("serialize failed");
    if (s != victim) {
      auto expect = ReferenceBytes(statements, s, acked[s]);
      if (!expect.ok() || *expect != *recovered_bytes) {
        return fail("unaffected shard diverges from its acked stream");
      }
    } else {
      bool matched = false;
      for (size_t m = acked[s]; m <= sent[s] && !matched; ++m) {
        auto expect = ReferenceBytes(statements, s, m);
        if (expect.ok() && *expect == *recovered_bytes) matched = true;
      }
      if (!matched) {
        return fail("victim is not a >=acked prefix of its stream "
                    "(acked data lost or foreign data surfaced)");
      }
    }
  }

  // Contract 5: with a failed shard, strict queries refuse and partial
  // queries are marked — never a silently complete answer.
  if (poisoned) {
    auto strict = archive.Query("?- touched(X, I).");
    if (strict.ok() || !strict.status().IsUnavailable()) {
      return fail("strict query on a failed shard did not refuse");
    }
    auto partial = archive.Query("?- touched(X, I).", partial_opts);
    if (!partial.ok() || !partial->partial) {
      return fail("partial query on a failed shard was not marked");
    }
    bool victim_reported = false;
    for (const auto& report : partial->reports) {
      if (report.shard_id == victim && !report.error.empty()) {
        victim_reported = true;
      }
    }
    if (!victim_reported) return fail("failed shard missing from the report");
  }
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      size_t n = std::strlen(name);
      return arg.compare(0, n, name) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--iterations=")) {
      flags->iterations = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--statements=")) {
      flags->statements = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--dir=")) {
      flags->dir = v;
    } else if (arg == "--kill-shard") {
      flags->kill_shard = true;
    } else if (const char* v = value_of("--shards=")) {
      flags->shards = static_cast<size_t>(std::strtoul(v, nullptr, 10));
      if (flags->shards < 2) return false;  // need healthy shards to isolate
    } else if (const char* v = value_of("--seed=")) {
      const char* dots = std::strstr(v, "..");
      char* end = nullptr;
      flags->seed_lo = std::strtoull(v, &end, 10);
      flags->seed_hi = dots != nullptr
                           ? std::strtoull(dots + 2, nullptr, 10)
                           : flags->seed_lo;
      if (flags->seed_hi < flags->seed_lo) return false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return flags->iterations > 0 && flags->statements > 0;
}

// One fork/kill/recover cycle. Returns true when the contract holds.
// `crashes`/`truncations` count iterations where the child was killed at an
// injected fault / recovery cut a torn tail — proof the harness is actually
// exercising the crash paths, reported in the final summary.
bool RunIteration(const std::string& dir, uint64_t seed, size_t iteration,
                  size_t statement_count, size_t* crashes,
                  size_t* truncations) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal_path = dir + "/journal.wal";
  const std::string ack_path = dir + "/acked";
  const uint64_t fault_seed = seed * 1000003ULL + iteration;
  std::vector<std::string> statements =
      MakeStatements(seed * 7919ULL + iteration, statement_count);

  pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    ::_exit(RunWriterChild(journal_path, ack_path, fault_seed, statements));
  }
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    std::perror("waitpid");
    return false;
  }
  if (!WIFEXITED(wstatus)) {
    std::fprintf(stderr, "seed %llu iter %zu: child died abnormally (0x%x)\n",
                 (unsigned long long)seed, iteration, wstatus);
    return false;
  }
  int child_code = WEXITSTATUS(wstatus);
  if (child_code == FaultInjectingEnv::kCrashExitCode) ++*crashes;
  if (child_code != 0 && child_code != 2 &&
      child_code != FaultInjectingEnv::kCrashExitCode) {
    std::fprintf(stderr, "seed %llu iter %zu: child exit %d (setup failure)\n",
                 (unsigned long long)seed, iteration, child_code);
    return false;
  }

  // Acked = bytes in the ack file: statements whose fsynced append was
  // acknowledged before the crash.
  size_t acked = 0;
  {
    struct stat st;
    if (::stat(ack_path.c_str(), &st) == 0) {
      acked = static_cast<size_t>(st.st_size);
    }
  }

  // Contract 1: recovery succeeds whatever the crash left behind.
  VideoDatabase recovered;
  auto report = Journal::Replay(journal_path, &recovered);
  if (!report.ok()) {
    std::fprintf(stderr, "seed %llu iter %zu: recovery failed: %s\n",
                 (unsigned long long)seed, iteration,
                 report.status().ToString().c_str());
    return false;
  }

  if (report->truncated) ++*truncations;

  // Contract 2: no acknowledged statement is lost.
  if (report->statements_replayed < acked) {
    std::fprintf(stderr,
                 "seed %llu iter %zu: LOST DATA: %zu acked, %zu recovered\n",
                 (unsigned long long)seed, iteration, acked,
                 report->statements_replayed);
    return false;
  }

  // Contract 3: the recovered database equals a reference replay of the
  // surviving prefix.
  VideoDatabase reference;
  for (size_t i = 0; i < report->records_replayed; ++i) {
    auto loaded = TextFormat::Load(statements[i], &reference);
    if (!loaded.ok()) {
      std::fprintf(stderr, "seed %llu iter %zu: reference replay failed: %s\n",
                   (unsigned long long)seed, iteration,
                   loaded.status().ToString().c_str());
      return false;
    }
  }
  auto recovered_bytes = BinaryFormat::Serialize(recovered);
  auto reference_bytes = BinaryFormat::Serialize(reference);
  if (!recovered_bytes.ok() || !reference_bytes.ok() ||
      *recovered_bytes != *reference_bytes) {
    std::fprintf(stderr,
                 "seed %llu iter %zu: recovered database diverges from the "
                 "reference replay of %zu records\n",
                 (unsigned long long)seed, iteration,
                 report->records_replayed);
    return false;
  }

  // Contract 4: the report's byte accounting matches the file.
  struct stat st;
  size_t file_size =
      ::stat(journal_path.c_str(), &st) == 0 ? (size_t)st.st_size : 0;
  if (report->truncated != (report->bytes_dropped > 0) ||
      report->bytes_dropped > file_size ||
      (report->truncated && report->records_dropped == 0)) {
    std::fprintf(stderr,
                 "seed %llu iter %zu: inconsistent RecoveryReport "
                 "(truncated=%d dropped=%zu bytes=%zu file=%zu)\n",
                 (unsigned long long)seed, iteration, (int)report->truncated,
                 report->records_dropped, report->bytes_dropped, file_size);
    return false;
  }

  // Bonus: the atomic snapshot of the recovered state round-trips.
  const std::string snapshot_path = dir + "/state.vqdb";
  if (!BinaryFormat::Save(recovered, snapshot_path).ok()) {
    std::fprintf(stderr, "seed %llu iter %zu: snapshot save failed\n",
                 (unsigned long long)seed, iteration);
    return false;
  }
  auto reloaded = BinaryFormat::Load(snapshot_path);
  auto reloaded_bytes =
      reloaded.ok() ? BinaryFormat::Serialize(*reloaded)
                    : Result<std::string>(reloaded.status());
  if (!reloaded_bytes.ok() || *reloaded_bytes != *recovered_bytes) {
    std::fprintf(stderr, "seed %llu iter %zu: snapshot round-trip diverged\n",
                 (unsigned long long)seed, iteration);
    return false;
  }
  return true;
}

}  // namespace
}  // namespace vqldb

int main(int argc, char** argv) {
  using namespace vqldb;
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    std::fprintf(stderr,
                 "usage: crash_test [--kill-shard] [--iterations=N] "
                 "[--seed=A[..B]] [--statements=M] [--shards=S] "
                 "[--dir=path]\n");
    return 1;
  }
  if (flags.dir.empty()) {
    flags.dir = "/tmp/vqldb_crash_test_" + std::to_string(::getpid());
  }

  size_t total = 0, crashes = 0, truncations = 0, poisoned = 0;
  for (uint64_t seed = flags.seed_lo; seed <= flags.seed_hi; ++seed) {
    for (size_t i = 0; i < flags.iterations; ++i) {
      bool ok = flags.kill_shard
                    ? RunKillShardIteration(flags.dir, seed, i,
                                            flags.statements, flags.shards,
                                            &crashes, &poisoned)
                    : RunIteration(flags.dir, seed, i, flags.statements,
                                   &crashes, &truncations);
      if (!ok) {
        std::fprintf(stderr, "crash_test: FAILED (seed %llu iteration %zu)\n",
                     (unsigned long long)seed, i);
        return 1;
      }
      ++total;
    }
  }
  std::filesystem::remove_all(flags.dir);
  if (flags.kill_shard) {
    std::printf(
        "crash_test --kill-shard: OK (%zu iterations, seeds %llu..%llu, "
        "%zu shards, %zu injected crashes, %zu poisoned recoveries isolated, "
        "0 acknowledged statements lost)\n",
        total, (unsigned long long)flags.seed_lo,
        (unsigned long long)flags.seed_hi, flags.shards, crashes, poisoned);
  } else {
    std::printf(
        "crash_test: OK (%zu iterations, seeds %llu..%llu, %zu injected "
        "crashes, %zu torn tails truncated, 0 acknowledged statements lost)\n",
        total, (unsigned long long)flags.seed_lo,
        (unsigned long long)flags.seed_hi, crashes, truncations);
  }
  return 0;
}
