// server_chaos: the chaos harness for the vqldb service layer.
//
// Forks a server process (sharded archive + armed transport faults), then
// attacks it from the parent: a ramp to thousands of concurrent
// connections, seeded iterations of queries / writes / garbage frames /
// torn requests / abrupt disconnects / slow clients / shard kill+recover
// cycles / concurrent bursts, and finally a SIGTERM graceful drain with a
// request still in flight.
//
// The contract checked on every interaction:
//   * no crash (the server child must exit 0 after SIGTERM),
//   * no hang (every client call is bounded by timeouts),
//   * every admitted request gets exactly one well-formed response or a
//     structured shed (Overloaded / DeadlineExceeded / Unavailable /
//     parse error) — raw transport errors are tolerated only because the
//     server is *injecting* torn frames and disconnects, and the server's
//     own drain ledger must agree: admitted == responded, dropped == 0.
//
//   --connections=<n>   concurrent connection ramp (default 10000)
//   --iterations=<n>    chaos iterations (default 250)
//   --seed=<n>          the schedule seed (default 20260808)
//   --out=<file>        benchmark JSON (default BENCH_server.json)
//   --shards=<n>        archive shard count (default 4)
//   --keep              keep the scratch archive directory

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/wire.h"
#include "src/storage/shard_store.h"

namespace {

using vqldb::ParseNonNegativeInt;
using vqldb::Rng;
using vqldb::StartsWith;
using vqldb::Status;
using vqldb::StatusCode;
using vqldb::server::Client;
using vqldb::server::MsgType;
using vqldb::server::Request;
using vqldb::server::Response;

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int g_failures = 0;

void Fail(const std::string& what) {
  ++g_failures;
  std::cerr << "CONTRACT VIOLATION: " << what << "\n";
}

// A response status the protocol allows: success or a structured error.
bool IsStructured(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kParseError:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOverloaded:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

// A transport-level failure. Tolerated only because the server injects
// torn frames / disconnects; it must never leak engine internals.
bool IsTransport(const Status& st) {
  return st.IsIOError() || st.IsUnavailable() || st.IsCorruption();
}

void CheckCallOutcome(const vqldb::Result<Response>& response,
                      const char* what) {
  if (response.ok()) {
    if (!IsStructured(response->status)) {
      Fail(std::string(what) + ": unexpected wire status " +
           std::to_string(static_cast<int>(response->status)));
    }
    return;
  }
  if (!IsTransport(response.status())) {
    Fail(std::string(what) + ": unexpected client error " +
         response.status().ToString());
  }
}

// Raw (non-Client) socket helpers for the ramp and for malformed input.
int RawConnect(uint16_t port, int timeout_ms = 5000) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  timeval tv{timeout_ms / 1000, (timeout_ms % 1000) * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool RawSend(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

// One ping round trip over a raw ramp connection; false = connection dead
// (expected under injected faults — the caller reconnects).
bool RawPing(int fd) {
  Request ping;
  ping.type = MsgType::kPing;
  ping.text = "ramp";
  if (!RawSend(fd, vqldb::server::EncodeRequest(ping))) return false;
  std::string buf;
  char chunk[512];
  for (;;) {
    std::string payload;
    size_t consumed = 0;
    auto dr = vqldb::server::DecodeFrame(buf, 0, &payload, &consumed);
    if (dr == vqldb::server::DecodeResult::kOk) return true;
    if (dr == vqldb::server::DecodeResult::kBad) return false;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

struct DrainSummary {
  uint64_t admitted = 0, responded = 0, shed = 0, dropped = 0, unflushed = 0;
  bool parsed = false;
};

DrainSummary ParseSummary(const std::string& line) {
  DrainSummary s;
  auto field = [&](const char* key) -> uint64_t {
    std::string needle = std::string(key) + "=";
    size_t pos = line.find(needle);
    if (pos == std::string::npos) return 0;
    return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
  };
  s.admitted = field("admitted");
  s.responded = field("responded");
  s.shed = field("shed");
  s.dropped = field("dropped");
  s.unflushed = field("unflushed");
  s.parsed = line.find("admitted=") != std::string::npos;
  return s;
}

vqldb::server::Server* g_chaos_server = nullptr;

void ChaosSigterm(int) {
  if (g_chaos_server != nullptr) g_chaos_server->RequestShutdown();
}

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  int64_t connections = 10000;
  int64_t iterations = 250;
  int64_t seed = 20260808;
  int64_t shard_count = 4;
  std::string out_path = "BENCH_server.json";
  bool keep = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--connections=")) {
      ParseNonNegativeInt(arg.substr(14), &connections);
    } else if (StartsWith(arg, "--iterations=")) {
      ParseNonNegativeInt(arg.substr(13), &iterations);
    } else if (StartsWith(arg, "--seed=")) {
      ParseNonNegativeInt(arg.substr(7), &seed);
    } else if (StartsWith(arg, "--shards=")) {
      ParseNonNegativeInt(arg.substr(9), &shard_count);
    } else if (StartsWith(arg, "--out=")) {
      out_path = arg.substr(6);
    } else if (arg == "--keep") {
      keep = true;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }

  std::string scratch = "chaos_archive_" + std::to_string(::getpid());
  std::filesystem::create_directories(scratch);

  int info_pipe[2];
  if (::pipe(info_pipe) != 0) {
    std::cerr << "pipe: " << std::strerror(errno) << "\n";
    return 2;
  }

  pid_t child = ::fork();
  if (child < 0) {
    std::cerr << "fork: " << std::strerror(errno) << "\n";
    return 2;
  }

  if (child == 0) {
    // ---- server process ---------------------------------------------------
    ::close(info_pipe[0]);
    ::signal(SIGPIPE, SIG_IGN);

    vqldb::ShardedArchive::Options aopts;
    aopts.shard_count = static_cast<size_t>(shard_count);
    auto archive = vqldb::ShardedArchive::Open(scratch, std::move(aopts));
    if (!archive.ok()) ::_exit(3);
    // Seed every tenant shard with a small graph + one rule.
    for (int t = 0; t < 8; ++t) {
      std::string tenant = "t" + std::to_string(t);
      std::string program;
      for (int k = 0; k < 4; ++k) {
        std::string a = "a" + std::to_string(t) + "_" + std::to_string(k);
        std::string b = "b" + std::to_string(t) + "_" + std::to_string(k);
        program += "object " + a + " { }. object " + b + " { }. e(" + a +
                   ", " + b + ").\n";
      }
      if (!(*archive)->Apply(tenant, program).ok()) ::_exit(3);
    }
    if (!(*archive)->Apply("t0", "p(X, Y) <- e(X, Y).").ok()) ::_exit(3);

    vqldb::server::ServerOptions sopts;
    sopts.port = 0;
    sopts.io_threads = 1;
    sopts.worker_threads = 2;
    sopts.gate.max_concurrent = 2;
    sopts.gate.max_queued = 16;
    sopts.gate.queue_timeout = std::chrono::milliseconds(250);
    sopts.default_deadline_ms = 2000;
    sopts.max_deadline_ms = 5000;
    sopts.idle_timeout_ms = 120'000;  // the ramp must survive the run
    sopts.drain_grace_ms = 3000;
    sopts.max_connections = static_cast<size_t>(connections) + 512;
    sopts.enable_admin = true;
    sopts.faults.seed = static_cast<uint64_t>(seed);
    sopts.faults.torn_response_p = 0.01;
    sopts.faults.disconnect_p = 0.01;
    sopts.faults.accept_fail_p = 0.002;
    sopts.faults.accept_burst = 4;

    vqldb::server::Server server(archive->get(), sopts);
    if (!server.Start().ok()) ::_exit(3);
    g_chaos_server = &server;
    struct sigaction sa {};
    sa.sa_handler = ChaosSigterm;
    ::sigaction(SIGTERM, &sa, nullptr);

    std::string port_line = "PORT " + std::to_string(server.port()) + "\n";
    if (::write(info_pipe[1], port_line.data(), port_line.size()) < 0) {
      ::_exit(3);
    }
    server.WaitUntilShutdownAndDrain();
    std::string summary = "SUMMARY " + server.DrainSummary() + "\n";
    [[maybe_unused]] ssize_t n =
        ::write(info_pipe[1], summary.data(), summary.size());
    ::close(info_pipe[1]);
    ::_exit(0);
  }

  // ---- attacker process -----------------------------------------------
  ::close(info_pipe[1]);
  ::signal(SIGPIPE, SIG_IGN);

  auto read_line = [&](std::string* line, int timeout_ms) -> bool {
    line->clear();
    uint64_t deadline = NowUs() + static_cast<uint64_t>(timeout_ms) * 1000;
    char c;
    for (;;) {
      ssize_t n = ::read(info_pipe[0], &c, 1);
      if (n == 1) {
        if (c == '\n') return true;
        line->push_back(c);
        continue;
      }
      if (n == 0) return false;
      if (errno == EINTR) continue;
      if (NowUs() > deadline) return false;
    }
  };

  std::string line;
  if (!read_line(&line, 30'000) || !StartsWith(line, "PORT ")) {
    std::cerr << "server did not report a port\n";
    ::kill(child, SIGKILL);
    return 2;
  }
  uint16_t port = static_cast<uint16_t>(std::atoi(line.c_str() + 5));
  std::cerr << "server up on port " << port << "\n";

  Rng rng(static_cast<uint64_t>(seed));

  // Phase 1: ramp to N concurrent connections.
  std::vector<int> ramp;
  ramp.reserve(static_cast<size_t>(connections));
  while (ramp.size() < static_cast<size_t>(connections)) {
    int fd = RawConnect(port);
    if (fd < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    ramp.push_back(fd);
  }
  std::cerr << "ramped to " << ramp.size() << " connections\n";

  Client::Options copts;
  copts.port = port;
  copts.io_timeout_ms = 10'000;
  Client worker(copts);

  // Accept-fault bursts can eat a connect; verify liveness with retries.
  bool alive = false;
  for (int i = 0; i < 20 && !alive; ++i) {
    auto pong = worker.Ping();
    alive = pong.ok();
  }
  if (!alive) {
    Fail("server unreachable after ramp");
  }

  std::vector<double> latencies_ms;
  uint64_t calls = 0, sheds = 0, transport_errors = 0, ok_calls = 0;
  std::vector<uint32_t> killed_shards;
  uint64_t fact_id = 0;

  // Phase 2: seeded chaos iterations.
  for (int64_t iter = 0; iter < iterations; ++iter) {
    uint64_t action = rng.UniformU64(10);
    switch (action) {
      case 0: {  // write through a random tenant
        std::string tenant = "t" + std::to_string(rng.UniformU64(8));
        std::string x = "x" + std::to_string(fact_id++);
        std::string y = "y" + std::to_string(fact_id++);
        auto response = worker.Statement("@tenant:" + tenant + " object " + x +
                                         " { }. object " + y + " { }. e(" + x +
                                         ", " + y + ").");
        ++calls;
        CheckCallOutcome(response, "statement");
        if (response.ok() && response->status == StatusCode::kOverloaded) {
          ++sheds;
        }
        if (!response.ok()) ++transport_errors;
        break;
      }
      case 1: {  // garbage bytes, then abrupt close
        int fd = RawConnect(port);
        if (fd >= 0) {
          RawSend(fd, "THIS IS NOT A FRAME\r\n\r\n!!");
          ::close(fd);
        }
        break;
      }
      case 2: {  // torn *request*: half a frame, then abrupt close
        int fd = RawConnect(port);
        if (fd >= 0) {
          Request req;
          req.type = MsgType::kQuery;
          req.text = "?- p(X, Y).";
          std::string frame = vqldb::server::EncodeRequest(req);
          RawSend(fd, frame.substr(0, frame.size() / 2));
          ::close(fd);
        }
        break;
      }
      case 3: {  // abrupt churn in the ramp
        for (int k = 0; k < 8 && !ramp.empty(); ++k) {
          size_t victim = rng.UniformU64(ramp.size());
          ::close(ramp[victim]);
          ramp[victim] = ramp.back();
          ramp.pop_back();
        }
        break;
      }
      case 4: {  // shard kill / recover cycle
        if (killed_shards.empty() || rng.Bernoulli(0.4)) {
          uint32_t shard = static_cast<uint32_t>(
              rng.UniformU64(static_cast<uint64_t>(shard_count)));
          auto response = worker.Admin("shard kill " + std::to_string(shard));
          CheckCallOutcome(response, "shard kill");
          if (response.ok() && response->ok()) killed_shards.push_back(shard);
        } else {
          uint32_t shard = killed_shards.back();
          auto response =
              worker.Admin("shard recover " + std::to_string(shard));
          CheckCallOutcome(response, "shard recover");
          if (response.ok() && response->ok()) killed_shards.pop_back();
        }
        break;
      }
      case 5: {  // deliberate parse error must come back structured
        auto response = worker.Query("?- p(X.");
        ++calls;
        CheckCallOutcome(response, "bad query");
        if (response.ok() && response->status == StatusCode::kOk) {
          Fail("parse error answered OK");
        }
        if (!response.ok()) ++transport_errors;
        break;
      }
      case 6: {  // concurrent burst
        std::atomic<uint64_t> burst_sheds{0}, burst_transport{0};
        std::vector<std::thread> threads;
        for (int t = 0; t < 6; ++t) {
          threads.emplace_back([&, t] {
            Client c(copts);
            auto response =
                c.Query("?- p(X, Y).", /*deadline_ms=*/1000,
                        /*allow_partial=*/(t % 2) == 0);
            CheckCallOutcome(response, "burst query");
            if (response.ok() &&
                response->status == StatusCode::kOverloaded) {
              burst_sheds.fetch_add(1);
            }
            if (!response.ok()) burst_transport.fetch_add(1);
          });
        }
        for (auto& t : threads) t.join();
        calls += threads.size();
        sheds += burst_sheds.load();
        transport_errors += burst_transport.load();
        break;
      }
      default: {  // plain query (the common case), with latency tracking
        bool partial = rng.Bernoulli(0.5);
        uint32_t deadline = partial ? 1000 : 2000;
        uint64_t start = NowUs();
        auto response = worker.Query("?- p(X, Y).", deadline, partial);
        ++calls;
        CheckCallOutcome(response, "query");
        if (response.ok()) {
          if (response->status == StatusCode::kOk) {
            ++ok_calls;
            latencies_ms.push_back(
                static_cast<double>(NowUs() - start) / 1000.0);
          } else if (response->status == StatusCode::kOverloaded) {
            ++sheds;
          }
        } else {
          ++transport_errors;
        }
        break;
      }
    }

    // Keep a sample of the ramp warm (and detect injected disconnects).
    for (int k = 0; k < 4 && !ramp.empty(); ++k) {
      size_t idx = rng.UniformU64(ramp.size());
      if (!RawPing(ramp[idx])) {
        ::close(ramp[idx]);
        int fd = RawConnect(port);
        if (fd >= 0) {
          ramp[idx] = fd;
        } else {
          ramp[idx] = ramp.back();
          ramp.pop_back();
        }
      }
    }

    if ((iter + 1) % 50 == 0) {
      std::cerr << "iteration " << (iter + 1) << "/" << iterations << ", "
                << ramp.size() << " conns, " << ok_calls << " ok, " << sheds
                << " shed, " << transport_errors << " transport\n";
    }
  }

  // Phase 3: graceful drain with a request in flight. The in-flight call
  // must still produce exactly one outcome (an answer or a structured
  // shed), and the server's own ledger must balance.
  std::thread inflight([&] {
    Client c(copts);
    auto response = c.Query("?- p(X, Y).", 2000, true);
    CheckCallOutcome(response, "in-flight-at-drain query");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ::kill(child, SIGTERM);
  inflight.join();

  DrainSummary summary;
  if (read_line(&line, 30'000) && StartsWith(line, "SUMMARY ")) {
    summary = ParseSummary(line);
  }
  int wstatus = 0;
  pid_t waited = ::waitpid(child, &wstatus, 0);
  bool clean_exit = waited == child && WIFEXITED(wstatus) &&
                    WEXITSTATUS(wstatus) == 0;
  if (!clean_exit) {
    Fail("server child did not exit cleanly (status " +
         std::to_string(wstatus) + ")");
    ::kill(child, SIGKILL);
  }
  if (!summary.parsed) {
    Fail("server did not report a drain summary");
  } else {
    if (summary.dropped != 0) {
      Fail("drain dropped " + std::to_string(summary.dropped) +
           " admitted requests");
    }
    if (summary.admitted != summary.responded) {
      Fail("drain ledger unbalanced: admitted=" +
           std::to_string(summary.admitted) +
           " responded=" + std::to_string(summary.responded));
    }
  }

  for (int fd : ramp) ::close(fd);
  if (!keep) {
    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);
  }

  double p50 = Percentile(latencies_ms, 0.50);
  double p99 = Percentile(latencies_ms, 0.99);
  double shed_rate =
      calls == 0 ? 0 : static_cast<double>(sheds) / static_cast<double>(calls);

  std::ofstream out(out_path, std::ios::trunc);
  out << "{\n"
      << "  \"bench\": \"server_chaos\",\n"
      << "  \"connections\": " << connections << ",\n"
      << "  \"iterations\": " << iterations << ",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"calls\": " << calls << ",\n"
      << "  \"ok_calls\": " << ok_calls << ",\n"
      << "  \"query_p50_ms\": " << p50 << ",\n"
      << "  \"query_p99_ms\": " << p99 << ",\n"
      << "  \"shed_rate\": " << shed_rate << ",\n"
      << "  \"transport_errors\": " << transport_errors << ",\n"
      << "  \"drain\": {\"admitted\": " << summary.admitted
      << ", \"responded\": " << summary.responded
      << ", \"shed\": " << summary.shed
      << ", \"dropped\": " << summary.dropped
      << ", \"unflushed\": " << summary.unflushed << "},\n"
      << "  \"contract_violations\": " << g_failures << "\n"
      << "}\n";
  out.close();

  if (g_failures != 0) {
    std::cerr << "FAIL: " << g_failures << " contract violations\n";
    return 1;
  }
  std::cerr << "PASS: " << calls << " calls, p50 " << p50 << " ms, p99 "
            << p99 << " ms, shed rate " << shed_rate << ", drain "
            << summary.admitted << "/" << summary.responded << "/"
            << summary.dropped << " admitted/responded/dropped\n";
  return 0;
}
