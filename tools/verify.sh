#!/usr/bin/env bash
# Gating verification: tier-1 test suite plus the ThreadSanitizer pass over
# the parallel engine. Run from the repository root:
#
#   tools/verify.sh [jobs]
#
# 1. Configure + build the default tree and run every `tier1`-labeled test.
# 2. Smoke-test the observability surface: a scripted vql run under
#    --metrics-out/--trace-out, with both artifacts schema-checked by
#    tools/obs_check.
# 3. Crash-recovery smoke: tools/crash_test forks writer children, kills
#    them at deterministically injected fault points, and asserts no
#    fsync-acknowledged statement is ever lost across 25 seeded iterations.
# 4. Deadline smoke: a heavy transitive-closure program under
#    `vql --timeout-ms=1` must fail with a clean "Deadline exceeded" error
#    and exit 4 (the deadline slot of the exit-code taxonomy) — a
#    structured failure, never an abort.
# 5. Resource-governance smoke: a heavy program under `vql
#    --mem-limit-bytes=` must fail with a clean "Resource exhausted" error
#    and the same session must still answer the next (selective) query;
#    tools/governor_test then runs the 250-iteration seeded fault-injection
#    gauntlet and the multi-threaded overload run, asserting
#    submitted == completed + shed with no corrupted state.
# 6. Columnar smoke: a join-heavy scripted vql run with and without
#    --no-merge-join must print byte-identical answers (merge joins are a
#    pure access-path change), and EXPLAIN ANALYZE must surface the join
#    strategy counters.
# 6a. Planner smoke: the same chain workload run under every forced
#    --strategy= (qsqr, magic, fixpoint) and under auto must print
#    byte-identical answers, --reorder must not change answers, EXPLAIN must
#    show the planner's strategy line (and mark forced choices), and
#    bench_planner's deterministic series must pass its own gates (auto
#    within 5% of the per-query best, >=5x bound-goal speedup vs fixpoint).
# 6b. Self-observation smoke: a workload under `vql --slow-ms=0` must answer
#    a sys_queries goal containing its own earlier query's fingerprint,
#    print slow-log entries via .slowlog, and emit a --slowlog-out JSON
#    that tools/obs_check validates.
# 6c. Shard smoke: a scripted `vql --archive` session writes through two
#    tenants, kills a shard, sees a marked-PARTIAL degraded answer, recovers
#    the shard, sees the full answer again, and lists sys_shards; the
#    --metrics-out snapshot must then contain the per-shard state gauge and
#    the recoveries counter (obs_check --require=).
# 6d. Shard crash gauntlet: tools/crash_test --kill-shard aims injected
#    faults at one shard's files across 25 seeded iterations and asserts
#    fault isolation — unaffected shards byte-identical to a reference
#    replay, the victim a prefix of its acked stream, poisoned journals
#    quarantined to strict-Unavailable / marked-partial answers.
# 6e. Server smoke: vqlsrv serves a seed program; four concurrent
#    `vql --connect=` sessions must all get their answers; remote exit codes
#    must distinguish a parse error (2) from success (0); `obs_check server`
#    validates the live /healthz schema and that /metrics?dump= serves bytes
#    identical to the file it writes; SIGTERM must drain with
#    "dropped=0" in the ledger line and flush the --metrics-out snapshot.
#    Then tools/server_chaos runs at smoke scale (the full 10k-connection /
#    250-iteration run writes BENCH_server.json out-of-band).
# 7. Configure + build with -DVQLDB_SANITIZE=address and run the governance,
#    dictionary, columnar, shard, and planner/QSQR tests under ASan (the
#    budget hierarchy
#    moves ownership across queries, caches, and rollbacks; the dictionary
#    arena and segment seal/merge paths juggle raw pointers; shard recovery
#    tears down and rebuilds per-shard databases — exactly where lifetime
#    bugs would live).
# 8. Configure + build with -DVQLDB_SANITIZE=thread and run the fixpoint
#    determinism test, the thread-pool tests, the admission-gate stress
#    test, the dictionary/columnar tests (lock-free Get, concurrent
#    interning, parallel seal digests), the shard-store test (parallel
#    per-shard recovery, scatter-gather over live shards), and the
#    strategy-equivalence property suite's parallel mode under TSan.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest -L tier1 =="
ctest --test-dir build -L tier1 --output-on-failure

echo "== observability smoke: vql --metrics-out/--trace-out + obs_check =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
./build/tools/vql --threads 2 \
    --metrics-out="$OBS_TMP/metrics.json" \
    --trace-out="$OBS_TMP/trace.json" >"$OBS_TMP/shell.out" <<'EOF'
object o1 { name: "David" }.
object o2 { name: "Philip" }.
interval gi1 { duration: (t > 0 and t < 10), entities: {o1, o2} }.
interval gi2 { duration: (t > 2 and t < 8), entities: {o2} }.
appears(O, G) <- Interval(G), Object(O), O in G.entities.
contains(G1, G2) <- Interval(G1), Interval(G2), G2.duration => G1.duration, G1 != G2.
explain analyze ?- contains(G1, G2).
.quit
EOF
grep -q "per rule:" "$OBS_TMP/shell.out" \
  || { echo "EXPLAIN ANALYZE output missing its profile table"; exit 1; }
./build/tools/obs_check metrics "$OBS_TMP/metrics.json"
./build/tools/obs_check trace "$OBS_TMP/trace.json"

echo "== crash-recovery smoke: crash_test --iterations=25 --seed=1 =="
./build/tools/crash_test --iterations=25 --seed=1 --dir="$OBS_TMP/crash"

echo "== deadline smoke: vql --timeout-ms=1 on a heavy program =="
{
  for i in $(seq 0 400); do echo "object n$i { }."; done
  for i in $(seq 0 399); do echo "edge(n$i, n$((i+1)))."; done
  echo "path(X, Y) <- edge(X, Y)."
  echo "path(X, Z) <- path(X, Y), edge(Y, Z)."
  echo "?- path(X, Y)."
  echo ".quit"
} > "$OBS_TMP/heavy.vql"
deadline_rc=0
./build/tools/vql --timeout-ms=1 <"$OBS_TMP/heavy.vql" >"$OBS_TMP/deadline.out" \
  || deadline_rc=$?
grep -q "Deadline exceeded" "$OBS_TMP/deadline.out" \
  || { echo "expected a structured Deadline exceeded error"; exit 1; }
[ "$deadline_rc" -eq 4 ] \
  || { echo "expected deadline exit code 4, got $deadline_rc"; exit 1; }

echo "== magic smoke: selective query answers identical with --no-magic =="
{
  for i in $(seq 0 60); do echo "object n$i { }."; done
  for i in $(seq 0 59); do echo "edge(n$i, n$((i+1)))."; done
  echo "path(X, Y) <- edge(X, Y)."
  echo "path(X, Z) <- path(X, Y), edge(Y, Z)."
  echo "?- path(n55, Y)."
  echo "?- path(X, n3)."
  echo ".quit"
} > "$OBS_TMP/magic.vql"
./build/tools/vql <"$OBS_TMP/magic.vql" >"$OBS_TMP/magic_on.out"
./build/tools/vql --no-magic --no-cache <"$OBS_TMP/magic.vql" >"$OBS_TMP/magic_off.out"
diff "$OBS_TMP/magic_on.out" "$OBS_TMP/magic_off.out" \
  || { echo "goal-directed answers diverge from the full fixpoint"; exit 1; }
grep -q "magic: on" <(./build/tools/vql <<< $'object a { }.\np(a).\nexplain ?- p(X).\n.quit') \
  || { echo "EXPLAIN is missing the magic status line"; exit 1; }

echo "== planner smoke: answers byte-identical across --strategy= =="
{
  for i in $(seq 0 60); do echo "object n$i { }."; done
  for i in $(seq 0 59); do echo "edge(n$i, n$((i+1)))."; done
  echo "path(X, Y) <- edge(X, Y)."
  echo "path(X, Z) <- path(X, Y), edge(Y, Z)."
  echo "?- path(n55, Y)."
  echo "?- path(X, n3)."
  echo "?- path(X, Y)."
  echo ".quit"
} > "$OBS_TMP/strategy.vql"
for s in qsqr magic fixpoint auto; do
  ./build/tools/vql --no-cache --strategy="$s" <"$OBS_TMP/strategy.vql" \
      >"$OBS_TMP/strategy_$s.out"
done
for s in magic fixpoint auto; do
  diff "$OBS_TMP/strategy_qsqr.out" "$OBS_TMP/strategy_$s.out" \
    || { echo "--strategy=$s answers diverge from --strategy=qsqr"; exit 1; }
done
./build/tools/vql --no-cache --reorder <"$OBS_TMP/strategy.vql" \
    >"$OBS_TMP/strategy_reorder.out"
diff "$OBS_TMP/strategy_qsqr.out" "$OBS_TMP/strategy_reorder.out" \
  || { echo "--reorder answers diverge from the written order"; exit 1; }
grep -q "strategy: " <(./build/tools/vql \
    <<< $'object a { }.\nobject b { }.\ne(a, b).\np(X, Y) <- e(X, Y).\nexplain ?- p(a, Y).\n.quit') \
  || { echo "EXPLAIN is missing the planner strategy line"; exit 1; }
grep -q "strategy: fixpoint (forced" <(./build/tools/vql --strategy=fixpoint \
    <<< $'object a { }.\nobject b { }.\ne(a, b).\np(X, Y) <- e(X, Y).\nexplain ?- p(a, Y).\n.quit') \
  || { echo "EXPLAIN does not mark a forced strategy"; exit 1; }

echo "== planner bench gate: bench_planner series (auto within 5% of best) =="
(cd "$OBS_TMP" && "$OLDPWD/build/bench/bench_planner" >/dev/null)

echo "== columnar smoke: join answers identical with --no-merge-join =="
{
  for i in $(seq 0 40); do echo "object n$i { }."; done
  for i in $(seq 0 39); do echo "edge(n$i, n$(((i*7+3) % 41)))."; done
  for i in $(seq 0 39); do echo "edge(n$i, n$(((i+1) % 41)))."; done
  echo "tri(X, Y, Z) <- edge(X, Y), edge(Y, Z), edge(Z, X)."
  echo "wedge(X, Z) <- edge(X, Y), edge(Y, Z)."
  echo "?- tri(X, Y, Z)."
  echo "?- wedge(n5, Z)."
  echo ".quit"
} > "$OBS_TMP/columnar.vql"
./build/tools/vql --no-magic --no-cache <"$OBS_TMP/columnar.vql" \
    >"$OBS_TMP/columnar_merge.out"
./build/tools/vql --no-magic --no-cache --no-merge-join <"$OBS_TMP/columnar.vql" \
    >"$OBS_TMP/columnar_hash.out"
diff "$OBS_TMP/columnar_merge.out" "$OBS_TMP/columnar_hash.out" \
  || { echo "merge-join answers diverge from the hash-index fixpoint"; exit 1; }
grep -q "join strategy:" <(./build/tools/vql \
    <<< $'object a { }.\nobject b { }.\ne(a, b).\np(X, Y) <- e(X, Y).\nexplain analyze ?- p(X, Y).\n.quit') \
  || { echo "EXPLAIN ANALYZE is missing the join strategy line"; exit 1; }

echo "== self-observation smoke: sys_queries + .slowlog + obs_check slowlog =="
{
  for i in $(seq 0 20); do echo "object n$i { }."; done
  for i in $(seq 0 19); do echo "edge(n$i, n$((i+1)))."; done
  echo "path(X, Y) <- edge(X, Y)."
  echo "path(X, Z) <- path(X, Y), edge(Y, Z)."
  echo "?- path(X, Y)."
  echo "?- path(X, Y)."
  echo "?- sys_queries(F, C, P50, P99, R, S)."
  echo ".slowlog 5"
  echo ".quit"
} > "$OBS_TMP/selfobs.vql"
./build/tools/vql --slow-ms=0 --slowlog-out="$OBS_TMP/slowlog.json" \
    <"$OBS_TMP/selfobs.vql" >"$OBS_TMP/selfobs.out"
grep -qF 'path($0, $1)' "$OBS_TMP/selfobs.out" \
  || { echo "sys_queries did not report the workload's own fingerprint"; exit 1; }
grep -q "slow-query log" "$OBS_TMP/selfobs.out" \
  || { echo ".slowlog printed no slow-query entries"; exit 1; }
./build/tools/obs_check slowlog "$OBS_TMP/slowlog.json"

echo "== shard smoke: kill a shard mid-session, degrade, recover =="
./build/tools/vql --archive="$OBS_TMP/shardarc" --archive-shards=2 \
    --metrics-out="$OBS_TMP/shard_metrics.json" \
    >"$OBS_TMP/shard.out" 2>&1 <<'EOF'
.tenant alice
object a1 { }.
tagged(a1).
.tenant bob
object b1 { }.
tagged(b1).
?- tagged(X).
.shard kill 0
.partial on
?- tagged(X).
.shard recover 0
.partial off
?- tagged(X).
?- sys_shards(S, St, F, R, D, Rec, E).
.shards
.quit
EOF
grep -q "PARTIAL" "$OBS_TMP/shard.out" \
  || { echo "degraded query was not marked PARTIAL"; exit 1; }
grep -q "shard 0 recovered" "$OBS_TMP/shard.out" \
  || { echo ".shard recover did not restore the killed shard"; exit 1; }
grep -q "healthy" "$OBS_TMP/shard.out" \
  || { echo "sys_shards/.shards reported no healthy shard"; exit 1; }
./build/tools/obs_check metrics "$OBS_TMP/shard_metrics.json" \
    --require=vqldb_shard_state_0 --require=vqldb_shard_state_1 \
    --require=vqldb_shard_recoveries_total

echo "== shard crash gauntlet: crash_test --kill-shard --iterations=25 =="
./build/tools/crash_test --kill-shard --iterations=25 --seed=1 --shards=3 \
    --dir="$OBS_TMP/ks"

echo "== governance smoke: vql --mem-limit-bytes= on a heavy program =="
{
  for i in $(seq 0 64); do echo "object n$i { }."; done
  for i in $(seq 0 63); do echo "edge(n$i, n$((i+1)))."; done
  echo "path(X, Y) <- edge(X, Y)."
  echo "path(X, Z) <- path(X, Y), edge(Y, Z)."
  echo "?- path(X, Y)."
  echo "?- edge(n0, Y)."
  echo ".quit"
} > "$OBS_TMP/governed.vql"
governed_rc=0
./build/tools/vql --mem-limit-bytes=60000 <"$OBS_TMP/governed.vql" \
    >"$OBS_TMP/governed.out" || governed_rc=$?
grep -q "Resource exhausted" "$OBS_TMP/governed.out" \
  || { echo "expected a structured Resource exhausted error"; exit 1; }
[ "$governed_rc" -eq 1 ] \
  || { echo "expected resource-exhausted exit code 1, got $governed_rc"; exit 1; }
grep -q "n1" "$OBS_TMP/governed.out" \
  || { echo "session did not answer the follow-up query after the trip"; exit 1; }

echo "== governance gauntlet: governor_test --iterations=250 =="
./build/tools/governor_test --iterations=250 --seed=1

echo "== overload smoke: governor_test --overload =="
./build/tools/governor_test --overload --threads=4 --per-thread=8

echo "== server smoke: vqlsrv start, concurrent clients, SIGTERM drain =="
{
  for i in $(seq 0 16); do echo "object s$i { }."; done
  for i in $(seq 0 15); do echo "e(s$i, s$((i+1)))."; done
  echo "p(X, Y) <- e(X, Y)."
} > "$OBS_TMP/served.vql"
./build/tools/vqlsrv "$OBS_TMP/served.vql" --admin \
    --metrics-out="$OBS_TMP/server_metrics.json" \
    >"$OBS_TMP/server.out" 2>&1 &
SRV_PID=$!
for i in $(seq 1 50); do
  SRV_PORT="$(sed -n 's/.*listening on 127.0.0.1://p' "$OBS_TMP/server.out")"
  [ -n "$SRV_PORT" ] && break
  sleep 0.1
done
[ -n "$SRV_PORT" ] || { echo "vqlsrv did not report a port"; exit 1; }

# Concurrent remote sessions: every query must be answered.
for c in 1 2 3 4; do
  printf '?- p(X, Y).\n.quit\n' \
    | ./build/tools/vql --connect="127.0.0.1:$SRV_PORT" \
    > "$OBS_TMP/client$c.out" &
done
wait $(jobs -p | grep -v "^$SRV_PID$") 2>/dev/null || true
for c in 1 2 3 4; do
  grep -q "s0, s1" "$OBS_TMP/client$c.out" \
    || { echo "remote client $c did not get its answer"; exit 1; }
done

# Exit-code taxonomy over the wire: parse error must exit 2, success 0.
printf '?- p(X.\n.quit\n' \
  | ./build/tools/vql --connect="127.0.0.1:$SRV_PORT" >/dev/null 2>&1 \
  && { echo "remote parse error must not exit 0"; exit 1; } \
  || [ $? -eq 2 ] || { echo "remote parse error must exit 2"; exit 1; }
printf '?- p(X, Y).\n.quit\n' \
  | ./build/tools/vql --connect="127.0.0.1:$SRV_PORT" >/dev/null \
  || { echo "remote success must exit 0"; exit 1; }

# Live /healthz schema + /metrics?dump= byte-identity.
./build/tools/obs_check server "127.0.0.1:$SRV_PORT" \
    --dump="$OBS_TMP/server_dump.prom"

# Graceful drain: SIGTERM, in-flight work finishes, ledger balances, and
# the metrics snapshot flushes on the way out.
kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo "vqlsrv did not exit 0 after SIGTERM"; exit 1; }
grep -q "drain complete: .*dropped=0" "$OBS_TMP/server.out" \
  || { echo "drain dropped admitted requests"; cat "$OBS_TMP/server.out"; exit 1; }
./build/tools/obs_check metrics "$OBS_TMP/server_metrics.json" \
    --require=vqldb_server_requests_total \
    --require=vqldb_server_admitted_dropped_total

echo "== server chaos (smoke scale): 300 connections, 40 iterations =="
./build/tools/server_chaos --connections=300 --iterations=40 --seed=11 \
    --out="$OBS_TMP/bench_server_smoke.json"

echo "== asan: build (-DVQLDB_SANITIZE=address) =="
cmake -B build-asan -S . -DVQLDB_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target budget_test query_gate_test resource_governor_test \
           term_dict_test columnar_test columnar_accounting_test \
           backoff_test shard_manifest_test shard_store_test \
           qsqr_test planner_test wire_test http_test snapshot_test \
           server_test

echo "== asan: budget + gate + governor + dictionary + columnar + shards + planner =="
./build-asan/tests/budget_test
./build-asan/tests/query_gate_test
./build-asan/tests/resource_governor_test
./build-asan/tests/term_dict_test
./build-asan/tests/columnar_test
./build-asan/tests/columnar_accounting_test
./build-asan/tests/backoff_test
./build-asan/tests/shard_manifest_test
./build-asan/tests/shard_store_test
./build-asan/tests/qsqr_test
./build-asan/tests/planner_test

echo "== asan: server protocol + end-to-end (framing, sessions, drain) =="
./build-asan/tests/wire_test
./build-asan/tests/http_test
./build-asan/tests/snapshot_test
./build-asan/tests/server_test

echo "== tsan: build (-DVQLDB_SANITIZE=thread) =="
cmake -B build-tsan -S . -DVQLDB_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target parallel_determinism_test thread_pool_test gate_stress_test \
           term_dict_test columnar_test stats_test shard_store_test \
           strategy_property_test server_test snapshot_isolation_test

echo "== tsan: parallel determinism + thread pool + gate stress + columnar + shards + strategies =="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/parallel_determinism_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/thread_pool_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/gate_stress_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/term_dict_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/columnar_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/stats_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/shard_store_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/strategy_property_test \
    --gtest_filter='*Parallel*'

echo "== tsan: server connection handling + snapshot isolation =="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/server_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/snapshot_isolation_test

echo "verify: OK"
