#!/usr/bin/env bash
# Gating verification: tier-1 test suite plus the ThreadSanitizer pass over
# the parallel engine. Run from the repository root:
#
#   tools/verify.sh [jobs]
#
# 1. Configure + build the default tree and run every `tier1`-labeled test.
# 2. Configure + build with -DVQLDB_SANITIZE=thread and run the fixpoint
#    determinism test and the thread-pool tests under TSan.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest -L tier1 =="
ctest --test-dir build -L tier1 --output-on-failure

echo "== tsan: build (-DVQLDB_SANITIZE=thread) =="
cmake -B build-tsan -S . -DVQLDB_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target parallel_determinism_test thread_pool_test

echo "== tsan: parallel determinism + thread pool =="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/parallel_determinism_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/thread_pool_test

echo "verify: OK"
