// obs_check: validates the observability artifacts vql emits, so scripted
// runs (tools/verify.sh, CI) can assert the files are well-formed instead of
// merely present.
//
//   obs_check metrics <file> [--require=<name>]...
//                              metrics JSON snapshot (--metrics-out); each
//                              --require'd metric must exist as a counter,
//                              gauge, or histogram
//   obs_check trace <file>     Chrome trace_event JSON (--trace-out); must
//                              contain at least one complete event
//   obs_check slowlog <file>   slow-query log JSON (--slowlog-out): required
//                              fields, phase timings summing within the
//                              total, and p50 <= p99 per fingerprint
//   obs_check server <host:port> [--dump=<path>]
//                              live service checks: /healthz must parse as
//                              JSON with the documented schema, and (with
//                              --dump, admin-enabled servers only) the
//                              /metrics?dump= response body must be
//                              byte-identical to the file the server wrote
//                              — the HTTP scrape and the --metrics-out
//                              export are the same render.
//
// Exit codes: 0 valid, 1 invalid content, 2 usage / unreadable file.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json_lite.h"
#include "src/obs/metrics.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"
#include "src/server/client.h"

namespace {

int Usage() {
  std::cerr << "usage: obs_check metrics <file> [--require=<name>]...\n"
            << "       obs_check trace|slowlog <file>\n"
            << "       obs_check server <host:port> [--dump=<path>]\n";
  return 2;
}

// The /healthz schema the service layer documents (DESIGN.md §13): required
// fields with their kinds, plus the mode-specific tail.
int CheckServer(const std::string& spec, const std::string& dump_path) {
  auto options = vqldb::server::ParseHostPort(spec);
  if (!options.ok()) {
    std::cerr << "obs_check: " << options.status().ToString() << "\n";
    return 2;
  }

  auto health = vqldb::server::HttpGet(options->host, options->port,
                                       "/healthz");
  if (!health.ok()) {
    std::cerr << "obs_check: /healthz: " << health.status().ToString()
              << "\n";
    return 1;
  }
  vqldb::obs::JsonValue doc;
  std::string error;
  if (!vqldb::obs::ParseJson(*health, &doc, &error)) {
    std::cerr << "obs_check: /healthz is not JSON: " << error << "\n";
    return 1;
  }
  auto require = [&](const char* key, bool ok_kind) {
    if (doc.Find(key) == nullptr) {
      std::cerr << "obs_check: /healthz missing field \"" << key << "\"\n";
      return false;
    }
    if (!ok_kind) {
      std::cerr << "obs_check: /healthz field \"" << key
                << "\" has the wrong type\n";
      return false;
    }
    return true;
  };
  const vqldb::obs::JsonValue* v;
  bool ok = true;
  ok &= require("status", (v = doc.Find("status")) && v->is_string());
  ok &= require("mode", (v = doc.Find("mode")) && v->is_string());
  ok &= require("draining", (v = doc.Find("draining")) && v->is_bool());
  for (const char* key : {"connections", "outstanding", "requests_total",
                          "admitted_total", "shed_total"}) {
    ok &= require(key, (v = doc.Find(key)) && v->is_number());
  }
  if (!ok) return 1;
  const std::string mode_value = doc.Find("mode")->string_value;
  if (mode_value == "single") {
    for (const char* key : {"epoch", "rules_epoch", "snapshots_built"}) {
      ok &= require(key, (v = doc.Find(key)) && v->is_number());
    }
  } else if (mode_value == "archive") {
    ok &= require("shards", (v = doc.Find("shards")) && v->is_array());
  } else {
    std::cerr << "obs_check: /healthz mode \"" << mode_value
              << "\" is neither \"single\" nor \"archive\"\n";
    ok = false;
  }
  if (!ok) return 1;

  auto metrics = vqldb::server::HttpGet(options->host, options->port,
                                        "/metrics");
  if (!metrics.ok()) {
    std::cerr << "obs_check: /metrics: " << metrics.status().ToString()
              << "\n";
    return 1;
  }
  if (metrics->find("vqldb_server_requests_total") == std::string::npos) {
    std::cerr << "obs_check: /metrics lacks vqldb_server_* counters\n";
    return 1;
  }

  if (!dump_path.empty()) {
    // One render, two sinks: the response bytes and the dumped file must be
    // identical, or a scraper and a file consumer would disagree.
    auto served = vqldb::server::HttpGet(
        options->host, options->port, "/metrics?dump=" + dump_path);
    if (!served.ok()) {
      std::cerr << "obs_check: /metrics?dump=: " << served.status().ToString()
                << " (is the server running with --admin?)\n";
      return 1;
    }
    std::ifstream dumped(dump_path, std::ios::binary);
    if (!dumped) {
      std::cerr << "obs_check: server did not write " << dump_path << "\n";
      return 1;
    }
    std::ostringstream file_bytes;
    file_bytes << dumped.rdbuf();
    if (file_bytes.str() != *served) {
      std::cerr << "obs_check: /metrics?dump= response (" << served->size()
                << " bytes) differs from " << dump_path << " ("
                << file_bytes.str().size() << " bytes)\n";
      return 1;
    }
  }

  std::cout << "ok: " << spec << " healthz schema valid, metrics served"
            << (dump_path.empty() ? "" : ", dump byte-identical") << "\n";
  return 0;
}

bool MetricsSnapshotHas(const vqldb::obs::JsonValue& doc,
                        const std::string& name) {
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const vqldb::obs::JsonValue* group = doc.Find(section);
    if (group == nullptr) continue;
    for (const auto& [metric, value] : group->object) {
      (void)value;
      if (metric == name) return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string mode = argv[1];
  std::string path = argv[2];
  if (mode == "server") {
    std::string dump_path;
    for (int i = 3; i < argc; ++i) {
      std::string arg = argv[i];
      const std::string prefix = "--dump=";
      if (arg.rfind(prefix, 0) != 0 || arg.size() == prefix.size()) {
        return Usage();
      }
      dump_path = arg.substr(prefix.size());
    }
    return CheckServer(path, dump_path);
  }
  std::vector<std::string> required;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--require=";
    if (mode != "metrics" || arg.rfind(prefix, 0) != 0 ||
        arg.size() == prefix.size()) {
      return Usage();
    }
    required.push_back(arg.substr(prefix.size()));
  }

  std::ifstream file(path);
  if (!file) {
    std::cerr << "obs_check: cannot read " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  std::string error;

  if (mode == "metrics") {
    if (!vqldb::obs::ValidateMetricsJson(text, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    vqldb::obs::JsonValue doc;
    if (!vqldb::obs::ParseJson(text, &doc, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    std::vector<std::string> missing;
    for (const std::string& name : required) {
      if (!MetricsSnapshotHas(doc, name)) missing.push_back(name);
    }
    if (!missing.empty()) {
      std::cerr << "obs_check: " << path << ": missing required metric";
      if (missing.size() > 1) std::cerr << "s";
      for (const std::string& name : missing) std::cerr << " " << name;
      std::cerr << "\n";
      return 1;
    }
    std::cout << "ok: " << path << " is a valid metrics snapshot";
    if (!required.empty()) {
      std::cout << " (" << required.size() << " required metric"
                << (required.size() > 1 ? "s" : "") << " present)";
    }
    std::cout << "\n";
    return 0;
  }

  if (mode == "trace") {
    if (!vqldb::obs::ValidateChromeTrace(text, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    vqldb::obs::JsonValue doc;
    if (!vqldb::obs::ParseJson(text, &doc, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    if (doc.array.empty()) {
      std::cerr << "obs_check: " << path << " contains no trace events\n";
      return 1;
    }
    std::cout << "ok: " << path << " is a valid Chrome trace ("
              << doc.array.size() << " events)\n";
    return 0;
  }

  if (mode == "slowlog") {
    if (!vqldb::obs::ValidateSlowLogJson(text, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    std::cout << "ok: " << path << " is a valid slow-query log\n";
    return 0;
  }

  return Usage();
}
