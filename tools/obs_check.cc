// obs_check: validates the observability artifacts vql emits, so scripted
// runs (tools/verify.sh, CI) can assert the files are well-formed instead of
// merely present.
//
//   obs_check metrics <file> [--require=<name>]...
//                              metrics JSON snapshot (--metrics-out); each
//                              --require'd metric must exist as a counter,
//                              gauge, or histogram
//   obs_check trace <file>     Chrome trace_event JSON (--trace-out); must
//                              contain at least one complete event
//   obs_check slowlog <file>   slow-query log JSON (--slowlog-out): required
//                              fields, phase timings summing within the
//                              total, and p50 <= p99 per fingerprint
//
// Exit codes: 0 valid, 1 invalid content, 2 usage / unreadable file.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json_lite.h"
#include "src/obs/metrics.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"

namespace {

int Usage() {
  std::cerr << "usage: obs_check metrics <file> [--require=<name>]...\n"
            << "       obs_check trace|slowlog <file>\n";
  return 2;
}

bool MetricsSnapshotHas(const vqldb::obs::JsonValue& doc,
                        const std::string& name) {
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const vqldb::obs::JsonValue* group = doc.Find(section);
    if (group == nullptr) continue;
    for (const auto& [metric, value] : group->object) {
      (void)value;
      if (metric == name) return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string mode = argv[1];
  std::string path = argv[2];
  std::vector<std::string> required;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--require=";
    if (mode != "metrics" || arg.rfind(prefix, 0) != 0 ||
        arg.size() == prefix.size()) {
      return Usage();
    }
    required.push_back(arg.substr(prefix.size()));
  }

  std::ifstream file(path);
  if (!file) {
    std::cerr << "obs_check: cannot read " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  std::string error;

  if (mode == "metrics") {
    if (!vqldb::obs::ValidateMetricsJson(text, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    vqldb::obs::JsonValue doc;
    if (!vqldb::obs::ParseJson(text, &doc, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    std::vector<std::string> missing;
    for (const std::string& name : required) {
      if (!MetricsSnapshotHas(doc, name)) missing.push_back(name);
    }
    if (!missing.empty()) {
      std::cerr << "obs_check: " << path << ": missing required metric";
      if (missing.size() > 1) std::cerr << "s";
      for (const std::string& name : missing) std::cerr << " " << name;
      std::cerr << "\n";
      return 1;
    }
    std::cout << "ok: " << path << " is a valid metrics snapshot";
    if (!required.empty()) {
      std::cout << " (" << required.size() << " required metric"
                << (required.size() > 1 ? "s" : "") << " present)";
    }
    std::cout << "\n";
    return 0;
  }

  if (mode == "trace") {
    if (!vqldb::obs::ValidateChromeTrace(text, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    vqldb::obs::JsonValue doc;
    if (!vqldb::obs::ParseJson(text, &doc, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    if (doc.array.empty()) {
      std::cerr << "obs_check: " << path << " contains no trace events\n";
      return 1;
    }
    std::cout << "ok: " << path << " is a valid Chrome trace ("
              << doc.array.size() << " events)\n";
    return 0;
  }

  if (mode == "slowlog") {
    if (!vqldb::obs::ValidateSlowLogJson(text, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    std::cout << "ok: " << path << " is a valid slow-query log\n";
    return 0;
  }

  return Usage();
}
