// obs_check: validates the observability artifacts vql emits, so scripted
// runs (tools/verify.sh, CI) can assert the files are well-formed instead of
// merely present.
//
//   obs_check metrics <file>   metrics JSON snapshot (--metrics-out)
//   obs_check trace <file>     Chrome trace_event JSON (--trace-out); must
//                              contain at least one complete event
//   obs_check slowlog <file>   slow-query log JSON (--slowlog-out): required
//                              fields, phase timings summing within the
//                              total, and p50 <= p99 per fingerprint
//
// Exit codes: 0 valid, 1 invalid content, 2 usage / unreadable file.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/obs/json_lite.h"
#include "src/obs/metrics.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"

namespace {

int Usage() {
  std::cerr << "usage: obs_check metrics|trace|slowlog <file>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return Usage();
  std::string mode = argv[1];
  std::string path = argv[2];

  std::ifstream file(path);
  if (!file) {
    std::cerr << "obs_check: cannot read " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  std::string error;

  if (mode == "metrics") {
    if (!vqldb::obs::ValidateMetricsJson(text, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    std::cout << "ok: " << path << " is a valid metrics snapshot\n";
    return 0;
  }

  if (mode == "trace") {
    if (!vqldb::obs::ValidateChromeTrace(text, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    vqldb::obs::JsonValue doc;
    if (!vqldb::obs::ParseJson(text, &doc, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    if (doc.array.empty()) {
      std::cerr << "obs_check: " << path << " contains no trace events\n";
      return 1;
    }
    std::cout << "ok: " << path << " is a valid Chrome trace ("
              << doc.array.size() << " events)\n";
    return 0;
  }

  if (mode == "slowlog") {
    if (!vqldb::obs::ValidateSlowLogJson(text, &error)) {
      std::cerr << "obs_check: " << path << ": " << error << "\n";
      return 1;
    }
    std::cout << "ok: " << path << " is a valid slow-query log\n";
    return 0;
  }

  return Usage();
}
