// vql: the interactive shell over a video archive database.
//
//   ./build/tools/vql                  start with an empty database
//   ./build/tools/vql archive.vql      start from a text archive
//   ./build/tools/vql archive.vqdb     start from a binary snapshot

#include <iostream>
#include <string>

#include "src/common/string_util.h"
#include "src/model/database.h"
#include "src/shell/repl.h"
#include "src/storage/binary_format.h"
#include "src/storage/text_format.h"

int main(int argc, char** argv) {
  using namespace vqldb;
  VideoDatabase db;
  std::vector<Rule> preloaded_rules;
  if (argc > 1) {
    std::string path = argv[1];
    if (EndsWith(path, ".vqdb")) {
      auto restored = BinaryFormat::Load(path);
      if (!restored.ok()) {
        std::cerr << "cannot load " << path << ": " << restored.status()
                  << "\n";
        return 1;
      }
      db = std::move(*restored);
    } else {
      auto loaded = TextFormat::LoadFromFile(path, &db);
      if (!loaded.ok()) {
        std::cerr << "cannot load " << path << ": " << loaded.status() << "\n";
        return 1;
      }
      preloaded_rules = loaded->rules;
    }
    std::cerr << "loaded " << path << "\n";
  }

  Repl repl(&db);
  for (const Rule& rule : preloaded_rules) {
    Status st = repl.session().AddRule(rule);
    if (!st.ok()) std::cerr << "warning: " << st << "\n";
  }

  std::cerr << "vqldb shell — statements end with '.', .help for help\n";
  std::string line;
  while (!repl.done()) {
    std::cerr << (repl.pending() ? "...> " : "vql> ");
    if (!std::getline(std::cin, line)) break;
    std::cout << repl.Execute(line);
  }
  return 0;
}
