// vql: the interactive shell over a video archive database.
//
//   ./build/tools/vql                  start with an empty database
//   ./build/tools/vql archive.vql      start from a text archive
//   ./build/tools/vql archive.vqdb     start from a binary snapshot
//   ./build/tools/vql --threads N ...  fixpoint worker threads (1 = serial,
//                                      default auto = hardware concurrency;
//                                      also settable at runtime: .threads)
//   --metrics-out=<file>   on exit, dump engine metrics (.prom suffix writes
//                          Prometheus text exposition, anything else JSON)
//   --trace-out=<file>     enable span tracing; on exit, write a Chrome
//                          trace_event JSON (chrome://tracing, Perfetto)
//   --log-level=<level>    debug|info|warn|error|fatal (or env VQLDB_LOG;
//                          the flag wins; also settable at runtime: .loglevel)
//   --timeout-ms=<ms>      per-query wall-clock budget; queries that exceed
//                          it fail with "Deadline exceeded" and the shell
//                          keeps running (also settable at runtime: .timeout)
//   --no-magic             disable goal-directed magic-set rewriting — every
//                          query materializes the full fixpoint (also
//                          settable at runtime: .magic on|off)
//   --strategy=<s>         execution strategy: auto (cost-based planner,
//                          default) | qsqr | magic | fixpoint (also
//                          settable at runtime: .strategy)
//   --reorder              stats-driven body-literal reordering: the planner
//                          orders each rule body by estimated selectivity
//                          instead of the written order (also: .reorder on)
//   --no-cache             disable the memoizing query cache (also settable
//                          at runtime: .cache on|off|clear)
//   --no-merge-join        disable sorted-segment merge joins — every bound
//                          literal probes the hash index instead; answers
//                          are identical (also settable: .mergejoin on|off)
//   --mem-limit-bytes=<n>  governed memory budget: queries whose working set
//                          would exceed it fail with "Resource exhausted"
//                          after the caches are shed, and the shell keeps
//                          running (also settable at runtime: .memlimit)
//   --max-concurrency=<n>  admission control: at most n queries execute at
//                          once, excess arrivals queue then shed with
//                          "Overloaded" (also settable: .concurrency)
//   --slow-ms=<ms>         slow-query threshold: queries at or above it (and
//                          all failed queries) enter the slow-query ring
//                          (default 100; 0 logs every query; also .slowlog)
//   --slowlog-out=<file>   on exit, dump the slow-query log as JSON (the
//                          schema tools/obs_check slowlog validates)
//   --archive=<dir>        attach the sharded archive at <dir> (creating it
//                          if absent): data statements route to the current
//                          tenant's shard, queries scatter-gather across all
//                          shards (also: .archive open / .archive close)
//   --archive-shards=<n>   shard count when --archive creates a fresh
//                          archive (default 4; an existing manifest wins)
//   --allow-partial        degraded-mode queries: answer from the shards
//                          that can and mark the result PARTIAL instead of
//                          failing with Unavailable (also: .partial on)
//   --connect=<host:port>  remote mode: statements and queries are sent to a
//                          vqlsrv over the wire protocol instead of running
//                          in-process; --timeout-ms becomes the propagated
//                          per-request deadline
//
// Exit codes (local and remote): 0 success, 2 parse error, 3 overloaded
// (admission shed), 4 deadline exceeded, 5 unavailable (server draining /
// shard down), 1 anything else. The code reflects the last failed input, so
// scripted pipelines can branch on what went wrong.
//
// SIGINT / SIGTERM trip a cooperative CancelToken: a running query stops at
// its next ExecContext poll with "Cancelled", the journal mirror (".journal")
// is flushed, and the shell exits cleanly.

#include <csignal>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/cancel.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/model/database.h"
#include "src/obs/metrics.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"
#include "src/server/client.h"
#include "src/server/wire.h"
#include "src/shell/repl.h"
#include "src/storage/binary_format.h"
#include "src/storage/text_format.h"

namespace {

// Writes the metrics snapshot: Prometheus exposition for .prom, else JSON.
bool WriteMetrics(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for metrics\n";
    return false;
  }
  out << (vqldb::EndsWith(path, ".prom")
              ? vqldb::obs::MetricsRegistry::Global().RenderPrometheus()
              : vqldb::obs::MetricsRegistry::Global().RenderJson());
  return out.good();
}

volatile std::sig_atomic_t g_signal = 0;
std::shared_ptr<vqldb::CancelToken> g_cancel;  // installed before handlers

void HandleSignal(int sig) {
  g_signal = sig;
  // CancelToken::Cancel is one relaxed atomic store — signal-safe. The
  // shared_ptr itself is never written after handler installation.
  if (g_cancel != nullptr) g_cancel->Cancel();
}

void InstallSignalHandlers() {
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;  // no SA_RESTART: interrupt blocking reads
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

// Remote mode: the same line discipline as the local shell (buffer until a
// terminating '.'), but every completed input travels to a vqlsrv.
int RunRemote(vqldb::server::Client& client, int64_t timeout_ms,
              bool allow_partial) {
  using namespace vqldb;
  using server::MsgType;
  using server::Request;

  std::cerr << "vqldb shell (remote " << client.options().host << ":"
            << client.options().port
            << ") — statements end with '.', .quit to exit\n";
  Status last_status;
  std::string line;
  std::string buffer;
  while (g_signal == 0) {
    std::cerr << (buffer.empty() ? "vql> " : "...> ");
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(Trim(line));
    if (buffer.empty() && (trimmed == ".quit" || trimmed == ".exit")) break;
    if (buffer.empty() && trimmed == ".ping") {
      auto response = client.Ping();
      std::cout << (response.ok() ? "pong\n"
                                  : "error: " + response.status().ToString() +
                                        "\n");
      continue;
    }
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '.' &&
        trimmed.size() > 1 &&
        !std::isdigit(static_cast<unsigned char>(trimmed[1]))) {
      std::cout << "meta commands run locally; over --connect only .ping and "
                   ".quit are available\n";
      continue;
    }
    if (trimmed.empty() && buffer.empty()) continue;
    if (!buffer.empty()) buffer += "\n";
    buffer += trimmed;
    if (!EndsWith(Trim(buffer), ".")) continue;
    std::string input = std::move(buffer);
    buffer.clear();

    Request request;
    std::string_view text = Trim(input);
    request.type = (StartsWith(text, "?-") || StartsWith(text, "explain"))
                       ? MsgType::kQuery
                       : MsgType::kStatement;
    request.deadline_ms =
        timeout_ms > 0 ? static_cast<uint32_t>(timeout_ms) : 0;
    if (allow_partial) request.flags |= server::kFlagPartial;
    request.text = input;

    auto response = client.Call(request);
    if (!response.ok()) {
      last_status = response.status();
      std::cout << "error: " << last_status.ToString() << "\n";
      continue;
    }
    last_status = server::StatusFromResponse(*response);
    if (!last_status.ok()) {
      std::cout << "error: " << last_status.ToString() << "\n";
      continue;
    }
    if (response->partial()) std::cout << "-- PARTIAL ANSWER --\n";
    std::cout << response->body;
    if (!response->body.empty() && response->body.back() != '\n') {
      std::cout << "\n";
    }
  }
  return ExitCodeForStatus(last_status);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vqldb;
  InitLogLevelFromEnv();
  EvalOptions options;
  std::string metrics_out;
  std::string trace_out;
  std::string slowlog_out;
  int64_t timeout_ms = 0;
  int64_t mem_limit_bytes = 0;
  int64_t max_concurrency = 0;
  bool no_magic = false;
  bool no_cache = false;
  std::string archive_dir;
  int64_t archive_shards = 4;
  bool allow_partial = false;
  std::string connect_spec;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--metrics-out=")) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
      continue;
    }
    if (StartsWith(arg, "--trace-out=")) {
      trace_out = arg.substr(std::string("--trace-out=").size());
      continue;
    }
    if (StartsWith(arg, "--slowlog-out=")) {
      slowlog_out = arg.substr(std::string("--slowlog-out=").size());
      continue;
    }
    if (StartsWith(arg, "--slow-ms=")) {
      std::string value = arg.substr(std::string("--slow-ms=").size());
      int64_t slow_ms = 0;
      if (!ParseNonNegativeInt(value, &slow_ms)) {
        std::cerr << "--slow-ms requires a non-negative integer\n";
        return 1;
      }
      obs::StatsCollector::Global().set_slow_threshold_us(
          static_cast<uint64_t>(slow_ms) * 1000);
      continue;
    }
    if (StartsWith(arg, "--log-level=")) {
      std::string value = arg.substr(std::string("--log-level=").size());
      LogLevel level;
      if (!ParseLogLevel(value, &level)) {
        std::cerr << "--log-level: unknown level " << value
                  << " (debug|info|warn|error|fatal)\n";
        return 1;
      }
      SetLogLevel(level);
      continue;
    }
    if (StartsWith(arg, "--timeout-ms=")) {
      std::string value = arg.substr(std::string("--timeout-ms=").size());
      if (!ParseNonNegativeInt(value, &timeout_ms) || timeout_ms < 1) {
        std::cerr << "--timeout-ms requires a positive integer\n";
        return 1;
      }
      continue;
    }
    if (StartsWith(arg, "--mem-limit-bytes=")) {
      std::string value = arg.substr(std::string("--mem-limit-bytes=").size());
      if (!ParseNonNegativeInt(value, &mem_limit_bytes) ||
          mem_limit_bytes < 1) {
        std::cerr << "--mem-limit-bytes requires a positive integer\n";
        return 1;
      }
      continue;
    }
    if (StartsWith(arg, "--max-concurrency=")) {
      std::string value = arg.substr(std::string("--max-concurrency=").size());
      if (!ParseNonNegativeInt(value, &max_concurrency) ||
          max_concurrency < 1) {
        std::cerr << "--max-concurrency requires a positive integer\n";
        return 1;
      }
      continue;
    }
    if (StartsWith(arg, "--archive=")) {
      archive_dir = arg.substr(std::string("--archive=").size());
      continue;
    }
    if (StartsWith(arg, "--archive-shards=")) {
      std::string value = arg.substr(std::string("--archive-shards=").size());
      if (!ParseNonNegativeInt(value, &archive_shards) || archive_shards < 1) {
        std::cerr << "--archive-shards requires a positive integer\n";
        return 1;
      }
      continue;
    }
    if (arg == "--allow-partial") {
      allow_partial = true;
      continue;
    }
    if (StartsWith(arg, "--connect=")) {
      connect_spec = arg.substr(std::string("--connect=").size());
      continue;
    }
    if (arg == "--no-magic") {
      no_magic = true;
      continue;
    }
    if (StartsWith(arg, "--strategy=")) {
      std::string value = arg.substr(std::string("--strategy=").size());
      if (value == "auto") {
        options.strategy = EvalStrategy::kAuto;
      } else if (value == "qsqr") {
        options.strategy = EvalStrategy::kQsqr;
      } else if (value == "magic") {
        options.strategy = EvalStrategy::kMagic;
      } else if (value == "fixpoint") {
        options.strategy = EvalStrategy::kFixpoint;
      } else {
        std::cerr << "--strategy: unknown strategy " << value
                  << " (auto|qsqr|magic|fixpoint)\n";
        return 1;
      }
      continue;
    }
    if (arg == "--reorder") {
      options.reorder_body = true;
      continue;
    }
    if (arg == "--no-cache") {
      no_cache = true;
      continue;
    }
    if (arg == "--no-merge-join") {
      options.merge_join = false;
      continue;
    }
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::cerr << "--threads requires a value (N >= 1, or auto)\n";
        return 1;
      }
      std::string value = argv[++i];
      if (value == "auto") {
        options.num_threads = 0;
      } else {
        int64_t n = 0;
        if (!ParseNonNegativeInt(value, &n) || n < 1) {
          std::cerr << "--threads requires a value (N >= 1, or auto)\n";
          return 1;
        }
        options.num_threads = static_cast<size_t>(n);
      }
      continue;
    }
    args.push_back(std::move(arg));
  }

  g_cancel = std::make_shared<CancelToken>();
  InstallSignalHandlers();

  if (!connect_spec.empty()) {
    auto copts = server::ParseHostPort(connect_spec);
    if (!copts.ok()) {
      std::cerr << copts.status() << "\n";
      return 1;
    }
    server::Client client(*copts);
    Status connected = client.Connect();
    if (!connected.ok()) {
      std::cerr << "cannot connect to " << connect_spec << ": " << connected
                << "\n";
      return ExitCodeForStatus(connected);
    }
    return RunRemote(client, timeout_ms, allow_partial);
  }

  VideoDatabase db;
  std::vector<Rule> preloaded_rules;
  if (!args.empty()) {
    const std::string& path = args[0];
    if (EndsWith(path, ".vqdb")) {
      auto restored = BinaryFormat::Load(path);
      if (!restored.ok()) {
        std::cerr << "cannot load " << path << ": " << restored.status()
                  << "\n";
        return 1;
      }
      db = std::move(*restored);
    } else {
      auto loaded = TextFormat::LoadFromFile(path, &db);
      if (!loaded.ok()) {
        std::cerr << "cannot load " << path << ": " << loaded.status() << "\n";
        return 1;
      }
      preloaded_rules = loaded->rules;
    }
    std::cerr << "loaded " << path << "\n";
  }

  Repl repl(&db, options);
  if (timeout_ms > 0) repl.set_timeout_ms(timeout_ms);
  if (no_magic) repl.session().set_magic_enabled(false);
  if (no_cache) repl.session().set_cache_enabled(false);
  if (mem_limit_bytes > 0) {
    repl.session().EnableMemoryGovernor(static_cast<size_t>(mem_limit_bytes));
  }
  if (max_concurrency > 0) {
    QueryGate::Options gopts;
    gopts.max_concurrent = static_cast<size_t>(max_concurrency);
    repl.session().set_gate(std::make_shared<QueryGate>(gopts));
  }
  for (const Rule& rule : preloaded_rules) {
    Status st = repl.session().AddRule(rule);
    if (!st.ok()) std::cerr << "warning: " << st << "\n";
  }
  repl.set_allow_partial(allow_partial);
  if (!archive_dir.empty()) {
    ShardedArchive::Options aopts;
    aopts.shard_count = static_cast<size_t>(archive_shards);
    aopts.eval_options = options;
    auto archive = ShardedArchive::Open(archive_dir, std::move(aopts));
    if (!archive.ok()) {
      std::cerr << "cannot open archive " << archive_dir << ": "
                << archive.status() << "\n";
      return 1;
    }
    repl.AttachArchive(std::move(*archive));
    std::cerr << "archive " << archive_dir << " attached ("
              << repl.archive()->shard_count() << " shards)\n";
  }

  if (!trace_out.empty()) obs::SetTracingEnabled(true);

  repl.InstallCancelToken(g_cancel);

  std::cerr << "vqldb shell — statements end with '.', .help for help\n";
  Status last_status;
  std::string line;
  while (!repl.done() && g_signal == 0) {
    std::cerr << (repl.pending() ? "...> " : "vql> ");
    if (!std::getline(std::cin, line)) {
      if (g_signal != 0) break;   // interrupted read, not EOF
      break;
    }
    std::cout << repl.Execute(line);
    if (!repl.last_status().ok()) last_status = repl.last_status();
    // A signal during the query cancelled it cooperatively; the next input
    // starts with a fresh token.
    if (g_signal != 0) break;
    g_cancel->Reset();
  }

  // Signal-exit path: never leave buffered journal records behind.
  Status flushed = repl.FlushJournal();
  if (!flushed.ok()) {
    std::cerr << "journal flush failed: " << flushed << "\n";
  }

  int rc = ExitCodeForStatus(last_status);
  if (!metrics_out.empty() && !WriteMetrics(metrics_out)) rc = 1;
  if (!slowlog_out.empty()) {
    std::ofstream out(slowlog_out);
    if (out) out << obs::StatsCollector::Global().RenderSlowLogJson();
    if (!out || !out.good()) {
      std::cerr << "cannot write slow-query log " << slowlog_out << "\n";
      rc = 1;
    }
  }
  if (!trace_out.empty()) {
    std::string error;
    if (!obs::Tracer::Global().WriteFile(trace_out, &error)) {
      std::cerr << "cannot write trace " << trace_out << ": " << error << "\n";
      rc = 1;
    }
  }
  return rc;
}
