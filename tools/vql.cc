// vql: the interactive shell over a video archive database.
//
//   ./build/tools/vql                  start with an empty database
//   ./build/tools/vql archive.vql      start from a text archive
//   ./build/tools/vql archive.vqdb     start from a binary snapshot
//   ./build/tools/vql --threads N ...  fixpoint worker threads (1 = serial,
//                                      default auto = hardware concurrency;
//                                      also settable at runtime: .threads)

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/string_util.h"
#include "src/model/database.h"
#include "src/shell/repl.h"
#include "src/storage/binary_format.h"
#include "src/storage/text_format.h"

int main(int argc, char** argv) {
  using namespace vqldb;
  EvalOptions options;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::cerr << "--threads requires a value (N >= 1, or auto)\n";
        return 1;
      }
      std::string value = argv[++i];
      if (value == "auto") {
        options.num_threads = 0;
      } else {
        char* end = nullptr;
        long n = std::strtol(value.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n < 1) {
          std::cerr << "--threads requires a value (N >= 1, or auto)\n";
          return 1;
        }
        options.num_threads = static_cast<size_t>(n);
      }
      continue;
    }
    args.push_back(std::move(arg));
  }

  VideoDatabase db;
  std::vector<Rule> preloaded_rules;
  if (!args.empty()) {
    const std::string& path = args[0];
    if (EndsWith(path, ".vqdb")) {
      auto restored = BinaryFormat::Load(path);
      if (!restored.ok()) {
        std::cerr << "cannot load " << path << ": " << restored.status()
                  << "\n";
        return 1;
      }
      db = std::move(*restored);
    } else {
      auto loaded = TextFormat::LoadFromFile(path, &db);
      if (!loaded.ok()) {
        std::cerr << "cannot load " << path << ": " << loaded.status() << "\n";
        return 1;
      }
      preloaded_rules = loaded->rules;
    }
    std::cerr << "loaded " << path << "\n";
  }

  Repl repl(&db, options);
  for (const Rule& rule : preloaded_rules) {
    Status st = repl.session().AddRule(rule);
    if (!st.ok()) std::cerr << "warning: " << st << "\n";
  }

  std::cerr << "vqldb shell — statements end with '.', .help for help\n";
  std::string line;
  while (!repl.done()) {
    std::cerr << (repl.pending() ? "...> " : "vql> ");
    if (!std::getline(std::cin, line)) break;
    std::cout << repl.Execute(line);
  }
  return 0;
}
