// vqlsrv: the vqldb network service.
//
//   ./build/tools/vqlsrv                      serve an empty database
//   ./build/tools/vqlsrv archive.vqdb        serve a binary snapshot
//   ./build/tools/vqlsrv archive.vql         serve a text archive
//   --host=<addr>            listen address (default 127.0.0.1)
//   --port=<n>               listen port (default 0 = ephemeral; the chosen
//                            port is printed as "listening on host:port")
//   --io-threads=<n>         epoll/accept loops (default 1)
//   --workers=<n>            engine worker threads (default 2)
//   --max-concurrency=<n>    admission slots (default 4)
//   --max-queued=<n>         admission queue depth (default 16)
//   --queue-timeout-ms=<ms>  queued-arrival patience before Overloaded
//   --default-deadline-ms=<ms>  budget for clients that send none
//   --max-deadline-ms=<ms>   clamp on client budgets
//   --idle-timeout-ms=<ms>   close connections with no completed request
//   --drain-grace-ms=<ms>    SIGTERM: how long in-flight work may finish
//   --max-connections=<n>    connection cap (default 16384)
//   --mem-limit-bytes=<n>    governor: connection buffers charged against it
//   --admin                  enable the admin plane (shard kill/recover,
//                            /metrics?dump=, remote drain)
//   --archive=<dir>          serve the sharded archive at <dir>
//   --archive-shards=<n>     shard count when creating a fresh archive
//   --strategy=<s>           auto|qsqr|magic|fixpoint (snapshot sessions)
//   --threads <n|auto>       fixpoint worker threads per session
//   --metrics-out=<file>     on exit (after drain), dump metrics (.prom =
//                            Prometheus text, else JSON)
//   --fault-seed=<n>         arm seeded transport fault injection
//   --fault-torn=<p>         P(torn response frame)
//   --fault-disconnect=<p>   P(mid-response disconnect)
//   --fault-accept=<p>       P(accept-failure burst)
//
// SIGTERM / SIGINT trigger a graceful drain: stop accepting, shed new
// requests with Unavailable, let in-flight requests finish (then cancel),
// flush write buffers and metrics, exit 0. The drain summary
// ("admitted=N responded=N shed=N dropped=0 unflushed=0") prints on exit.

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/model/database.h"
#include "src/obs/metrics.h"
#include "src/server/server.h"
#include "src/storage/binary_format.h"
#include "src/storage/shard_store.h"
#include "src/storage/text_format.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;
vqldb::server::Server* g_server = nullptr;

void HandleSignal(int sig) {
  g_signal = sig;
  // RequestShutdown is async-signal-safe (atomics + eventfd write).
  if (g_server != nullptr) g_server->RequestShutdown();
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || v < 0 || v > 1) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vqldb;
  using server::Server;
  using server::ServerOptions;
  InitLogLevelFromEnv();

  ServerOptions sopts;
  std::string archive_dir;
  int64_t archive_shards = 4;
  int64_t mem_limit_bytes = 0;
  std::string metrics_out;
  std::vector<std::string> args;

  auto int_flag = [&](const std::string& arg, const char* name,
                      int64_t* out) -> int {
    std::string prefix = std::string(name) + "=";
    if (!StartsWith(arg, prefix)) return 0;
    if (!ParseNonNegativeInt(arg.substr(prefix.size()), out)) {
      std::cerr << name << " requires a non-negative integer\n";
      return -1;
    }
    return 1;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    int64_t v = 0;
    int rc;
    if (StartsWith(arg, "--host=")) {
      sopts.host = arg.substr(std::string("--host=").size());
      continue;
    }
    if ((rc = int_flag(arg, "--port", &v)) != 0) {
      if (rc < 0 || v > 65535) return 1;
      sopts.port = static_cast<uint16_t>(v);
      continue;
    }
    if ((rc = int_flag(arg, "--io-threads", &v)) != 0) {
      if (rc < 0) return 1;
      sopts.io_threads = static_cast<size_t>(v);
      continue;
    }
    if ((rc = int_flag(arg, "--workers", &v)) != 0) {
      if (rc < 0) return 1;
      sopts.worker_threads = static_cast<size_t>(v);
      continue;
    }
    if ((rc = int_flag(arg, "--max-concurrency", &v)) != 0) {
      if (rc < 0 || v < 1) return 1;
      sopts.gate.max_concurrent = static_cast<size_t>(v);
      continue;
    }
    if ((rc = int_flag(arg, "--max-queued", &v)) != 0) {
      if (rc < 0) return 1;
      sopts.gate.max_queued = static_cast<size_t>(v);
      continue;
    }
    if ((rc = int_flag(arg, "--queue-timeout-ms", &v)) != 0) {
      if (rc < 0) return 1;
      sopts.gate.queue_timeout = std::chrono::milliseconds(v);
      continue;
    }
    if ((rc = int_flag(arg, "--default-deadline-ms", &v)) != 0) {
      if (rc < 0) return 1;
      sopts.default_deadline_ms = static_cast<uint64_t>(v);
      continue;
    }
    if ((rc = int_flag(arg, "--max-deadline-ms", &v)) != 0) {
      if (rc < 0) return 1;
      sopts.max_deadline_ms = static_cast<uint64_t>(v);
      continue;
    }
    if ((rc = int_flag(arg, "--idle-timeout-ms", &v)) != 0) {
      if (rc < 0) return 1;
      sopts.idle_timeout_ms = static_cast<uint64_t>(v);
      continue;
    }
    if ((rc = int_flag(arg, "--drain-grace-ms", &v)) != 0) {
      if (rc < 0) return 1;
      sopts.drain_grace_ms = static_cast<uint64_t>(v);
      continue;
    }
    if ((rc = int_flag(arg, "--max-connections", &v)) != 0) {
      if (rc < 0 || v < 1) return 1;
      sopts.max_connections = static_cast<size_t>(v);
      continue;
    }
    if ((rc = int_flag(arg, "--mem-limit-bytes", &v)) != 0) {
      if (rc < 0) return 1;
      mem_limit_bytes = v;
      continue;
    }
    if ((rc = int_flag(arg, "--archive-shards", &v)) != 0) {
      if (rc < 0 || v < 1) return 1;
      archive_shards = v;
      continue;
    }
    if ((rc = int_flag(arg, "--fault-seed", &v)) != 0) {
      if (rc < 0) return 1;
      sopts.faults.seed = static_cast<uint64_t>(v);
      continue;
    }
    if (StartsWith(arg, "--fault-torn=")) {
      if (!ParseDouble(arg.substr(std::string("--fault-torn=").size()),
                       &sopts.faults.torn_response_p)) {
        std::cerr << "--fault-torn requires a probability in [0,1]\n";
        return 1;
      }
      continue;
    }
    if (StartsWith(arg, "--fault-disconnect=")) {
      if (!ParseDouble(arg.substr(std::string("--fault-disconnect=").size()),
                       &sopts.faults.disconnect_p)) {
        std::cerr << "--fault-disconnect requires a probability in [0,1]\n";
        return 1;
      }
      continue;
    }
    if (StartsWith(arg, "--fault-accept=")) {
      if (!ParseDouble(arg.substr(std::string("--fault-accept=").size()),
                       &sopts.faults.accept_fail_p)) {
        std::cerr << "--fault-accept requires a probability in [0,1]\n";
        return 1;
      }
      continue;
    }
    if (arg == "--admin") {
      sopts.enable_admin = true;
      continue;
    }
    if (StartsWith(arg, "--archive=")) {
      archive_dir = arg.substr(std::string("--archive=").size());
      continue;
    }
    if (StartsWith(arg, "--strategy=")) {
      std::string value = arg.substr(std::string("--strategy=").size());
      if (value == "auto") {
        sopts.eval_options.strategy = EvalStrategy::kAuto;
      } else if (value == "qsqr") {
        sopts.eval_options.strategy = EvalStrategy::kQsqr;
      } else if (value == "magic") {
        sopts.eval_options.strategy = EvalStrategy::kMagic;
      } else if (value == "fixpoint") {
        sopts.eval_options.strategy = EvalStrategy::kFixpoint;
      } else {
        std::cerr << "--strategy: unknown strategy " << value << "\n";
        return 1;
      }
      continue;
    }
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::cerr << "--threads requires a value (N >= 1, or auto)\n";
        return 1;
      }
      std::string value = argv[++i];
      if (value == "auto") {
        sopts.eval_options.num_threads = 0;
      } else {
        int64_t n = 0;
        if (!ParseNonNegativeInt(value, &n) || n < 1) {
          std::cerr << "--threads requires a value (N >= 1, or auto)\n";
          return 1;
        }
        sopts.eval_options.num_threads = static_cast<size_t>(n);
      }
      continue;
    }
    if (StartsWith(arg, "--metrics-out=")) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
      continue;
    }
    if (StartsWith(arg, "--")) {
      std::cerr << "unknown flag " << arg << "\n";
      return 1;
    }
    args.push_back(std::move(arg));
  }

  if (mem_limit_bytes > 0) {
    ResourceBudget::Limits limits;
    limits.max_bytes = static_cast<size_t>(mem_limit_bytes);
    sopts.governor = std::make_shared<ResourceBudget>(limits);
  }

  VideoDatabase db;
  std::unique_ptr<ShardedArchive> archive;
  std::unique_ptr<Server> srv;

  if (!archive_dir.empty()) {
    ShardedArchive::Options aopts;
    aopts.shard_count = static_cast<size_t>(archive_shards);
    aopts.eval_options = sopts.eval_options;
    auto opened = ShardedArchive::Open(archive_dir, std::move(aopts));
    if (!opened.ok()) {
      std::cerr << "cannot open archive " << archive_dir << ": "
                << opened.status() << "\n";
      return 1;
    }
    archive = std::move(*opened);
    srv = std::make_unique<Server>(archive.get(), sopts);
  } else {
    if (!args.empty()) {
      const std::string& path = args[0];
      if (EndsWith(path, ".vqdb")) {
        auto restored = BinaryFormat::Load(path);
        if (!restored.ok()) {
          std::cerr << "cannot load " << path << ": " << restored.status()
                    << "\n";
          return 1;
        }
        db = std::move(*restored);
      } else {
        auto loaded = TextFormat::LoadFromFile(path, &db);
        if (!loaded.ok()) {
          std::cerr << "cannot load " << path << ": " << loaded.status()
                    << "\n";
          return 1;
        }
        // Rules from the archive file install into the snapshot write
        // session so every read snapshot evaluates them.
        srv = std::make_unique<Server>(&db, sopts);
        for (const Rule& rule : loaded->rules) {
          Status st = srv->snapshots()->Apply(rule.ToString());
          if (!st.ok()) std::cerr << "warning: " << st << "\n";
        }
      }
      std::cerr << "loaded " << path << "\n";
    }
    if (srv == nullptr) srv = std::make_unique<Server>(&db, sopts);
  }

  Status started = srv->Start();
  if (!started.ok()) {
    std::cerr << "cannot start server: " << started << "\n";
    return 1;
  }

  g_server = srv.get();
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  // Scripts parse this exact line for the (possibly ephemeral) port.
  std::cout << "listening on " << sopts.host << ":" << srv->port()
            << std::endl;

  srv->WaitUntilShutdownAndDrain();
  g_server = nullptr;

  std::cout << "drain complete: " << srv->DrainSummary() << std::endl;

  int rc = 0;
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::binary | std::ios::trunc);
    if (out) {
      out << (EndsWith(metrics_out, ".prom")
                  ? obs::MetricsRegistry::Global().RenderPrometheus()
                  : obs::MetricsRegistry::Global().RenderJson());
    }
    if (!out || !out.good()) {
      std::cerr << "cannot write metrics " << metrics_out << "\n";
      rc = 1;
    }
  }
  return rc;
}
