// governor_test: the resource-governance gauntlet. For N seeded iterations,
// arm deterministic fault injection on the session's memory governor and/or
// its admission gate, run a workload query, and assert the governance
// contract:
//
//   1. a forced governor trip yields a structured ResourceExhausted,
//   2. a forced admission reject yields a structured Overloaded,
//   3. a governed failure never corrupts the database (Validate holds and
//      no derived interval materialized by the failed query survives),
//   4. the same session answers the follow-up query correctly once the
//      faults are disarmed — no trip is sticky across queries,
//   5. the gate's accounting stays exact: admitted + shed == attempted and
//      completed == admitted once every query returned.
//
// With --overload the harness instead hammers one session through a
// 1-slot/short-timeout gate from several threads and asserts
// submitted == completed + shed with every completed answer exact.
//
// Usage:
//   governor_test [--iterations=250] [--seed=1 | --seed=1..5]
//   governor_test --overload [--threads=4] [--per-thread=8]
//
// Exit code 0 iff every iteration of every seed holds the contract.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/query.h"
#include "src/engine/query_gate.h"
#include "src/model/database.h"

namespace vqldb {
namespace {

// The workload: a 16-node chain with its transitive closure (relational
// pressure) plus five disjoint interval segments under a recursive ++ rule
// (constructive pressure: 2^5 - 1 subset unions, each a derived interval).
std::string WorkloadProgram() {
  std::string program;
  for (int i = 0; i <= 16; ++i) {
    program += "object n" + std::to_string(i) + " { }.\n";
  }
  for (int i = 0; i < 16; ++i) {
    program +=
        "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
  }
  program +=
      "path(X, Y) <- edge(X, Y).\n"
      "path(X, Z) <- path(X, Y), edge(Y, Z).\n";
  for (int i = 0; i < 5; ++i) {
    std::string lo = std::to_string(10 * i);
    std::string hi = std::to_string(10 * i + 5);
    program += "interval gi" + std::to_string(i) + " { duration: (t > " + lo +
               " and t < " + hi + ") }.\n";
    program += "seg(gi" + std::to_string(i) + ").\n";
  }
  program +=
      "grow(G) <- seg(G).\n"
      "grow(G1 ++ G2) <- grow(G1), seg(G2).\n";
  return program;
}

struct PoolQuery {
  const char* text;
  size_t expected_rows;
  bool constructive;  // compare row count only: derived names depend on
                      // allocation order, which faults perturb
};

constexpr PoolQuery kPool[] = {
    {"?- path(X, Y).", 16u * 17u / 2u, false},
    {"?- path(n0, Y).", 16u, false},
    {"?- edge(X, Y).", 16u, false},
    {"?- seg(G).", 5u, false},
    {"?- grow(G).", 31u, true},
};
constexpr size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);

struct Flags {
  size_t iterations = 250;
  uint64_t seed_lo = 1, seed_hi = 1;
  bool overload = false;
  size_t threads = 4;
  size_t per_thread = 8;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      size_t n = std::strlen(name);
      return arg.compare(0, n, name) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--iterations=")) {
      flags->iterations = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--overload") {
      flags->overload = true;
    } else if (const char* v = value_of("--threads=")) {
      flags->threads = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--per-thread=")) {
      flags->per_thread = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--seed=")) {
      const char* dots = std::strstr(v, "..");
      char* end = nullptr;
      flags->seed_lo = std::strtoull(v, &end, 10);
      flags->seed_hi = dots != nullptr ? std::strtoull(dots + 2, nullptr, 10)
                                       : flags->seed_lo;
      if (flags->seed_hi < flags->seed_lo) return false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return flags->iterations > 0 && flags->threads > 0 && flags->per_thread > 0;
}

#define GOV_REQUIRE(cond, ...)               \
  do {                                       \
    if (!(cond)) {                           \
      std::fprintf(stderr, __VA_ARGS__);     \
      std::fprintf(stderr, "\n");            \
      return false;                          \
    }                                        \
  } while (0)

bool CheckAnswer(uint64_t seed, size_t iteration, const PoolQuery& q,
                 const QueryResult& result,
                 const std::vector<std::vector<Value>>& reference_rows) {
  GOV_REQUIRE(result.rows.size() == q.expected_rows,
              "seed %llu iter %zu: %s returned %zu rows, want %zu",
              (unsigned long long)seed, iteration, q.text, result.rows.size(),
              q.expected_rows);
  if (!q.constructive) {
    GOV_REQUIRE(result.rows == reference_rows,
                "seed %llu iter %zu: %s diverged from the reference answer",
                (unsigned long long)seed, iteration, q.text);
  }
  return true;
}

// Injection modes, chosen per iteration from the seeded stream.
enum class Mode { kClean = 0, kForceTrip, kForceShed, kMixed };

bool RunSeed(uint64_t seed, size_t iterations, size_t* trips, size_t* sheds) {
  VideoDatabase db;
  QuerySession session(&db);
  if (!session.Load(WorkloadProgram()).ok()) {
    std::fprintf(stderr, "seed %llu: workload load failed\n",
                 (unsigned long long)seed);
    return false;
  }
  session.set_cache_enabled(false);  // every query must reach the governor
  session.EnableMemoryGovernor(1u << 30);
  auto gate = std::make_shared<QueryGate>(QueryGate::Options{
      /*max_concurrent=*/1, /*max_queued=*/8,
      /*queue_timeout=*/std::chrono::milliseconds(1000)});
  session.set_gate(gate);

  // Reference answers from an identical, ungoverned twin. Loading the same
  // program allocates the same ids, so non-constructive rows compare exactly.
  VideoDatabase reference_db;
  QuerySession reference(&reference_db);
  if (!reference.Load(WorkloadProgram()).ok()) return false;
  std::vector<std::vector<std::vector<Value>>> reference_rows;
  for (const PoolQuery& q : kPool) {
    auto r = reference.Query(q.text);
    if (!r.ok() || r->rows.size() != q.expected_rows) {
      std::fprintf(stderr, "seed %llu: reference answer for %s is wrong\n",
                   (unsigned long long)seed, q.text);
      return false;
    }
    reference_rows.push_back(r->rows);
  }

  Rng rng(seed * 7919ULL + 17);
  size_t attempted = 0;
  for (size_t i = 0; i < iterations; ++i) {
    const uint64_t fault_seed = seed * 1000003ULL + i;
    const Mode mode = static_cast<Mode>(rng.UniformU64(4));
    // A pure-EDB lookup (seg, edge) can answer without ever charging the
    // budget, so a forced trip needs a query that really evaluates.
    constexpr size_t kChargingPool[] = {0, 1, 4};  // path, path(n0), grow
    const PoolQuery& q = mode == Mode::kForceTrip
                             ? kPool[kChargingPool[rng.UniformU64(3)]]
                             : kPool[rng.UniformU64(kPoolSize)];

    switch (mode) {
      case Mode::kClean:
        break;
      case Mode::kForceTrip:
        session.governor()->ArmFaults({fault_seed, /*trip_p=*/1.0});
        break;
      case Mode::kForceShed:
        gate->ArmFaults({fault_seed, /*reject_p=*/1.0});
        break;
      case Mode::kMixed:
        session.governor()->ArmFaults({fault_seed, /*trip_p=*/0.05});
        gate->ArmFaults({fault_seed ^ 0x9E3779B97F4A7C15ULL,
                         /*reject_p=*/0.1});
        break;
    }

    const size_t derived_before = db.derived_interval_count();
    const size_t trips_before = session.governor()->injected_trips();
    const size_t rejects_before = gate->injected_rejects();
    auto result = session.Query(q.text);
    ++attempted;

    if (result.ok()) {
      GOV_REQUIRE(mode != Mode::kForceShed,
                  "seed %llu iter %zu: forced shed did not fail %s",
                  (unsigned long long)seed, i, q.text);
      // Under p=1.0 a success is only legitimate when the query was served
      // from memoized fixpoints and reached zero budget charges: had any
      // charge rolled, the retry would have tripped as well. (Under the
      // mixed low-p mode, succeeding after a shed-caches retry is exactly
      // the designed degradation, so injected trips are fine there.)
      if (mode == Mode::kForceTrip) {
        GOV_REQUIRE(session.governor()->injected_trips() == trips_before,
                    "seed %llu iter %zu: %s succeeded past a forced trip",
                    (unsigned long long)seed, i, q.text);
      }
      if (!CheckAnswer(seed, i, q, *result,
                       reference_rows[&q - kPool])) {
        return false;
      }
    } else {
      const Status& st = result.status();
      GOV_REQUIRE(st.IsResourceExhausted() || st.IsOverloaded(),
                  "seed %llu iter %zu: unstructured failure for %s: %s",
                  (unsigned long long)seed, i, q.text, st.ToString().c_str());
      // Contract 3: a governed failure leaves the database intact.
      GOV_REQUIRE(db.Validate().ok(),
                  "seed %llu iter %zu: database invalid after failure",
                  (unsigned long long)seed, i);
      GOV_REQUIRE(db.derived_interval_count() == derived_before,
                  "seed %llu iter %zu: failed query leaked %zu derived "
                  "intervals",
                  (unsigned long long)seed, i,
                  db.derived_interval_count() - derived_before);
      if (mode == Mode::kForceTrip) {
        GOV_REQUIRE(st.IsResourceExhausted(),
                    "seed %llu iter %zu: forced trip surfaced as %s",
                    (unsigned long long)seed, i, st.ToString().c_str());
        GOV_REQUIRE(session.governor()->injected_trips() > trips_before,
                    "seed %llu iter %zu: forced trip not accounted",
                    (unsigned long long)seed, i);
      }
      if (mode == Mode::kForceShed) {
        GOV_REQUIRE(st.IsOverloaded(),
                    "seed %llu iter %zu: forced shed surfaced as %s",
                    (unsigned long long)seed, i, st.ToString().c_str());
        GOV_REQUIRE(gate->injected_rejects() > rejects_before,
                    "seed %llu iter %zu: forced shed not accounted",
                    (unsigned long long)seed, i);
      }
      if (st.IsResourceExhausted()) ++*trips;
      if (st.IsOverloaded()) ++*sheds;
    }

    // Contract 4: disarm and the same session answers exactly.
    session.governor()->ArmFaults({0, 0.0});
    gate->ArmFaults({0, 0.0});
    auto follow_up = session.Query("?- path(n0, Y).");
    ++attempted;
    GOV_REQUIRE(follow_up.ok(),
                "seed %llu iter %zu: follow-up failed after disarm: %s",
                (unsigned long long)seed, i,
                follow_up.status().ToString().c_str());
    if (!CheckAnswer(seed, i, kPool[1], *follow_up, reference_rows[1])) {
      return false;
    }
  }

  // Contract 5: exact admission accounting over the whole run.
  GOV_REQUIRE(gate->admitted_total() + gate->shed_total() == attempted,
              "seed %llu: admitted %zu + shed %zu != attempted %zu",
              (unsigned long long)seed, gate->admitted_total(),
              gate->shed_total(), attempted);
  GOV_REQUIRE(gate->completed_total() == gate->admitted_total(),
              "seed %llu: %zu admitted but %zu completed",
              (unsigned long long)seed, gate->admitted_total(),
              gate->completed_total());
  GOV_REQUIRE(gate->active() == 0 && gate->queued() == 0,
              "seed %llu: gate not drained (active=%zu queued=%zu)",
              (unsigned long long)seed, gate->active(), gate->queued());
  return true;
}

struct OverloadOutcome {
  size_t ok = 0;
  size_t shed = 0;
  size_t wrong = 0;  // completed with an unexpected answer
  size_t other = 0;  // failed with a status that is not Overloaded
};

bool RunOverload(size_t threads, size_t per_thread) {
  VideoDatabase db;
  QuerySession session(&db);
  if (!session.Load(WorkloadProgram()).ok()) {
    std::fprintf(stderr, "overload: workload load failed\n");
    return false;
  }
  session.set_cache_enabled(false);  // keep every admitted query heavy
  session.EnableMemoryGovernor(1u << 30);
  // One slot serializes the shared session; the tiny queue and timeout make
  // load shedding the designed response to the thundering herd.
  auto gate = std::make_shared<QueryGate>(QueryGate::Options{
      /*max_concurrent=*/1, /*max_queued=*/1,
      /*queue_timeout=*/std::chrono::milliseconds(2)});
  session.set_gate(gate);

  const size_t expected_rows = kPool[0].expected_rows;
  std::vector<OverloadOutcome> outcomes(threads);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < per_thread; ++i) {
        auto result = session.Query(kPool[0].text);
        if (result.ok()) {
          if (result->rows.size() == expected_rows) {
            ++outcomes[t].ok;
          } else {
            ++outcomes[t].wrong;
          }
        } else if (result.status().IsOverloaded()) {
          ++outcomes[t].shed;
        } else {
          ++outcomes[t].other;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  OverloadOutcome total;
  for (const OverloadOutcome& o : outcomes) {
    total.ok += o.ok;
    total.shed += o.shed;
    total.wrong += o.wrong;
    total.other += o.other;
  }
  const size_t submitted = threads * per_thread;
  GOV_REQUIRE(total.wrong == 0, "overload: %zu completed queries were wrong",
              total.wrong);
  GOV_REQUIRE(total.other == 0,
              "overload: %zu failures were not structured Overloaded",
              total.other);
  GOV_REQUIRE(total.ok + total.shed == submitted,
              "overload: ok %zu + shed %zu != submitted %zu", total.ok,
              total.shed, submitted);
  GOV_REQUIRE(gate->admitted_total() == total.ok &&
                  gate->shed_total() == total.shed,
              "overload: gate accounting (admitted=%zu shed=%zu) disagrees "
              "with observed (ok=%zu shed=%zu)",
              gate->admitted_total(), gate->shed_total(), total.ok,
              total.shed);
  GOV_REQUIRE(gate->completed_total() == gate->admitted_total(),
              "overload: %zu admitted but %zu completed",
              gate->admitted_total(), gate->completed_total());
  GOV_REQUIRE(db.Validate().ok(), "overload: database invalid after the run");
  std::printf(
      "governor_test: OK (overload: %zu submitted == %zu completed + %zu "
      "shed, %zu threads)\n",
      submitted, total.ok, total.shed, threads);
  return true;
}

}  // namespace
}  // namespace vqldb

int main(int argc, char** argv) {
  using namespace vqldb;
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    std::fprintf(stderr,
                 "usage: governor_test [--iterations=N] [--seed=A[..B]] "
                 "[--overload [--threads=T] [--per-thread=M]]\n");
    return 1;
  }
  if (flags.overload) {
    return RunOverload(flags.threads, flags.per_thread) ? 0 : 1;
  }

  size_t total = 0, trips = 0, sheds = 0;
  for (uint64_t seed = flags.seed_lo; seed <= flags.seed_hi; ++seed) {
    if (!RunSeed(seed, flags.iterations, &trips, &sheds)) {
      std::fprintf(stderr, "governor_test: FAILED (seed %llu)\n",
                   (unsigned long long)seed);
      return 1;
    }
    total += flags.iterations;
  }
  if (trips == 0 || sheds == 0) {
    std::fprintf(stderr,
                 "governor_test: FAILED (gauntlet never exercised both fault "
                 "paths: %zu trips, %zu sheds)\n",
                 trips, sheds);
    return 1;
  }
  std::printf(
      "governor_test: OK (%zu iterations, seeds %llu..%llu, %zu resource "
      "trips, %zu admission sheds, 0 corrupted states)\n",
      total, (unsigned long long)flags.seed_lo,
      (unsigned long long)flags.seed_hi, trips, sheds);
  return 0;
}
