file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_generalized_intervals.dir/bench_fig3_generalized_intervals.cc.o"
  "CMakeFiles/bench_fig3_generalized_intervals.dir/bench_fig3_generalized_intervals.cc.o.d"
  "bench_fig3_generalized_intervals"
  "bench_fig3_generalized_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_generalized_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
