# Empty dependencies file for bench_fig3_generalized_intervals.
# This may be replaced when dependencies are built.
