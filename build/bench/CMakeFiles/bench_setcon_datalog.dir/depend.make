# Empty dependencies file for bench_setcon_datalog.
# This may be replaced when dependencies are built.
