file(REMOVE_RECURSE
  "CMakeFiles/bench_setcon_datalog.dir/bench_setcon_datalog.cc.o"
  "CMakeFiles/bench_setcon_datalog.dir/bench_setcon_datalog.cc.o.d"
  "bench_setcon_datalog"
  "bench_setcon_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_setcon_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
