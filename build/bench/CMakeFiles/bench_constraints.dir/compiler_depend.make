# Empty compiler generated dependencies file for bench_constraints.
# This may be replaced when dependencies are built.
