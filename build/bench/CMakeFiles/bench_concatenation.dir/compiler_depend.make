# Empty compiler generated dependencies file for bench_concatenation.
# This may be replaced when dependencies are built.
