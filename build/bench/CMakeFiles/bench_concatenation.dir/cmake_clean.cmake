file(REMOVE_RECURSE
  "CMakeFiles/bench_concatenation.dir/bench_concatenation.cc.o"
  "CMakeFiles/bench_concatenation.dir/bench_concatenation.cc.o.d"
  "bench_concatenation"
  "bench_concatenation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concatenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
