file(REMOVE_RECURSE
  "CMakeFiles/bench_fixpoint_scaling.dir/bench_fixpoint_scaling.cc.o"
  "CMakeFiles/bench_fixpoint_scaling.dir/bench_fixpoint_scaling.cc.o.d"
  "bench_fixpoint_scaling"
  "bench_fixpoint_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fixpoint_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
