# Empty dependencies file for bench_fixpoint_scaling.
# This may be replaced when dependencies are built.
