file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_stratification.dir/bench_fig2_stratification.cc.o"
  "CMakeFiles/bench_fig2_stratification.dir/bench_fig2_stratification.cc.o.d"
  "bench_fig2_stratification"
  "bench_fig2_stratification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_stratification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
