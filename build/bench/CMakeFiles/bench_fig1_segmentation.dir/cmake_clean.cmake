file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_segmentation.dir/bench_fig1_segmentation.cc.o"
  "CMakeFiles/bench_fig1_segmentation.dir/bench_fig1_segmentation.cc.o.d"
  "bench_fig1_segmentation"
  "bench_fig1_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
