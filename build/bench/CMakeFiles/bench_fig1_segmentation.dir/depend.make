# Empty dependencies file for bench_fig1_segmentation.
# This may be replaced when dependencies are built.
