file(REMOVE_RECURSE
  "CMakeFiles/bench_indexes.dir/bench_indexes.cc.o"
  "CMakeFiles/bench_indexes.dir/bench_indexes.cc.o.d"
  "bench_indexes"
  "bench_indexes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
