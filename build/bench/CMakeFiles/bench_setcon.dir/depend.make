# Empty dependencies file for bench_setcon.
# This may be replaced when dependencies are built.
