file(REMOVE_RECURSE
  "CMakeFiles/bench_setcon.dir/bench_setcon.cc.o"
  "CMakeFiles/bench_setcon.dir/bench_setcon.cc.o.d"
  "bench_setcon"
  "bench_setcon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_setcon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
