file(REMOVE_RECURSE
  "CMakeFiles/vql.dir/vql.cc.o"
  "CMakeFiles/vql.dir/vql.cc.o.d"
  "vql"
  "vql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
