# Empty compiler generated dependencies file for vql.
# This may be replaced when dependencies are built.
