file(REMOVE_RECURSE
  "CMakeFiles/journal_test.dir/storage/journal_test.cc.o"
  "CMakeFiles/journal_test.dir/storage/journal_test.cc.o.d"
  "journal_test"
  "journal_test.pdb"
  "journal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/journal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
