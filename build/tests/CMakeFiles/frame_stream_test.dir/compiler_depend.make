# Empty compiler generated dependencies file for frame_stream_test.
# This may be replaced when dependencies are built.
