file(REMOVE_RECURSE
  "CMakeFiles/frame_stream_test.dir/video/frame_stream_test.cc.o"
  "CMakeFiles/frame_stream_test.dir/video/frame_stream_test.cc.o.d"
  "frame_stream_test"
  "frame_stream_test.pdb"
  "frame_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
