file(REMOVE_RECURSE
  "CMakeFiles/occurrence_test.dir/video/occurrence_test.cc.o"
  "CMakeFiles/occurrence_test.dir/video/occurrence_test.cc.o.d"
  "occurrence_test"
  "occurrence_test.pdb"
  "occurrence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occurrence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
