# Empty dependencies file for occurrence_test.
# This may be replaced when dependencies are built.
