file(REMOVE_RECURSE
  "CMakeFiles/annotator_test.dir/video/annotator_test.cc.o"
  "CMakeFiles/annotator_test.dir/video/annotator_test.cc.o.d"
  "annotator_test"
  "annotator_test.pdb"
  "annotator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
