# Empty dependencies file for annotator_test.
# This may be replaced when dependencies are built.
