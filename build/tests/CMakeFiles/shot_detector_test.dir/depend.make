# Empty dependencies file for shot_detector_test.
# This may be replaced when dependencies are built.
