file(REMOVE_RECURSE
  "CMakeFiles/shot_detector_test.dir/video/shot_detector_test.cc.o"
  "CMakeFiles/shot_detector_test.dir/video/shot_detector_test.cc.o.d"
  "shot_detector_test"
  "shot_detector_test.pdb"
  "shot_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shot_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
