file(REMOVE_RECURSE
  "CMakeFiles/set_solver_test.dir/setcon/set_solver_test.cc.o"
  "CMakeFiles/set_solver_test.dir/setcon/set_solver_test.cc.o.d"
  "set_solver_test"
  "set_solver_test.pdb"
  "set_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
