# Empty dependencies file for set_solver_test.
# This may be replaced when dependencies are built.
