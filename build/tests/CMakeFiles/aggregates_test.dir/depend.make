# Empty dependencies file for aggregates_test.
# This may be replaced when dependencies are built.
