# Empty dependencies file for virtual_editing_test.
# This may be replaced when dependencies are built.
