file(REMOVE_RECURSE
  "CMakeFiles/virtual_editing_test.dir/video/virtual_editing_test.cc.o"
  "CMakeFiles/virtual_editing_test.dir/video/virtual_editing_test.cc.o.d"
  "virtual_editing_test"
  "virtual_editing_test.pdb"
  "virtual_editing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_editing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
