# Empty dependencies file for rope_database_test.
# This may be replaced when dependencies are built.
