file(REMOVE_RECURSE
  "CMakeFiles/rope_database_test.dir/model/rope_database_test.cc.o"
  "CMakeFiles/rope_database_test.dir/model/rope_database_test.cc.o.d"
  "rope_database_test"
  "rope_database_test.pdb"
  "rope_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rope_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
