file(REMOVE_RECURSE
  "CMakeFiles/differential_oracle_test.dir/engine/differential_oracle_test.cc.o"
  "CMakeFiles/differential_oracle_test.dir/engine/differential_oracle_test.cc.o.d"
  "differential_oracle_test"
  "differential_oracle_test.pdb"
  "differential_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
