file(REMOVE_RECURSE
  "CMakeFiles/object_test.dir/model/object_test.cc.o"
  "CMakeFiles/object_test.dir/model/object_test.cc.o.d"
  "object_test"
  "object_test.pdb"
  "object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
