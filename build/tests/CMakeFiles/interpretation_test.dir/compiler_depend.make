# Empty compiler generated dependencies file for interpretation_test.
# This may be replaced when dependencies are built.
