file(REMOVE_RECURSE
  "CMakeFiles/interpretation_test.dir/engine/interpretation_test.cc.o"
  "CMakeFiles/interpretation_test.dir/engine/interpretation_test.cc.o.d"
  "interpretation_test"
  "interpretation_test.pdb"
  "interpretation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpretation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
