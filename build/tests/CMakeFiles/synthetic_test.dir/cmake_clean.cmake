file(REMOVE_RECURSE
  "CMakeFiles/synthetic_test.dir/video/synthetic_test.cc.o"
  "CMakeFiles/synthetic_test.dir/video/synthetic_test.cc.o.d"
  "synthetic_test"
  "synthetic_test.pdb"
  "synthetic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
