file(REMOVE_RECURSE
  "CMakeFiles/order_solver_test.dir/constraint/order_solver_test.cc.o"
  "CMakeFiles/order_solver_test.dir/constraint/order_solver_test.cc.o.d"
  "order_solver_test"
  "order_solver_test.pdb"
  "order_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
