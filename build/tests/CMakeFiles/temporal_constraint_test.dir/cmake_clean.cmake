file(REMOVE_RECURSE
  "CMakeFiles/temporal_constraint_test.dir/constraint/temporal_constraint_test.cc.o"
  "CMakeFiles/temporal_constraint_test.dir/constraint/temporal_constraint_test.cc.o.d"
  "temporal_constraint_test"
  "temporal_constraint_test.pdb"
  "temporal_constraint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_constraint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
