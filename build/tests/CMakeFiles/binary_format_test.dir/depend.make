# Empty dependencies file for binary_format_test.
# This may be replaced when dependencies are built.
