file(REMOVE_RECURSE
  "CMakeFiles/binary_format_test.dir/storage/binary_format_test.cc.o"
  "CMakeFiles/binary_format_test.dir/storage/binary_format_test.cc.o.d"
  "binary_format_test"
  "binary_format_test.pdb"
  "binary_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
