file(REMOVE_RECURSE
  "CMakeFiles/paper_queries_test.dir/engine/paper_queries_test.cc.o"
  "CMakeFiles/paper_queries_test.dir/engine/paper_queries_test.cc.o.d"
  "paper_queries_test"
  "paper_queries_test.pdb"
  "paper_queries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
