# Empty dependencies file for paper_queries_test.
# This may be replaced when dependencies are built.
