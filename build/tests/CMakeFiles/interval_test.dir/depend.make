# Empty dependencies file for interval_test.
# This may be replaced when dependencies are built.
