file(REMOVE_RECURSE
  "CMakeFiles/temporal_relations_test.dir/engine/temporal_relations_test.cc.o"
  "CMakeFiles/temporal_relations_test.dir/engine/temporal_relations_test.cc.o.d"
  "temporal_relations_test"
  "temporal_relations_test.pdb"
  "temporal_relations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_relations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
