# Empty dependencies file for temporal_relations_test.
# This may be replaced when dependencies are built.
