# Empty compiler generated dependencies file for interval_set_test.
# This may be replaced when dependencies are built.
