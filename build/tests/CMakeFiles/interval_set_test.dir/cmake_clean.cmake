file(REMOVE_RECURSE
  "CMakeFiles/interval_set_test.dir/constraint/interval_set_test.cc.o"
  "CMakeFiles/interval_set_test.dir/constraint/interval_set_test.cc.o.d"
  "interval_set_test"
  "interval_set_test.pdb"
  "interval_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
