# Empty compiler generated dependencies file for concrete_predicates_test.
# This may be replaced when dependencies are built.
