file(REMOVE_RECURSE
  "CMakeFiles/concrete_predicates_test.dir/engine/concrete_predicates_test.cc.o"
  "CMakeFiles/concrete_predicates_test.dir/engine/concrete_predicates_test.cc.o.d"
  "concrete_predicates_test"
  "concrete_predicates_test.pdb"
  "concrete_predicates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concrete_predicates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
