# Empty dependencies file for element_set_test.
# This may be replaced when dependencies are built.
