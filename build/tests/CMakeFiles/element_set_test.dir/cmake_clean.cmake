file(REMOVE_RECURSE
  "CMakeFiles/element_set_test.dir/setcon/element_set_test.cc.o"
  "CMakeFiles/element_set_test.dir/setcon/element_set_test.cc.o.d"
  "element_set_test"
  "element_set_test.pdb"
  "element_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
