# Empty dependencies file for solver_differential_test.
# This may be replaced when dependencies are built.
