file(REMOVE_RECURSE
  "CMakeFiles/solver_differential_test.dir/constraint/solver_differential_test.cc.o"
  "CMakeFiles/solver_differential_test.dir/constraint/solver_differential_test.cc.o.d"
  "solver_differential_test"
  "solver_differential_test.pdb"
  "solver_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
