file(REMOVE_RECURSE
  "CMakeFiles/constraint_edge_cases_test.dir/engine/constraint_edge_cases_test.cc.o"
  "CMakeFiles/constraint_edge_cases_test.dir/engine/constraint_edge_cases_test.cc.o.d"
  "constraint_edge_cases_test"
  "constraint_edge_cases_test.pdb"
  "constraint_edge_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
