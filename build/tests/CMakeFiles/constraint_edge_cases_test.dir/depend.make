# Empty dependencies file for constraint_edge_cases_test.
# This may be replaced when dependencies are built.
