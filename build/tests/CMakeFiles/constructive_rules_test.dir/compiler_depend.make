# Empty compiler generated dependencies file for constructive_rules_test.
# This may be replaced when dependencies are built.
