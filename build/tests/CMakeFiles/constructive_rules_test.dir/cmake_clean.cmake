file(REMOVE_RECURSE
  "CMakeFiles/constructive_rules_test.dir/engine/constructive_rules_test.cc.o"
  "CMakeFiles/constructive_rules_test.dir/engine/constructive_rules_test.cc.o.d"
  "constructive_rules_test"
  "constructive_rules_test.pdb"
  "constructive_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constructive_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
