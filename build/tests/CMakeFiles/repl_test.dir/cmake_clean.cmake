file(REMOVE_RECURSE
  "CMakeFiles/repl_test.dir/shell/repl_test.cc.o"
  "CMakeFiles/repl_test.dir/shell/repl_test.cc.o.d"
  "repl_test"
  "repl_test.pdb"
  "repl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
