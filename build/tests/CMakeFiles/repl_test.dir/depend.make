# Empty dependencies file for repl_test.
# This may be replaced when dependencies are built.
