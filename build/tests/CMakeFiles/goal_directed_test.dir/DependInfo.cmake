
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/goal_directed_test.cc" "tests/CMakeFiles/goal_directed_test.dir/engine/goal_directed_test.cc.o" "gcc" "tests/CMakeFiles/goal_directed_test.dir/engine/goal_directed_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/vqldb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/vqldb_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vqldb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/vqldb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/setcon/CMakeFiles/vqldb_setcon.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vqldb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
