file(REMOVE_RECURSE
  "CMakeFiles/goal_directed_test.dir/engine/goal_directed_test.cc.o"
  "CMakeFiles/goal_directed_test.dir/engine/goal_directed_test.cc.o.d"
  "goal_directed_test"
  "goal_directed_test.pdb"
  "goal_directed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goal_directed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
