# Empty dependencies file for goal_directed_test.
# This may be replaced when dependencies are built.
