file(REMOVE_RECURSE
  "CMakeFiles/indexing_schemes_test.dir/video/indexing_schemes_test.cc.o"
  "CMakeFiles/indexing_schemes_test.dir/video/indexing_schemes_test.cc.o.d"
  "indexing_schemes_test"
  "indexing_schemes_test.pdb"
  "indexing_schemes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexing_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
