# Empty compiler generated dependencies file for indexing_schemes_test.
# This may be replaced when dependencies are built.
