file(REMOVE_RECURSE
  "CMakeFiles/generalized_interval_test.dir/constraint/generalized_interval_test.cc.o"
  "CMakeFiles/generalized_interval_test.dir/constraint/generalized_interval_test.cc.o.d"
  "generalized_interval_test"
  "generalized_interval_test.pdb"
  "generalized_interval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalized_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
