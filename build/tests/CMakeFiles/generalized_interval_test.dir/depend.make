# Empty dependencies file for generalized_interval_test.
# This may be replaced when dependencies are built.
