# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tp_operator_property_test.
