file(REMOVE_RECURSE
  "CMakeFiles/tp_operator_property_test.dir/engine/tp_operator_property_test.cc.o"
  "CMakeFiles/tp_operator_property_test.dir/engine/tp_operator_property_test.cc.o.d"
  "tp_operator_property_test"
  "tp_operator_property_test.pdb"
  "tp_operator_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_operator_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
