# Empty compiler generated dependencies file for tp_operator_property_test.
# This may be replaced when dependencies are built.
