file(REMOVE_RECURSE
  "CMakeFiles/lexer_test.dir/lang/lexer_test.cc.o"
  "CMakeFiles/lexer_test.dir/lang/lexer_test.cc.o.d"
  "lexer_test"
  "lexer_test.pdb"
  "lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
