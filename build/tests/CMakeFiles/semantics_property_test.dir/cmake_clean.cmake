file(REMOVE_RECURSE
  "CMakeFiles/semantics_property_test.dir/engine/semantics_property_test.cc.o"
  "CMakeFiles/semantics_property_test.dir/engine/semantics_property_test.cc.o.d"
  "semantics_property_test"
  "semantics_property_test.pdb"
  "semantics_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantics_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
