# Empty dependencies file for semantics_property_test.
# This may be replaced when dependencies are built.
