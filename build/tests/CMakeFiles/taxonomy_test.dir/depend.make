# Empty dependencies file for taxonomy_test.
# This may be replaced when dependencies are built.
