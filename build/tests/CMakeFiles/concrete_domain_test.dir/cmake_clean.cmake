file(REMOVE_RECURSE
  "CMakeFiles/concrete_domain_test.dir/constraint/concrete_domain_test.cc.o"
  "CMakeFiles/concrete_domain_test.dir/constraint/concrete_domain_test.cc.o.d"
  "concrete_domain_test"
  "concrete_domain_test.pdb"
  "concrete_domain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concrete_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
