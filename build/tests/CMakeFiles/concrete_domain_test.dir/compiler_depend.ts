# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for concrete_domain_test.
