# Empty dependencies file for concrete_domain_test.
# This may be replaced when dependencies are built.
