# Empty dependencies file for derived_relations_test.
# This may be replaced when dependencies are built.
