file(REMOVE_RECURSE
  "CMakeFiles/derived_relations_test.dir/engine/derived_relations_test.cc.o"
  "CMakeFiles/derived_relations_test.dir/engine/derived_relations_test.cc.o.d"
  "derived_relations_test"
  "derived_relations_test.pdb"
  "derived_relations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derived_relations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
