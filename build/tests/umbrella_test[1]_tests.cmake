add_test([=[UmbrellaTest.OneIncludeDrivesTheWholePipeline]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=UmbrellaTest.OneIncludeDrivesTheWholePipeline]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[UmbrellaTest.OneIncludeDrivesTheWholePipeline]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS UmbrellaTest.OneIncludeDrivesTheWholePipeline)
