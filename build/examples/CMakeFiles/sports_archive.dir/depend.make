# Empty dependencies file for sports_archive.
# This may be replaced when dependencies are built.
