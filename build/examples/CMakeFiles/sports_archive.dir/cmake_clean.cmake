file(REMOVE_RECURSE
  "CMakeFiles/sports_archive.dir/sports_archive.cc.o"
  "CMakeFiles/sports_archive.dir/sports_archive.cc.o.d"
  "sports_archive"
  "sports_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sports_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
