# Empty compiler generated dependencies file for virtual_editing.
# This may be replaced when dependencies are built.
