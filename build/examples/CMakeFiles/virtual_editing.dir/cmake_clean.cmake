file(REMOVE_RECURSE
  "CMakeFiles/virtual_editing.dir/virtual_editing.cc.o"
  "CMakeFiles/virtual_editing.dir/virtual_editing.cc.o.d"
  "virtual_editing"
  "virtual_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
