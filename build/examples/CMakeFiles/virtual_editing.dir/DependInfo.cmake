
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/virtual_editing.cc" "examples/CMakeFiles/virtual_editing.dir/virtual_editing.cc.o" "gcc" "examples/CMakeFiles/virtual_editing.dir/virtual_editing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/video/CMakeFiles/vqldb_video.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/vqldb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/vqldb_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vqldb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/vqldb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/setcon/CMakeFiles/vqldb_setcon.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vqldb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
