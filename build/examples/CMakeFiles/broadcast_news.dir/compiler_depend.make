# Empty compiler generated dependencies file for broadcast_news.
# This may be replaced when dependencies are built.
