file(REMOVE_RECURSE
  "CMakeFiles/broadcast_news.dir/broadcast_news.cc.o"
  "CMakeFiles/broadcast_news.dir/broadcast_news.cc.o.d"
  "broadcast_news"
  "broadcast_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
