# Empty compiler generated dependencies file for film_archive.
# This may be replaced when dependencies are built.
