file(REMOVE_RECURSE
  "CMakeFiles/film_archive.dir/film_archive.cc.o"
  "CMakeFiles/film_archive.dir/film_archive.cc.o.d"
  "film_archive"
  "film_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/film_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
