# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_broadcast_news "/root/repo/build/examples/broadcast_news")
set_tests_properties(example_broadcast_news PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_virtual_editing "/root/repo/build/examples/virtual_editing")
set_tests_properties(example_virtual_editing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sports_archive "/root/repo/build/examples/sports_archive")
set_tests_properties(example_sports_archive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_film_archive "/root/repo/build/examples/film_archive")
set_tests_properties(example_film_archive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
