# Empty dependencies file for vqldb_setcon.
# This may be replaced when dependencies are built.
