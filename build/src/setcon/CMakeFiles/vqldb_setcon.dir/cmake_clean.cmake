file(REMOVE_RECURSE
  "CMakeFiles/vqldb_setcon.dir/set_constraint.cc.o"
  "CMakeFiles/vqldb_setcon.dir/set_constraint.cc.o.d"
  "CMakeFiles/vqldb_setcon.dir/set_solver.cc.o"
  "CMakeFiles/vqldb_setcon.dir/set_solver.cc.o.d"
  "libvqldb_setcon.a"
  "libvqldb_setcon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqldb_setcon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
