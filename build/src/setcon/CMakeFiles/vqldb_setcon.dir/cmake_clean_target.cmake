file(REMOVE_RECURSE
  "libvqldb_setcon.a"
)
