
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/analyzer.cc" "src/lang/CMakeFiles/vqldb_lang.dir/analyzer.cc.o" "gcc" "src/lang/CMakeFiles/vqldb_lang.dir/analyzer.cc.o.d"
  "/root/repo/src/lang/ast.cc" "src/lang/CMakeFiles/vqldb_lang.dir/ast.cc.o" "gcc" "src/lang/CMakeFiles/vqldb_lang.dir/ast.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/lang/CMakeFiles/vqldb_lang.dir/lexer.cc.o" "gcc" "src/lang/CMakeFiles/vqldb_lang.dir/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/lang/CMakeFiles/vqldb_lang.dir/parser.cc.o" "gcc" "src/lang/CMakeFiles/vqldb_lang.dir/parser.cc.o.d"
  "/root/repo/src/lang/token.cc" "src/lang/CMakeFiles/vqldb_lang.dir/token.cc.o" "gcc" "src/lang/CMakeFiles/vqldb_lang.dir/token.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vqldb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/vqldb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vqldb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/setcon/CMakeFiles/vqldb_setcon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
