file(REMOVE_RECURSE
  "CMakeFiles/vqldb_lang.dir/analyzer.cc.o"
  "CMakeFiles/vqldb_lang.dir/analyzer.cc.o.d"
  "CMakeFiles/vqldb_lang.dir/ast.cc.o"
  "CMakeFiles/vqldb_lang.dir/ast.cc.o.d"
  "CMakeFiles/vqldb_lang.dir/lexer.cc.o"
  "CMakeFiles/vqldb_lang.dir/lexer.cc.o.d"
  "CMakeFiles/vqldb_lang.dir/parser.cc.o"
  "CMakeFiles/vqldb_lang.dir/parser.cc.o.d"
  "CMakeFiles/vqldb_lang.dir/token.cc.o"
  "CMakeFiles/vqldb_lang.dir/token.cc.o.d"
  "libvqldb_lang.a"
  "libvqldb_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqldb_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
