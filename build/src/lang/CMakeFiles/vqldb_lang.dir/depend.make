# Empty dependencies file for vqldb_lang.
# This may be replaced when dependencies are built.
