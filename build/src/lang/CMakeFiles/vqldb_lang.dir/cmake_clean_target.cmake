file(REMOVE_RECURSE
  "libvqldb_lang.a"
)
