file(REMOVE_RECURSE
  "CMakeFiles/vqldb_storage.dir/binary_format.cc.o"
  "CMakeFiles/vqldb_storage.dir/binary_format.cc.o.d"
  "CMakeFiles/vqldb_storage.dir/catalog.cc.o"
  "CMakeFiles/vqldb_storage.dir/catalog.cc.o.d"
  "CMakeFiles/vqldb_storage.dir/journal.cc.o"
  "CMakeFiles/vqldb_storage.dir/journal.cc.o.d"
  "CMakeFiles/vqldb_storage.dir/text_format.cc.o"
  "CMakeFiles/vqldb_storage.dir/text_format.cc.o.d"
  "libvqldb_storage.a"
  "libvqldb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqldb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
