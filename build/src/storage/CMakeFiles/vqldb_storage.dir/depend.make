# Empty dependencies file for vqldb_storage.
# This may be replaced when dependencies are built.
