file(REMOVE_RECURSE
  "libvqldb_storage.a"
)
