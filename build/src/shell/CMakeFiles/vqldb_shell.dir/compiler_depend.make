# Empty compiler generated dependencies file for vqldb_shell.
# This may be replaced when dependencies are built.
