file(REMOVE_RECURSE
  "libvqldb_shell.a"
)
