file(REMOVE_RECURSE
  "CMakeFiles/vqldb_shell.dir/repl.cc.o"
  "CMakeFiles/vqldb_shell.dir/repl.cc.o.d"
  "libvqldb_shell.a"
  "libvqldb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqldb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
