file(REMOVE_RECURSE
  "libvqldb_constraint.a"
)
