# Empty dependencies file for vqldb_constraint.
# This may be replaced when dependencies are built.
