file(REMOVE_RECURSE
  "CMakeFiles/vqldb_constraint.dir/concrete_domain.cc.o"
  "CMakeFiles/vqldb_constraint.dir/concrete_domain.cc.o.d"
  "CMakeFiles/vqldb_constraint.dir/generalized_interval.cc.o"
  "CMakeFiles/vqldb_constraint.dir/generalized_interval.cc.o.d"
  "CMakeFiles/vqldb_constraint.dir/interval.cc.o"
  "CMakeFiles/vqldb_constraint.dir/interval.cc.o.d"
  "CMakeFiles/vqldb_constraint.dir/interval_set.cc.o"
  "CMakeFiles/vqldb_constraint.dir/interval_set.cc.o.d"
  "CMakeFiles/vqldb_constraint.dir/order_solver.cc.o"
  "CMakeFiles/vqldb_constraint.dir/order_solver.cc.o.d"
  "CMakeFiles/vqldb_constraint.dir/temporal_constraint.cc.o"
  "CMakeFiles/vqldb_constraint.dir/temporal_constraint.cc.o.d"
  "libvqldb_constraint.a"
  "libvqldb_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqldb_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
