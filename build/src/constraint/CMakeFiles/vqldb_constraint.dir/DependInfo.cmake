
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraint/concrete_domain.cc" "src/constraint/CMakeFiles/vqldb_constraint.dir/concrete_domain.cc.o" "gcc" "src/constraint/CMakeFiles/vqldb_constraint.dir/concrete_domain.cc.o.d"
  "/root/repo/src/constraint/generalized_interval.cc" "src/constraint/CMakeFiles/vqldb_constraint.dir/generalized_interval.cc.o" "gcc" "src/constraint/CMakeFiles/vqldb_constraint.dir/generalized_interval.cc.o.d"
  "/root/repo/src/constraint/interval.cc" "src/constraint/CMakeFiles/vqldb_constraint.dir/interval.cc.o" "gcc" "src/constraint/CMakeFiles/vqldb_constraint.dir/interval.cc.o.d"
  "/root/repo/src/constraint/interval_set.cc" "src/constraint/CMakeFiles/vqldb_constraint.dir/interval_set.cc.o" "gcc" "src/constraint/CMakeFiles/vqldb_constraint.dir/interval_set.cc.o.d"
  "/root/repo/src/constraint/order_solver.cc" "src/constraint/CMakeFiles/vqldb_constraint.dir/order_solver.cc.o" "gcc" "src/constraint/CMakeFiles/vqldb_constraint.dir/order_solver.cc.o.d"
  "/root/repo/src/constraint/temporal_constraint.cc" "src/constraint/CMakeFiles/vqldb_constraint.dir/temporal_constraint.cc.o" "gcc" "src/constraint/CMakeFiles/vqldb_constraint.dir/temporal_constraint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vqldb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
