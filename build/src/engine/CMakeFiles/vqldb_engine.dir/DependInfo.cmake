
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/aggregates.cc" "src/engine/CMakeFiles/vqldb_engine.dir/aggregates.cc.o" "gcc" "src/engine/CMakeFiles/vqldb_engine.dir/aggregates.cc.o.d"
  "/root/repo/src/engine/binding.cc" "src/engine/CMakeFiles/vqldb_engine.dir/binding.cc.o" "gcc" "src/engine/CMakeFiles/vqldb_engine.dir/binding.cc.o.d"
  "/root/repo/src/engine/evaluator.cc" "src/engine/CMakeFiles/vqldb_engine.dir/evaluator.cc.o" "gcc" "src/engine/CMakeFiles/vqldb_engine.dir/evaluator.cc.o.d"
  "/root/repo/src/engine/interpretation.cc" "src/engine/CMakeFiles/vqldb_engine.dir/interpretation.cc.o" "gcc" "src/engine/CMakeFiles/vqldb_engine.dir/interpretation.cc.o.d"
  "/root/repo/src/engine/query.cc" "src/engine/CMakeFiles/vqldb_engine.dir/query.cc.o" "gcc" "src/engine/CMakeFiles/vqldb_engine.dir/query.cc.o.d"
  "/root/repo/src/engine/rule_compiler.cc" "src/engine/CMakeFiles/vqldb_engine.dir/rule_compiler.cc.o" "gcc" "src/engine/CMakeFiles/vqldb_engine.dir/rule_compiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vqldb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/vqldb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/setcon/CMakeFiles/vqldb_setcon.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vqldb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/vqldb_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
