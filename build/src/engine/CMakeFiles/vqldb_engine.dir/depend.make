# Empty dependencies file for vqldb_engine.
# This may be replaced when dependencies are built.
