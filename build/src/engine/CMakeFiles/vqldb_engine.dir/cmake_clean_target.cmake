file(REMOVE_RECURSE
  "libvqldb_engine.a"
)
