file(REMOVE_RECURSE
  "CMakeFiles/vqldb_engine.dir/aggregates.cc.o"
  "CMakeFiles/vqldb_engine.dir/aggregates.cc.o.d"
  "CMakeFiles/vqldb_engine.dir/binding.cc.o"
  "CMakeFiles/vqldb_engine.dir/binding.cc.o.d"
  "CMakeFiles/vqldb_engine.dir/evaluator.cc.o"
  "CMakeFiles/vqldb_engine.dir/evaluator.cc.o.d"
  "CMakeFiles/vqldb_engine.dir/interpretation.cc.o"
  "CMakeFiles/vqldb_engine.dir/interpretation.cc.o.d"
  "CMakeFiles/vqldb_engine.dir/query.cc.o"
  "CMakeFiles/vqldb_engine.dir/query.cc.o.d"
  "CMakeFiles/vqldb_engine.dir/rule_compiler.cc.o"
  "CMakeFiles/vqldb_engine.dir/rule_compiler.cc.o.d"
  "libvqldb_engine.a"
  "libvqldb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqldb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
