file(REMOVE_RECURSE
  "libvqldb_model.a"
)
