file(REMOVE_RECURSE
  "CMakeFiles/vqldb_model.dir/database.cc.o"
  "CMakeFiles/vqldb_model.dir/database.cc.o.d"
  "CMakeFiles/vqldb_model.dir/object.cc.o"
  "CMakeFiles/vqldb_model.dir/object.cc.o.d"
  "CMakeFiles/vqldb_model.dir/value.cc.o"
  "CMakeFiles/vqldb_model.dir/value.cc.o.d"
  "libvqldb_model.a"
  "libvqldb_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqldb_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
