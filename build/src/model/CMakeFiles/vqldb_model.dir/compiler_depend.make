# Empty compiler generated dependencies file for vqldb_model.
# This may be replaced when dependencies are built.
