
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/database.cc" "src/model/CMakeFiles/vqldb_model.dir/database.cc.o" "gcc" "src/model/CMakeFiles/vqldb_model.dir/database.cc.o.d"
  "/root/repo/src/model/object.cc" "src/model/CMakeFiles/vqldb_model.dir/object.cc.o" "gcc" "src/model/CMakeFiles/vqldb_model.dir/object.cc.o.d"
  "/root/repo/src/model/value.cc" "src/model/CMakeFiles/vqldb_model.dir/value.cc.o" "gcc" "src/model/CMakeFiles/vqldb_model.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vqldb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/vqldb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/setcon/CMakeFiles/vqldb_setcon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
