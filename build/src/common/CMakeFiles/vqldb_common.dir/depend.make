# Empty dependencies file for vqldb_common.
# This may be replaced when dependencies are built.
