file(REMOVE_RECURSE
  "CMakeFiles/vqldb_common.dir/logging.cc.o"
  "CMakeFiles/vqldb_common.dir/logging.cc.o.d"
  "CMakeFiles/vqldb_common.dir/status.cc.o"
  "CMakeFiles/vqldb_common.dir/status.cc.o.d"
  "CMakeFiles/vqldb_common.dir/string_util.cc.o"
  "CMakeFiles/vqldb_common.dir/string_util.cc.o.d"
  "libvqldb_common.a"
  "libvqldb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqldb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
