file(REMOVE_RECURSE
  "libvqldb_common.a"
)
