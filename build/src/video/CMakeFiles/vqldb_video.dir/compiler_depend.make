# Empty compiler generated dependencies file for vqldb_video.
# This may be replaced when dependencies are built.
