file(REMOVE_RECURSE
  "CMakeFiles/vqldb_video.dir/annotator.cc.o"
  "CMakeFiles/vqldb_video.dir/annotator.cc.o.d"
  "CMakeFiles/vqldb_video.dir/frame_stream.cc.o"
  "CMakeFiles/vqldb_video.dir/frame_stream.cc.o.d"
  "CMakeFiles/vqldb_video.dir/indexing_schemes.cc.o"
  "CMakeFiles/vqldb_video.dir/indexing_schemes.cc.o.d"
  "CMakeFiles/vqldb_video.dir/occurrence.cc.o"
  "CMakeFiles/vqldb_video.dir/occurrence.cc.o.d"
  "CMakeFiles/vqldb_video.dir/shot_detector.cc.o"
  "CMakeFiles/vqldb_video.dir/shot_detector.cc.o.d"
  "CMakeFiles/vqldb_video.dir/synthetic.cc.o"
  "CMakeFiles/vqldb_video.dir/synthetic.cc.o.d"
  "CMakeFiles/vqldb_video.dir/virtual_editing.cc.o"
  "CMakeFiles/vqldb_video.dir/virtual_editing.cc.o.d"
  "libvqldb_video.a"
  "libvqldb_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqldb_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
