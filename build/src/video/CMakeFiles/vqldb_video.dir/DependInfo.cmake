
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/annotator.cc" "src/video/CMakeFiles/vqldb_video.dir/annotator.cc.o" "gcc" "src/video/CMakeFiles/vqldb_video.dir/annotator.cc.o.d"
  "/root/repo/src/video/frame_stream.cc" "src/video/CMakeFiles/vqldb_video.dir/frame_stream.cc.o" "gcc" "src/video/CMakeFiles/vqldb_video.dir/frame_stream.cc.o.d"
  "/root/repo/src/video/indexing_schemes.cc" "src/video/CMakeFiles/vqldb_video.dir/indexing_schemes.cc.o" "gcc" "src/video/CMakeFiles/vqldb_video.dir/indexing_schemes.cc.o.d"
  "/root/repo/src/video/occurrence.cc" "src/video/CMakeFiles/vqldb_video.dir/occurrence.cc.o" "gcc" "src/video/CMakeFiles/vqldb_video.dir/occurrence.cc.o.d"
  "/root/repo/src/video/shot_detector.cc" "src/video/CMakeFiles/vqldb_video.dir/shot_detector.cc.o" "gcc" "src/video/CMakeFiles/vqldb_video.dir/shot_detector.cc.o.d"
  "/root/repo/src/video/synthetic.cc" "src/video/CMakeFiles/vqldb_video.dir/synthetic.cc.o" "gcc" "src/video/CMakeFiles/vqldb_video.dir/synthetic.cc.o.d"
  "/root/repo/src/video/virtual_editing.cc" "src/video/CMakeFiles/vqldb_video.dir/virtual_editing.cc.o" "gcc" "src/video/CMakeFiles/vqldb_video.dir/virtual_editing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vqldb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/vqldb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vqldb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/vqldb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/vqldb_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/setcon/CMakeFiles/vqldb_setcon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
