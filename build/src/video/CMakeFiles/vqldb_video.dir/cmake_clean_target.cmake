file(REMOVE_RECURSE
  "libvqldb_video.a"
)
