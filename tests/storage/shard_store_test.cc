#include "src/storage/shard_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include "src/storage/binary_format.h"
#include "src/storage/journal.h"

namespace vqldb {
namespace {

/// An Env that lets the first `budget` mutating operations through and then
/// fails every mutating operation — the filesystem as a crashed process
/// left it. Reads always pass through, so recovery can run against the
/// same env. Budget -1 = unlimited.
class FailAfterEnv : public Env {
 public:
  explicit FailAfterEnv(Env* base) : base_(base) {}

  void set_budget(int64_t budget) { budget_.store(budget); }
  int64_t mutations() const { return mutations_.load(); }

  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    VQLDB_RETURN_NOT_OK(Gate());
    VQLDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                           base_->NewAppendableFile(path));
    return std::unique_ptr<WritableFile>(
        new GatedFile(this, std::move(file)));
  }
  Result<std::unique_ptr<WritableFile>> NewTruncatedFile(
      const std::string& path) override {
    VQLDB_RETURN_NOT_OK(Gate());
    VQLDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                           base_->NewTruncatedFile(path));
    return std::unique_ptr<WritableFile>(
        new GatedFile(this, std::move(file)));
  }
  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    VQLDB_RETURN_NOT_OK(Gate());
    return base_->RenameFile(from, to);
  }
  Status RemoveFile(const std::string& path) override {
    VQLDB_RETURN_NOT_OK(Gate());
    return base_->RemoveFile(path);
  }
  Status CreateDir(const std::string& path) override {
    VQLDB_RETURN_NOT_OK(Gate());
    return base_->CreateDir(path);
  }
  Status SyncDir(const std::string& path_in_dir) override {
    VQLDB_RETURN_NOT_OK(Gate());
    return base_->SyncDir(path_in_dir);
  }

 private:
  class GatedFile : public WritableFile {
   public:
    GatedFile(FailAfterEnv* env, std::unique_ptr<WritableFile> base)
        : env_(env), base_(std::move(base)) {}
    Status Append(std::string_view data) override {
      VQLDB_RETURN_NOT_OK(env_->Gate());
      return base_->Append(data);
    }
    Status Sync() override {
      VQLDB_RETURN_NOT_OK(env_->Gate());
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    FailAfterEnv* env_;
    std::unique_ptr<WritableFile> base_;
  };

  Status Gate() {
    mutations_.fetch_add(1);
    int64_t budget = budget_.load();
    if (budget < 0) return Status::OK();
    if (budget == 0) return Status::IOError("injected: budget exhausted");
    budget_.fetch_sub(1);
    return Status::OK();
  }

  Env* base_;
  std::atomic<int64_t> budget_{-1};
  std::atomic<int64_t> mutations_{0};
};

class ShardStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs each test as its own process, possibly
    // in parallel, so a shared directory would race.
    root_ = ::testing::TempDir() + "/shard_store_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  /// Fast deterministic options: bounded retries, no real sleeping.
  static ShardedArchive::Options FastOptions(size_t shards = 4) {
    ShardedArchive::Options options;
    options.shard_count = shards;
    options.backoff.initial_ms = 1;
    options.backoff.max_ms = 2;
    options.backoff.max_attempts = 2;
    options.backoff.seed = 7;
    options.sleep_between_retries = false;
    options.recovery_threads = 2;
    return options;
  }

  static std::unique_ptr<ShardedArchive> MustOpen(
      const std::string& root, ShardedArchive::Options options) {
    auto archive = ShardedArchive::Open(root, std::move(options));
    EXPECT_TRUE(archive.ok()) << archive.status();
    return archive.ok() ? std::move(*archive) : nullptr;
  }

  /// A tenant key that routes to `shard` (probed; routing is stable).
  static std::string TenantFor(const ShardedArchive& archive, uint32_t shard) {
    for (int i = 0;; ++i) {
      std::string tenant = "tenant" + std::to_string(i);
      if (archive.ShardIdFor(tenant) == shard) return tenant;
    }
  }

  /// Serving-copy bytes of one shard (for byte-identity assertions).
  static std::string ShardBytes(ShardedArchive& archive, uint32_t shard) {
    VideoDatabase* db = archive.shard_db(shard);
    EXPECT_NE(db, nullptr);
    auto bytes = BinaryFormat::Serialize(*db);
    EXPECT_TRUE(bytes.ok()) << bytes.status();
    return bytes.ok() ? *bytes : std::string();
  }

  /// Seeds every shard with one entity (sym<id>) and one fact over it.
  static void SeedEveryShard(ShardedArchive& archive) {
    for (uint32_t id = 0; id < archive.shard_count(); ++id) {
      std::string tenant = TenantFor(archive, id);
      std::string sym = "sym" + std::to_string(id);
      ASSERT_TRUE(
          archive.Apply(tenant, "object " + sym + " { }.").ok());
      ASSERT_TRUE(archive.Apply(tenant, "tagged(" + sym + ").").ok());
    }
  }

  std::string root_;
};

TEST_F(ShardStoreTest, FreshArchiveCreatesLayoutAndRecoversHealthy) {
  auto archive = MustOpen(root_, FastOptions(3));
  ASSERT_NE(archive, nullptr);
  EXPECT_EQ(archive->shard_count(), 3u);
  EXPECT_TRUE(std::filesystem::exists(root_ + "/MANIFEST"));
  for (uint32_t id = 0; id < 3; ++id) {
    EXPECT_TRUE(std::filesystem::is_directory(root_ + "/shard_" +
                                              std::to_string(id)));
    EXPECT_EQ(archive->shard_state(id), ShardedArchive::ShardState::kHealthy);
    EXPECT_EQ(archive->shard_generation(id), 0u);
  }
}

TEST_F(ShardStoreTest, ManifestWinsOverRequestedShardCountOnReopen) {
  { auto archive = MustOpen(root_, FastOptions(2)); ASSERT_NE(archive, nullptr); }
  auto reopened = MustOpen(root_, FastOptions(8));  // ignored: manifest says 2
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->shard_count(), 2u);
}

TEST_F(ShardStoreTest, TenantRoutingIsStableAndInRange) {
  auto archive = MustOpen(root_, FastOptions(4));
  ASSERT_NE(archive, nullptr);
  std::set<uint32_t> hit;
  for (int i = 0; i < 64; ++i) {
    std::string tenant = "t" + std::to_string(i);
    uint32_t shard = archive->ShardIdFor(tenant);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(archive->ShardIdFor(tenant), shard);  // stable
    EXPECT_EQ(TenantHash(tenant) % 4, shard);       // the documented formula
    hit.insert(shard);
  }
  EXPECT_EQ(hit.size(), 4u);  // 64 tenants spread over all 4 shards
}

TEST_F(ShardStoreTest, ApplyJournalsAndEveryShardRecoversOnReopen) {
  {
    auto archive = MustOpen(root_, FastOptions(4));
    ASSERT_NE(archive, nullptr);
    SeedEveryShard(*archive);
  }
  auto reopened = MustOpen(root_, FastOptions(4));
  ASSERT_NE(reopened, nullptr);
  for (uint32_t id = 0; id < 4; ++id) {
    EXPECT_EQ(reopened->shard_state(id),
              ShardedArchive::ShardState::kHealthy);
    RecoveryReport report = reopened->shard_recovery_report(id);
    EXPECT_EQ(report.records_replayed, 2u) << "shard " << id;
    EXPECT_EQ(report.records_dropped, 0u);
    EXPECT_EQ(reopened->shard_db(id)->fact_count(), 1u);
  }
  auto result = reopened->Query("?- tagged(X).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 4u);  // one row per shard, merged
  EXPECT_FALSE(result->partial);
}

TEST_F(ShardStoreTest, ScatterGatherMergesSortedAndDeduped) {
  auto archive = MustOpen(root_, FastOptions(4));
  ASSERT_NE(archive, nullptr);
  SeedEveryShard(*archive);
  auto result = archive->Query("?- tagged(X).");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->columns, std::vector<std::string>{"X"});
  ASSERT_EQ(result->rows.size(), 4u);
  EXPECT_TRUE(std::is_sorted(result->rows.begin(), result->rows.end()));
  EXPECT_EQ(result->rows[0], std::vector<std::string>{"sym0"});
  EXPECT_EQ(result->shards_targeted, 4u);
  EXPECT_EQ(result->shards_answered, 4u);
  EXPECT_EQ(archive->last_exec_info().shards_answered, 4u);
  EXPECT_FALSE(archive->last_exec_info().partial);
}

TEST_F(ShardStoreTest, ConstantSymbolPrunesForeignShards) {
  auto archive = MustOpen(root_, FastOptions(4));
  ASSERT_NE(archive, nullptr);
  SeedEveryShard(*archive);
  // sym2 is shard 2's local symbol: every other shard is provably empty.
  auto result = archive->Query("?- tagged(sym2).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 1u);
  EXPECT_EQ(result->shards_pruned, 3u);
  EXPECT_EQ(result->shards_targeted, 1u);
  EXPECT_EQ(archive->last_exec_info().shards_pruned, 3u);
  // Pruned shards still show up in the per-shard report.
  size_t pruned_reports = 0;
  for (const auto& r : result->reports) pruned_reports += r.pruned ? 1 : 0;
  EXPECT_EQ(pruned_reports, 3u);
}

TEST_F(ShardStoreTest, UndeclaredRelationIsEmptyNotAnError) {
  auto archive = MustOpen(root_, FastOptions(2));
  ASSERT_NE(archive, nullptr);
  SeedEveryShard(*archive);
  auto result = archive->Query("?- never_declared(X, Y).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->empty());
  EXPECT_FALSE(result->partial);
  EXPECT_EQ(result->shards_answered, 2u);
}

TEST_F(ShardStoreTest, RulesInstallArchiveWideAndDeriveAcrossShards) {
  auto archive = MustOpen(root_, FastOptions(4));
  ASSERT_NE(archive, nullptr);
  SeedEveryShard(*archive);
  ASSERT_TRUE(archive->Apply("anyone", "marked(X) <- tagged(X).").ok());
  auto result = archive->Query("?- marked(X).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 4u);  // the rule fired on every shard
}

TEST_F(ShardStoreTest, ApplyRejectsQueries) {
  auto archive = MustOpen(root_, FastOptions(2));
  ASSERT_NE(archive, nullptr);
  Status st = archive->Apply("t", "?- tagged(X).");
  EXPECT_TRUE(st.IsInvalidArgument()) << st;
}

TEST_F(ShardStoreTest, TornJournalTailIsolatesToOneShard) {
  std::vector<std::string> reference;
  {
    auto archive = MustOpen(root_, FastOptions(4));
    ASSERT_NE(archive, nullptr);
    SeedEveryShard(*archive);
    for (uint32_t id = 0; id < 4; ++id) {
      reference.push_back(ShardBytes(*archive, id));
    }
  }
  // Tear shard 1's journal tail by hand: a record cut mid-payload.
  {
    std::string torn = Journal::FrameRecord("object late { }.");
    torn.resize(torn.size() - 4);
    std::ofstream raw(root_ + "/shard_1/journal-0.wal",
                      std::ios::binary | std::ios::app);
    raw.write(torn.data(), static_cast<std::streamsize>(torn.size()));
  }
  auto reopened = MustOpen(root_, FastOptions(4));
  ASSERT_NE(reopened, nullptr);
  for (uint32_t id = 0; id < 4; ++id) {
    EXPECT_EQ(reopened->shard_state(id),
              ShardedArchive::ShardState::kHealthy);
    // Every shard — including the torn one — recovers to exactly the
    // acknowledged state; the torn record contributes nothing.
    EXPECT_EQ(ShardBytes(*reopened, id), reference[id]) << "shard " << id;
  }
  RecoveryReport torn_report = reopened->shard_recovery_report(1);
  EXPECT_TRUE(torn_report.truncated);
  EXPECT_EQ(torn_report.records_dropped, 1u);
  for (uint32_t id : {0u, 2u, 3u}) {
    EXPECT_FALSE(reopened->shard_recovery_report(id).truncated);
  }
}

TEST_F(ShardStoreTest, MissingShardDirectoryFailsOnlyThatShard) {
  {
    auto archive = MustOpen(root_, FastOptions(4));
    ASSERT_NE(archive, nullptr);
    SeedEveryShard(*archive);
  }
  std::filesystem::remove_all(root_ + "/shard_2");
  auto reopened = MustOpen(root_, FastOptions(4));
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->shard_state(2), ShardedArchive::ShardState::kFailed);
  for (uint32_t id : {0u, 1u, 3u}) {
    EXPECT_EQ(reopened->shard_state(id),
              ShardedArchive::ShardState::kHealthy);
  }

  // Strict: the failed shard fails the whole query.
  auto strict = reopened->Query("?- tagged(X).");
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsUnavailable()) << strict.status();

  // Partial: the healthy shards answer and the gap is reported — never a
  // silently complete answer.
  ShardedArchive::QueryOptions partial_opts;
  partial_opts.allow_partial = true;
  auto partial = reopened->Query("?- tagged(X).", partial_opts);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_TRUE(partial->partial);
  EXPECT_EQ(partial->size(), 3u);
  EXPECT_EQ(partial->shards_answered, 3u);
  ASSERT_EQ(partial->reports.size(), 4u);
  EXPECT_EQ(partial->reports[2].state, "failed");
  EXPECT_FALSE(partial->reports[2].error.empty());
  EXPECT_NE(partial->ToString().find("PARTIAL"), std::string::npos);

  // Writes to the failed shard are refused; other shards still accept.
  std::string failed_tenant = TenantFor(*reopened, 2);
  EXPECT_TRUE(reopened->Apply(failed_tenant, "object x { }.")
                  .IsUnavailable());
  std::string live_tenant = TenantFor(*reopened, 0);
  EXPECT_TRUE(reopened->Apply(live_tenant, "object x { }.").ok());
}

TEST_F(ShardStoreTest, KillAndRecoverShardRoundTrip) {
  auto archive = MustOpen(root_, FastOptions(4));
  ASSERT_NE(archive, nullptr);
  SeedEveryShard(*archive);

  archive->KillShard(1);
  EXPECT_EQ(archive->shard_state(1), ShardedArchive::ShardState::kFailed);
  EXPECT_EQ(archive->shard_db(1), nullptr);
  EXPECT_TRUE(archive->Query("?- tagged(X).").status().IsUnavailable());

  ShardedArchive::QueryOptions partial_opts;
  partial_opts.allow_partial = true;
  auto partial = archive->Query("?- tagged(X).", partial_opts);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_TRUE(partial->partial);
  EXPECT_EQ(partial->size(), 3u);

  // Durable state is untouched: recovery restores the shard completely.
  ASSERT_TRUE(archive->RecoverShard(1).ok());
  EXPECT_EQ(archive->shard_state(1), ShardedArchive::ShardState::kHealthy);
  auto full = archive->Query("?- tagged(X).");
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->size(), 4u);
  EXPECT_FALSE(full->partial);
}

// Kill -> query -> recover -> query: answers produced during a degraded
// (PARTIAL) scatter must never enter the per-shard query caches — a cached
// entry carries no completeness report, so a later hit would serve the
// degraded-era answer as if the scatter had been complete.
TEST_F(ShardStoreTest, DegradedScatterNeverPopulatesShardCaches) {
  auto archive = MustOpen(root_, FastOptions(4));
  ASSERT_NE(archive, nullptr);
  SeedEveryShard(*archive);

  // A complete scatter caches one entry in every shard's session.
  auto before = archive->Query("?- tagged(X).");
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->size(), 4u);

  archive->KillShard(1);

  // Strict mode fails on the health pre-scan, before any shard session
  // runs — no shard caches an answer for the doomed scatter.
  EXPECT_TRUE(archive->Query("?- tagged(sym0).").status().IsUnavailable());

  // A degraded scatter answers from the live shards with caching
  // suppressed: sym0 resolves only on shard 0, so shard 0 runs this fresh
  // goal but must not retain it.
  ShardedArchive::QueryOptions partial_opts;
  partial_opts.allow_partial = true;
  auto partial = archive->Query("?- tagged(sym0).", partial_opts);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_TRUE(partial->partial);
  EXPECT_EQ(partial->size(), 1u);

  // Every live shard still holds exactly the one complete-era entry; the
  // degraded-era goal was not stored. sys_cache(kind, enabled, entries,
  // bytes, max) reports each session's cache occupancy.
  auto caches = archive->Query("?- sys_cache(K, E, N, B, M).", partial_opts);
  ASSERT_TRUE(caches.ok()) << caches.status();
  bool saw_query_row = false;
  for (const auto& row : caches->rows) {
    ASSERT_EQ(row.size(), 5u);
    if (row[0] != "\"query\"" && row[0] != "query") continue;
    saw_query_row = true;
    EXPECT_EQ(row[2], "1") << "degraded-era answer was cached";
  }
  EXPECT_TRUE(saw_query_row);

  // Recovery restores the shard; a strict scatter is complete again and
  // includes the recovered shard's contribution.
  ASSERT_TRUE(archive->RecoverShard(1).ok());
  auto full = archive->Query("?- tagged(X).");
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_FALSE(full->partial);
  EXPECT_EQ(full->rows, before->rows);

  // The goal suppressed during degradation now answers (and caches)
  // normally, still with the same rows.
  auto again = archive->Query("?- tagged(sym0).");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_FALSE(again->partial);
  EXPECT_EQ(again->rows, partial->rows);
}

TEST_F(ShardStoreTest, RecoveryRetriesWithBackoffUntilTheFaultClears) {
  {
    auto archive = MustOpen(root_, FastOptions(2));
    ASSERT_NE(archive, nullptr);
    SeedEveryShard(*archive);
  }
  // The shard directory is gone; the third recovery attempt "repairs" the
  // disk (as an operator would), so retries must carry the shard through.
  std::string victim_dir = root_ + "/shard_0";
  std::filesystem::path saved = root_ + "_saved_shard";
  std::filesystem::rename(victim_dir, saved);

  std::atomic<int> attempts{0};
  ShardedArchive::Options options = FastOptions(2);
  options.defer_recovery = true;
  options.backoff.max_attempts = 5;
  options.recovery_hook = [&](uint32_t shard_id) {
    if (shard_id != 0) return;
    if (attempts.fetch_add(1) + 1 == 3) {
      std::filesystem::rename(saved, victim_dir);
    }
  };
  auto archive = MustOpen(root_, std::move(options));
  ASSERT_NE(archive, nullptr);
  EXPECT_EQ(archive->shard_state(0),
            ShardedArchive::ShardState::kRecovering);
  ASSERT_TRUE(archive->RecoverAll().ok());
  EXPECT_EQ(archive->shard_state(0), ShardedArchive::ShardState::kHealthy);
  EXPECT_EQ(attempts.load(), 3);
  auto result = archive->Query("?- tagged(X).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 2u);
}

TEST_F(ShardStoreTest, JournalAppendFaultDegradesShardToReadOnly) {
  {
    auto archive = MustOpen(root_, FastOptions(4));
    ASSERT_NE(archive, nullptr);
    SeedEveryShard(*archive);
  }
  // Every write to shard 3's journal tears; everything else is clean.
  FaultOptions faults;
  faults.seed = 3;
  faults.write_fault_p = 1.0;
  faults.path_substring = "shard_3/journal";
  FaultInjectingEnv env(Env::Default(), faults);
  ShardedArchive::Options options = FastOptions(4);
  options.env = &env;
  auto archive = MustOpen(root_, std::move(options));
  ASSERT_NE(archive, nullptr);
  EXPECT_EQ(archive->shard_state(3), ShardedArchive::ShardState::kHealthy);

  std::string tenant = TenantFor(*archive, 3);
  Status st = archive->Apply(tenant, "object fresh { }.");
  EXPECT_TRUE(st.IsIOError()) << st;
  EXPECT_EQ(archive->shard_state(3), ShardedArchive::ShardState::kDegraded);

  // Read-only: further writes refuse, queries still answer in full (a
  // degraded shard serves; it only cannot log).
  EXPECT_TRUE(archive->Apply(tenant, "object again { }.").IsUnavailable());
  auto result = archive->Query("?- tagged(X).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 4u);
  EXPECT_FALSE(result->partial);
  std::string other_tenant = TenantFor(*archive, 0);
  EXPECT_TRUE(archive->Apply(other_tenant, "object fine { }.").ok());
}

TEST_F(ShardStoreTest, SnapshotRotatesGenerationAndTruncatesJournal) {
  auto archive = MustOpen(root_, FastOptions(2));
  ASSERT_NE(archive, nullptr);
  SeedEveryShard(*archive);

  ASSERT_TRUE(archive->SnapshotShard(0).ok());
  EXPECT_EQ(archive->shard_generation(0), 1u);
  EXPECT_TRUE(std::filesystem::exists(root_ + "/shard_0/snapshot-1.vqdb"));
  EXPECT_TRUE(std::filesystem::exists(root_ + "/shard_0/journal-1.wal"));
  EXPECT_FALSE(std::filesystem::exists(root_ + "/shard_0/journal-0.wal"));
  EXPECT_EQ(std::filesystem::file_size(root_ + "/shard_0/journal-1.wal"),
            0u);  // truncation: the journal restarts empty

  // Post-rotation writes land in the new journal and survive reopen.
  std::string tenant = TenantFor(*archive, 0);
  ASSERT_TRUE(archive->Apply(tenant, "object post { }.").ok());
  std::string reference = ShardBytes(*archive, 0);
  archive.reset();

  auto reopened = MustOpen(root_, FastOptions(2));
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->shard_generation(0), 1u);
  RecoveryReport report = reopened->shard_recovery_report(0);
  EXPECT_EQ(report.records_replayed, 1u);  // only the post-rotation record
  EXPECT_EQ(ShardBytes(*reopened, 0), reference);
}

TEST_F(ShardStoreTest, SnapshotAllRotatesEveryShard) {
  auto archive = MustOpen(root_, FastOptions(3));
  ASSERT_NE(archive, nullptr);
  SeedEveryShard(*archive);
  ASSERT_TRUE(archive->SnapshotAll().ok());
  for (uint32_t id = 0; id < 3; ++id) {
    EXPECT_EQ(archive->shard_generation(id), 1u);
  }
}

// The rotation crash-point sweep: fail the filesystem after exactly k
// mutating operations, for every k from 0 until the rotation runs clean.
// At every crash point the reopened shard must hold exactly the
// acknowledged facts — the generation protocol never has a window where a
// crash loses the journal and the snapshot at once.
TEST_F(ShardStoreTest, RotationCrashPointsNeverLoseAcknowledgedData) {
  bool completed = false;
  for (int64_t k = 0; k < 64 && !completed; ++k) {
    std::filesystem::remove_all(root_);
    FailAfterEnv env(Env::Default());
    ShardedArchive::Options options = FastOptions(2);
    options.env = &env;
    std::string reference;
    Status rotated;
    {
      auto archive = MustOpen(root_, std::move(options));
      ASSERT_NE(archive, nullptr);
      SeedEveryShard(*archive);
      reference = ShardBytes(*archive, 0);
      env.set_budget(k);
      rotated = archive->SnapshotShard(0);
    }
    auto reopened = MustOpen(root_, FastOptions(2));
    ASSERT_NE(reopened, nullptr) << "crash point k=" << k;
    EXPECT_EQ(reopened->shard_state(0),
              ShardedArchive::ShardState::kHealthy)
        << "crash point k=" << k;
    EXPECT_EQ(ShardBytes(*reopened, 0), reference) << "crash point k=" << k;
    if (rotated.ok()) {
      EXPECT_EQ(reopened->shard_generation(0), 1u);
      completed = true;  // the whole protocol fit in the budget
    } else {
      EXPECT_EQ(reopened->shard_generation(0), 0u)
          << "crash point k=" << k << ": " << rotated;
    }
  }
  EXPECT_TRUE(completed) << "rotation never succeeded within the op budget";
}

TEST_F(ShardStoreTest, HealthyShardsServeWhileAnotherRecovers) {
  {
    auto archive = MustOpen(root_, FastOptions(4));
    ASSERT_NE(archive, nullptr);
    SeedEveryShard(*archive);
  }
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool victim_entered = false;

  ShardedArchive::Options options = FastOptions(4);
  options.defer_recovery = true;
  options.recovery_threads = 4;
  options.recovery_hook = [&](uint32_t shard_id) {
    if (shard_id != 0) return;
    std::unique_lock<std::mutex> lock(mu);
    victim_entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  auto archive = MustOpen(root_, std::move(options));
  ASSERT_NE(archive, nullptr);

  std::thread recovery([&] { (void)archive->RecoverAll(); });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return victim_entered; });
  }
  // Shard 0 is pinned in kRecovering; wait for the other three to finish.
  for (uint32_t id : {1u, 2u, 3u}) {
    while (archive->shard_state(id) !=
           ShardedArchive::ShardState::kHealthy) {
      std::this_thread::yield();
    }
  }
  EXPECT_EQ(archive->shard_state(0),
            ShardedArchive::ShardState::kRecovering);

  // The archive answers (partially) while the victim recovers.
  ShardedArchive::QueryOptions partial_opts;
  partial_opts.allow_partial = true;
  auto during = archive->Query("?- tagged(X).", partial_opts);
  ASSERT_TRUE(during.ok()) << during.status();
  EXPECT_TRUE(during->partial);
  EXPECT_EQ(during->size(), 3u);
  ASSERT_EQ(during->reports.size(), 4u);
  EXPECT_EQ(during->reports[0].state, "recovering");

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  recovery.join();
  EXPECT_EQ(archive->shard_state(0), ShardedArchive::ShardState::kHealthy);
  auto after = archive->Query("?- tagged(X).");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->size(), 4u);
  EXPECT_FALSE(after->partial);
}

TEST_F(ShardStoreTest, SysShardsReportsEveryShardThroughArchiveQueries) {
  auto archive = MustOpen(root_, FastOptions(3));
  ASSERT_NE(archive, nullptr);
  SeedEveryShard(*archive);
  archive->KillShard(1);

  // Every shard's session seeds the same archive-wide rows, so the merged
  // (deduped) answer is exactly one row per shard.
  ShardedArchive::QueryOptions partial_opts;
  partial_opts.allow_partial = true;
  auto result =
      archive->Query("?- sys_shards(S, St, F, R, D, Rec, E).", partial_opts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 3u);
  std::set<std::string> states;
  for (const auto& row : result->rows) {
    ASSERT_EQ(row.size(), 7u);
    states.insert(row[1]);
  }
  EXPECT_TRUE(states.count("\"healthy\"") || states.count("healthy"));
  EXPECT_TRUE(states.count("\"failed\"") || states.count("failed"));

  // The provider itself (what the rows are built from) matches.
  std::vector<ShardInfoRow> info = archive->ShardInfo();
  ASSERT_EQ(info.size(), 3u);
  EXPECT_EQ(info[1].state, "failed");
  EXPECT_EQ(info[1].last_error, "killed");
  EXPECT_EQ(info[0].state, "healthy");
  EXPECT_EQ(info[0].facts, 1);
}

TEST_F(ShardStoreTest, ExplainAnalyzeShowsScatterGatherBreakdown) {
  auto archive = MustOpen(root_, FastOptions(2));
  ASSERT_NE(archive, nullptr);
  SeedEveryShard(*archive);
  auto plain = archive->Explain("?- tagged(X).", false);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_NE(plain->find("sharded archive:"), std::string::npos);
  EXPECT_NE(plain->find("shard storage:"), std::string::npos);
  EXPECT_NE(plain->find("shard 0 [healthy]"), std::string::npos);
  EXPECT_EQ(plain->find("scatter-gather"), std::string::npos);

  auto analyzed = archive->Explain("?- tagged(X).", true);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_NE(analyzed->find("scatter-gather"), std::string::npos);
  EXPECT_NE(analyzed->find("targeted 2, answered 2"), std::string::npos);
  EXPECT_NE(analyzed->find("(2 answers)"), std::string::npos);
}

TEST_F(ShardStoreTest, ShardRecoveriesCounterAndGaugeMove) {
  auto archive = MustOpen(root_, FastOptions(2));
  ASSERT_NE(archive, nullptr);
  SeedEveryShard(*archive);
  std::vector<ShardInfoRow> before = archive->ShardInfo();
  archive->KillShard(0);
  ASSERT_TRUE(archive->RecoverShard(0).ok());
  std::vector<ShardInfoRow> after = archive->ShardInfo();
  EXPECT_EQ(after[0].recoveries, before[0].recoveries + 1);
}

}  // namespace
}  // namespace vqldb
