// Round-trip property sweeps: random databases survive text and binary
// persistence with every observable preserved (objects, symbols, attribute
// values including open/closed temporal bounds, entity sets and facts).

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/storage/binary_format.h"
#include "src/storage/text_format.h"

namespace vqldb {
namespace {

Value RandomAtomicValue(Rng* rng) {
  switch (rng->UniformU64(4)) {
    case 0:
      return Value::Int(rng->UniformInt(-1000, 1000));
    case 1:
      return Value::Double(rng->UniformInt(-100, 100) / 4.0);
    case 2:
      return Value::Bool(rng->Bernoulli(0.5));
    default: {
      std::string s;
      size_t len = rng->UniformU64(8);
      for (size_t i = 0; i < len; ++i) {
        // Include quoting-sensitive characters.
        const char* alphabet = "ab\"\\\tz 9";
        s.push_back(alphabet[rng->UniformU64(8)]);
      }
      return Value::String(std::move(s));
    }
  }
}

IntervalSet RandomDuration(Rng* rng) {
  std::vector<TimeInterval> ivs;
  size_t n = 1 + rng->UniformU64(3);
  for (size_t i = 0; i < n; ++i) {
    double lo = static_cast<double>(rng->UniformInt(0, 500));
    double hi = lo + static_cast<double>(rng->UniformInt(1, 50));
    ivs.emplace_back(lo, rng->Bernoulli(0.5), hi, rng->Bernoulli(0.5));
  }
  return IntervalSet(std::move(ivs));
}

VideoDatabase RandomDatabase(uint64_t seed) {
  Rng rng(seed);
  VideoDatabase db;
  size_t num_entities = 1 + rng.UniformU64(6);
  std::vector<ObjectId> entities;
  for (size_t i = 0; i < num_entities; ++i) {
    ObjectId id = *db.CreateEntity(rng.Bernoulli(0.8)
                                       ? "e" + std::to_string(i)
                                       : "");
    entities.push_back(id);
    size_t attrs = rng.UniformU64(4);
    for (size_t a = 0; a < attrs; ++a) {
      VQLDB_CHECK_OK(db.SetAttribute(id, "attr" + std::to_string(a),
                                     RandomAtomicValue(&rng)));
    }
  }
  size_t num_intervals = 1 + rng.UniformU64(4);
  for (size_t i = 0; i < num_intervals; ++i) {
    ObjectId gi = *db.CreateInterval("g" + std::to_string(i),
                                     RandomDuration(&rng));
    for (ObjectId e : entities) {
      if (rng.Bernoulli(0.4)) VQLDB_CHECK_OK(db.AddEntityToInterval(gi, e));
    }
    if (rng.Bernoulli(0.5)) {
      VQLDB_CHECK_OK(
          db.SetAttribute(gi, "subject", RandomAtomicValue(&rng)));
    }
    if (rng.Bernoulli(0.3)) {
      VQLDB_CHECK_OK(db.SetAttribute(
          gi, "cast",
          Value::Set({Value::Oid(entities[rng.UniformU64(entities.size())]),
                      RandomAtomicValue(&rng)})));
    }
  }
  size_t num_facts = rng.UniformU64(6);
  for (size_t f = 0; f < num_facts; ++f) {
    VQLDB_CHECK_OK(db.AssertFact(
        "rel" + std::to_string(rng.UniformU64(2)),
        {Value::Oid(entities[rng.UniformU64(entities.size())]),
         RandomAtomicValue(&rng)}));
  }
  return db;
}

// Compares every observable of two databases whose objects correspond by
// symbol (anonymous objects by creation order within their kind).
void ExpectEquivalent(const VideoDatabase& a, const VideoDatabase& b,
                      bool match_symbols) {
  ASSERT_EQ(a.Entities().size(), b.Entities().size());
  ASSERT_EQ(a.BaseIntervals().size(), b.BaseIntervals().size());
  EXPECT_EQ(a.fact_count(), b.fact_count());
  EXPECT_EQ(a.RelationNames(), b.RelationNames());

  auto compare_objects = [&](ObjectId ia, ObjectId ib) {
    const VideoObject* oa = *a.GetObject(ia);
    const VideoObject* ob = *b.GetObject(ib);
    ASSERT_EQ(oa->attribute_count(), ob->attribute_count())
        << a.DisplayName(ia);
    for (const auto& [name, value] : oa->attributes()) {
      const Value* other = ob->FindAttribute(name);
      ASSERT_NE(other, nullptr) << name;
      if (value.is_oid() || value.is_set()) {
        // Oid values may be renumbered; compare shapes only.
        EXPECT_EQ(value.kind(), other->kind());
      } else {
        EXPECT_EQ(value, *other) << name;
      }
    }
  };
  for (size_t i = 0; i < a.Entities().size(); ++i) {
    compare_objects(a.Entities()[i], b.Entities()[i]);
    if (match_symbols && a.SymbolOf(a.Entities()[i]) != nullptr) {
      ASSERT_NE(b.SymbolOf(b.Entities()[i]), nullptr);
      EXPECT_EQ(*a.SymbolOf(a.Entities()[i]), *b.SymbolOf(b.Entities()[i]));
    }
  }
  for (size_t i = 0; i < a.BaseIntervals().size(); ++i) {
    compare_objects(a.BaseIntervals()[i], b.BaseIntervals()[i]);
    // Durations must match exactly, including open/closed bounds.
    EXPECT_EQ(*a.DurationOf(a.BaseIntervals()[i]),
              *b.DurationOf(b.BaseIntervals()[i]));
    // Entity sets must have the same cardinality and positional mapping.
    EXPECT_EQ(a.EntitiesOf(a.BaseIntervals()[i])->size(),
              b.EntitiesOf(b.BaseIntervals()[i])->size());
  }
}

class RoundTripPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripPropertyTest, BinaryPreservesEverything) {
  VideoDatabase db = RandomDatabase(GetParam());
  auto bytes = BinaryFormat::Serialize(db);
  ASSERT_TRUE(bytes.ok());
  auto restored = BinaryFormat::Deserialize(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(restored->Validate().ok());
  ExpectEquivalent(db, *restored, /*match_symbols=*/true);

  // Serialize again: the second snapshot restores identically too.
  auto bytes2 = BinaryFormat::Serialize(*restored);
  ASSERT_TRUE(bytes2.ok());
  auto restored2 = BinaryFormat::Deserialize(*bytes2);
  ASSERT_TRUE(restored2.ok());
  ExpectEquivalent(*restored, *restored2, /*match_symbols=*/true);
}

TEST_P(RoundTripPropertyTest, TextPreservesEverything) {
  VideoDatabase db = RandomDatabase(GetParam() + 5000);
  auto text = TextFormat::Dump(db);
  ASSERT_TRUE(text.ok());
  VideoDatabase restored;
  auto loaded = TextFormat::Load(*text, &restored);
  ASSERT_TRUE(loaded.ok()) << loaded.status() << "\n" << *text;
  EXPECT_TRUE(restored.Validate().ok());
  ExpectEquivalent(db, restored, /*match_symbols=*/false);

  // Text round-trip is a fixpoint after one iteration.
  auto text2 = TextFormat::Dump(restored);
  ASSERT_TRUE(text2.ok());
  VideoDatabase restored2;
  ASSERT_TRUE(TextFormat::Load(*text2, &restored2).ok());
  EXPECT_EQ(*TextFormat::Dump(restored2), *text2);
}

TEST_P(RoundTripPropertyTest, BinaryBitflipsAlwaysDetected) {
  VideoDatabase db = RandomDatabase(GetParam() + 9000);
  std::string bytes = *BinaryFormat::Serialize(db);
  Rng rng(GetParam() * 3 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    std::string corrupted = bytes;
    size_t pos = rng.UniformU64(corrupted.size());
    corrupted[pos] =
        static_cast<char>(corrupted[pos] ^ (1 << rng.UniformU64(8)));
    if (corrupted == bytes) continue;
    auto r = BinaryFormat::Deserialize(corrupted);
    EXPECT_FALSE(r.ok()) << "flip at " << pos << " went undetected";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace vqldb
