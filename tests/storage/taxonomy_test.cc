// The taxonomy rule library: classification and generalization (the paper's
// Section 7 future-work direction) as derived rules.

#include <gtest/gtest.h>

#include "src/engine/query.h"
#include "src/storage/catalog.h"

namespace vqldb {
namespace {

class TaxonomyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<QuerySession>(&db_);
    ASSERT_TRUE(session_->Load(R"(
      // Class objects (classes are entities too — everything is an object).
      object person {}.
      object politician {}.
      object journalist {}.
      object minister_class {}.
      object anchor_class {}.

      // The generalization hierarchy.
      isa(minister_class, politician).
      isa(politician, person).
      isa(anchor_class, journalist).
      isa(journalist, person).

      // Individuals with their direct classes.
      object merkel { name: "Merkel" }.
      object cronkite { name: "Cronkite" }.
      has_class(merkel, minister_class).
      has_class(cronkite, anchor_class).

      // Footage.
      interval speech { duration: (t >= 0 and t <= 60),
                        entities: {merkel} }.
      interval studio { duration: (t >= 100 and t <= 200),
                        entities: {merkel, cronkite} }.
    )")
                    .ok());
    ASSERT_TRUE(session_->Load(TaxonomyRuleLibrary()).ok());
  }

  VideoDatabase db_;
  std::unique_ptr<QuerySession> session_;
};

TEST_F(TaxonomyTest, KindOfIsTransitive) {
  auto r = session_->Query("?- kind_of(minister_class, C).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);  // politician, person
}

TEST_F(TaxonomyTest, InstanceOfClosesUnderGeneralization) {
  auto r = session_->Query("?- instance_of(merkel, C).");
  ASSERT_TRUE(r.ok());
  // minister_class, politician, person.
  EXPECT_EQ(r->rows.size(), 3u);
  auto person = session_->Query("?- instance_of(O, person).");
  ASSERT_TRUE(person.ok());
  EXPECT_EQ(person->rows.size(), 2u);  // merkel and cronkite
}

TEST_F(TaxonomyTest, ClassLevelRetrieval) {
  // "find footage of politicians" — without naming any individual.
  auto r = session_->Query("?- appears_kind(politician, G).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);  // speech and studio

  auto journalists = session_->Query("?- appears_kind(journalist, G).");
  ASSERT_TRUE(journalists.ok());
  ASSERT_EQ(journalists->rows.size(), 1u);
  EXPECT_EQ(db_.DisplayName(journalists->rows[0][0].oid_value()), "studio");
}

TEST_F(TaxonomyTest, ClassLevelCoOccurrence) {
  // "footage where a politician and a journalist share the screen".
  auto r = session_->Query("?- cooccur_kind(politician, journalist, G).");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(db_.DisplayName(r->rows[0][0].oid_value()), "studio");
}

TEST_F(TaxonomyTest, ComposesWithStandardLibrary) {
  ASSERT_TRUE(session_->Load(StandardRuleLibrary()).ok());
  ASSERT_TRUE(session_
                  ->AddRule("person_scene_pair(G1, G2) <- "
                            "appears_kind(person, G1), "
                            "appears_kind(person, G2), contains(G2, G1), "
                            "G1 != G2.")
                  .ok());
  auto r = session_->Query("?- person_scene_pair(G1, G2).");
  ASSERT_TRUE(r.ok());
  // No interval contains the other here (disjoint durations).
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(TaxonomyTest, LibraryTextParsesStandalone) {
  VideoDatabase fresh;
  QuerySession s(&fresh);
  EXPECT_TRUE(s.Load(TaxonomyRuleLibrary()).ok());
  EXPECT_GE(s.rules().size(), 6u);
}

}  // namespace
}  // namespace vqldb
