#include "src/storage/shard_manifest.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace vqldb {
namespace {

class ShardManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs tests as parallel processes.
    dir_ = ::testing::TempDir() + "/shard_manifest_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/MANIFEST";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static ShardManifest MakeManifest(size_t shards) {
    ShardManifest manifest;
    for (uint32_t id = 0; id < shards; ++id) {
      ShardEntry entry;
      entry.shard_id = id;
      entry.dir = "shard_" + std::to_string(id);
      entry.generation = id * 3;
      manifest.entries.push_back(std::move(entry));
    }
    return manifest;
  }

  void WriteRaw(const std::string& bytes) {
    std::ofstream raw(path_, std::ios::binary | std::ios::trunc);
    raw.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_, path_;
};

TEST_F(ShardManifestTest, RoundTripsThroughFile) {
  ShardManifest manifest = MakeManifest(4);
  ASSERT_TRUE(manifest.Save(path_).ok());
  auto loaded = ShardManifest::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->shard_count(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded->entries[i].shard_id, i);
    EXPECT_EQ(loaded->entries[i].dir, "shard_" + std::to_string(i));
    EXPECT_EQ(loaded->entries[i].generation, i * 3);
  }
}

TEST_F(ShardManifestTest, MissingFileIsNotFound) {
  auto loaded = ShardManifest::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound()) << loaded.status();
}

TEST_F(ShardManifestTest, EmptyManifestIsCorruption) {
  ShardManifest empty;
  WriteRaw(empty.Serialize());
  auto loaded = ShardManifest::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
  EXPECT_NE(loaded.status().ToString().find("zero shards"), std::string::npos)
      << loaded.status();
}

TEST_F(ShardManifestTest, CrcCorruptionIsDetected) {
  std::string bytes = MakeManifest(2).Serialize();
  bytes[bytes.size() - 3] ^= 0x40;  // flip a payload bit under the CRC
  WriteRaw(bytes);
  auto loaded = ShardManifest::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(ShardManifestTest, ShortFrameIsCorruption) {
  WriteRaw("abc");
  auto loaded = ShardManifest::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
  EXPECT_NE(loaded.status().ToString().find("short frame"), std::string::npos);
}

TEST_F(ShardManifestTest, BadMagicIsCorruption) {
  std::string bytes = MakeManifest(1).Serialize();
  bytes[0] ^= 0xff;
  WriteRaw(bytes);
  auto loaded = ShardManifest::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("bad magic"), std::string::npos);
}

TEST_F(ShardManifestTest, TruncatedPayloadIsCorruption) {
  std::string bytes = MakeManifest(2).Serialize();
  WriteRaw(bytes.substr(0, bytes.size() - 5));
  auto loaded = ShardManifest::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("length mismatch"),
            std::string::npos)
      << loaded.status();
}

// An entry whose id is outside the declared [0, count) range: the exact
// "unknown shard entry" case a mis-merged or hand-edited manifest produces.
TEST_F(ShardManifestTest, UnknownShardEntryIdIsCorruption) {
  ShardManifest manifest = MakeManifest(2);
  manifest.entries[1].shard_id = 7;
  WriteRaw(manifest.Serialize());
  auto loaded = ShardManifest::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().ToString().find("unknown shard entry"),
            std::string::npos)
      << loaded.status();
}

TEST_F(ShardManifestTest, DuplicateShardEntryIsCorruption) {
  ShardManifest manifest = MakeManifest(2);
  manifest.entries[1].shard_id = 0;
  WriteRaw(manifest.Serialize());
  auto loaded = ShardManifest::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("duplicate"), std::string::npos)
      << loaded.status();
}

TEST_F(ShardManifestTest, MissingEntryIsCorruption) {
  ShardManifest manifest = MakeManifest(3);
  manifest.entries.pop_back();
  // Re-declare 3 shards but serialize only 2 entries.
  std::string payload = "vqldb-shard-manifest v1\nshards 3\n";
  for (const ShardEntry& e : manifest.entries) {
    payload += "shard " + std::to_string(e.shard_id) + " " + e.dir + " " +
               std::to_string(e.generation) + "\n";
  }
  // Serialize can't produce declared!=actual — craft the frame by hand.
  std::string bytes;
  auto put_u32 = [&bytes](uint32_t v) {
    bytes.push_back(static_cast<char>(v & 0xff));
    bytes.push_back(static_cast<char>((v >> 8) & 0xff));
    bytes.push_back(static_cast<char>((v >> 16) & 0xff));
    bytes.push_back(static_cast<char>((v >> 24) & 0xff));
  };
  put_u32(0x564d414eu);
  put_u32(static_cast<uint32_t>(payload.size()));
  put_u32(Crc32c(payload));
  bytes += payload;
  WriteRaw(bytes);
  auto loaded = ShardManifest::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(ShardManifestTest, MalformedEntryLineIsCorruption) {
  std::string payload = "vqldb-shard-manifest v1\nshards 1\nshard zero oops\n";
  std::string bytes;
  auto put_u32 = [&bytes](uint32_t v) {
    bytes.push_back(static_cast<char>(v & 0xff));
    bytes.push_back(static_cast<char>((v >> 8) & 0xff));
    bytes.push_back(static_cast<char>((v >> 16) & 0xff));
    bytes.push_back(static_cast<char>((v >> 24) & 0xff));
  };
  put_u32(0x564d414eu);
  put_u32(static_cast<uint32_t>(payload.size()));
  put_u32(Crc32c(payload));
  bytes += payload;
  WriteRaw(bytes);
  auto loaded = ShardManifest::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("unknown entry"),
            std::string::npos)
      << loaded.status();
}

TEST_F(ShardManifestTest, InvalidDirectoryNameIsCorruption) {
  ShardManifest manifest = MakeManifest(1);
  manifest.entries[0].dir = "..";
  WriteRaw(manifest.Serialize());
  auto loaded = ShardManifest::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("invalid shard directory"),
            std::string::npos)
      << loaded.status();
}

TEST_F(ShardManifestTest, SaveIsAtomicOverExistingManifest) {
  ASSERT_TRUE(MakeManifest(2).Save(path_).ok());
  ShardManifest updated = MakeManifest(2);
  updated.entries[1].generation = 99;
  ASSERT_TRUE(updated.Save(path_).ok());
  auto loaded = ShardManifest::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->entries[1].generation, 99u);
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(ShardManifestTest, SaveSurvivesInjectedTmpFault) {
  ASSERT_TRUE(MakeManifest(2).Save(path_).ok());
  // A write fault while saving the replacement must leave the old manifest
  // readable (the tmp file never renames over it).
  FaultOptions faults;
  faults.write_fault_p = 1.0;
  faults.seed = 5;
  FaultInjectingEnv env(Env::Default(), faults);
  ShardManifest updated = MakeManifest(2);
  updated.entries[0].generation = 123;
  ASSERT_FALSE(updated.Save(path_, &env).ok());
  auto loaded = ShardManifest::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->entries[0].generation, 0u);  // the old content
}

}  // namespace
}  // namespace vqldb
