#include "src/storage/catalog.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "src/engine/query.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/catalog_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CatalogTest, SaveLoadList) {
  Catalog catalog(dir_);
  ASSERT_TRUE(catalog.SaveProgram("news", "q(X) <- p(X).").ok());
  ASSERT_TRUE(catalog.SaveProgram("allen", StandardRuleLibrary()).ok());
  auto names = catalog.List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"allen", "news"}));
  auto text = catalog.LoadProgram("news");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "q(X) <- p(X).");
}

TEST_F(CatalogTest, OverwriteReplaces) {
  Catalog catalog(dir_);
  ASSERT_TRUE(catalog.SaveProgram("p", "a(o1).").ok());
  ASSERT_TRUE(catalog.SaveProgram("p", "b(o1).").ok());
  EXPECT_EQ(*catalog.LoadProgram("p"), "b(o1).");
}

TEST_F(CatalogTest, MissingProgramIsNotFound) {
  Catalog catalog(dir_);
  EXPECT_TRUE(catalog.LoadProgram("ghost").status().IsNotFound());
}

TEST_F(CatalogTest, Remove) {
  Catalog catalog(dir_);
  ASSERT_TRUE(catalog.SaveProgram("p", "a(o1).").ok());
  ASSERT_TRUE(catalog.Remove("p").ok());
  EXPECT_TRUE(catalog.LoadProgram("p").status().IsNotFound());
  EXPECT_TRUE(catalog.Remove("p").IsNotFound());
}

TEST_F(CatalogTest, InvalidNamesRejected) {
  Catalog catalog(dir_);
  EXPECT_TRUE(catalog.SaveProgram("", "x.").IsInvalidArgument());
  EXPECT_TRUE(catalog.SaveProgram("../evil", "x.").IsInvalidArgument());
  EXPECT_TRUE(catalog.SaveProgram("a b", "x.").IsInvalidArgument());
  EXPECT_TRUE(catalog.SaveProgram("ok-name_2", "x(o1).").ok());
}

TEST_F(CatalogTest, EmptyCatalogLists) {
  Catalog catalog(dir_);
  auto names = catalog.List();
  ASSERT_TRUE(names.ok());
  EXPECT_TRUE(names->empty());
}

TEST_F(CatalogTest, StandardRuleLibraryParsesAndAnalyzes) {
  auto program = Parser::ParseProgram(StandardRuleLibrary());
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_GE(program->Rules().size(), 6u);
  VideoDatabase db;
  QuerySession session(&db);
  EXPECT_TRUE(session.Load(StandardRuleLibrary()).ok());
}

}  // namespace
}  // namespace vqldb
