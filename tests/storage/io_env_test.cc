#include "src/storage/io_env.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/model/database.h"
#include "src/storage/binary_format.h"

namespace vqldb {
namespace {

class IoEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/io_env_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  std::string dir_;
};

TEST_F(IoEnvTest, Crc32cKnownAnswers) {
  // RFC 3720 test vector: 32 zero bytes.
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  // "123456789" is the classic check value for CRC-32C.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  // Sensitivity: one flipped bit changes the sum.
  EXPECT_NE(Crc32c("hello world"), Crc32c("hello worle"));
}

TEST_F(IoEnvTest, AppendableFileWritesAndSyncs) {
  std::string path = dir_ + "/f.bin";
  auto file = Env::Default()->NewAppendableFile(path);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(Slurp(path), "hello world");

  // Reopening appends, never truncates.
  auto again = Env::Default()->NewAppendableFile(path);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE((*again)->Append("!").ok());
  ASSERT_TRUE((*again)->Close().ok());
  EXPECT_EQ(Slurp(path), "hello world!");

  // NewTruncatedFile starts over.
  auto trunc = Env::Default()->NewTruncatedFile(path);
  ASSERT_TRUE(trunc.ok());
  ASSERT_TRUE((*trunc)->Append("fresh").ok());
  ASSERT_TRUE((*trunc)->Close().ok());
  EXPECT_EQ(Slurp(path), "fresh");
}

TEST_F(IoEnvTest, ReadFileToStringAndExists) {
  std::string path = dir_ + "/r.bin";
  EXPECT_FALSE(Env::Default()->FileExists(path));
  EXPECT_FALSE(Env::Default()->ReadFileToString(path).ok());
  {
    std::ofstream out(path, std::ios::binary);
    out << "abc\0def";  // ofstream stops at the NUL in a C literal
  }
  EXPECT_TRUE(Env::Default()->FileExists(path));
  auto bytes = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "abc");
}

TEST_F(IoEnvTest, RenameAndRemove) {
  std::string from = dir_ + "/from", to = dir_ + "/to";
  {
    std::ofstream out(from);
    out << "payload";
  }
  ASSERT_TRUE(Env::Default()->RenameFile(from, to).ok());
  EXPECT_FALSE(Env::Default()->FileExists(from));
  EXPECT_EQ(Slurp(to), "payload");
  ASSERT_TRUE(Env::Default()->SyncDir(to).ok());
  ASSERT_TRUE(Env::Default()->RemoveFile(to).ok());
  EXPECT_FALSE(Env::Default()->FileExists(to));
}

TEST_F(IoEnvTest, OpenFailsEagerlyThroughRegularFile) {
  // Root bypasses permission bits, so the portable "unwritable" case is a
  // path whose directory component is a regular file (ENOTDIR).
  { std::ofstream f(dir_ + "/file"); }
  auto r = Env::Default()->NewAppendableFile(dir_ + "/file/x.log");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  auto t = Env::Default()->NewTruncatedFile(dir_ + "/file/x.log");
  EXPECT_FALSE(t.ok());
  // And a missing parent directory is also eager.
  EXPECT_FALSE(Env::Default()->NewAppendableFile(dir_ + "/no/dir/x.log").ok());
}

TEST_F(IoEnvTest, FaultScheduleIsDeterministic) {
  auto run = [&](uint64_t seed) {
    FaultOptions faults;
    faults.seed = seed;
    faults.write_fault_p = 0.3;
    FaultInjectingEnv env(Env::Default(), faults);
    std::string path = dir_ + "/det_" + std::to_string(seed);
    auto file = env.NewAppendableFile(path);
    EXPECT_TRUE(file.ok());
    std::string pattern;
    for (int i = 0; i < 40; ++i) {
      pattern.push_back((*file)->Append("0123456789").ok() ? 'o' : 'x');
    }
    return pattern;
  };
  std::string a = run(123), b = run(123), c = run(456);
  EXPECT_EQ(a, b);                       // same seed, same schedule
  EXPECT_NE(a.find('x'), std::string::npos);  // faults actually fire at p=.3
  EXPECT_NE(a, c);                       // different seed, different schedule
}

TEST_F(IoEnvTest, TornWriteLeavesPrefixOnDisk) {
  FaultOptions faults;
  faults.seed = 3;
  faults.write_fault_p = 1.0;
  FaultInjectingEnv env(Env::Default(), faults);
  std::string path = dir_ + "/torn.bin";
  auto file = env.NewAppendableFile(path);
  ASSERT_TRUE(file.ok());
  Status st = (*file)->Append("0123456789");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(env.injected_faults(), 1u);
  // The injected fault wrote a strict prefix (possibly empty, never all).
  std::string on_disk = Slurp(path);
  EXPECT_LT(on_disk.size(), 10u);
  EXPECT_EQ(on_disk, std::string("0123456789").substr(0, on_disk.size()));
}

TEST_F(IoEnvTest, SyncFaultFailsWithoutCrash) {
  FaultOptions faults;
  faults.seed = 5;
  faults.sync_fault_p = 1.0;
  FaultInjectingEnv env(Env::Default(), faults);
  auto file = env.NewAppendableFile(dir_ + "/sync.bin");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("data").ok());
  EXPECT_TRUE((*file)->Sync().IsIOError());
  EXPECT_GE(env.injected_faults(), 1u);
}

TEST_F(IoEnvTest, FailOpensRejectsEveryOpen) {
  FaultOptions faults;
  faults.fail_opens = true;
  FaultInjectingEnv env(Env::Default(), faults);
  EXPECT_FALSE(env.NewAppendableFile(dir_ + "/a").ok());
  EXPECT_FALSE(env.NewTruncatedFile(dir_ + "/b").ok());
  EXPECT_EQ(env.injected_faults(), 2u);
  // Pass-through operations still work.
  EXPECT_FALSE(env.FileExists(dir_ + "/a"));
}

TEST_F(IoEnvTest, AtomicSaveLeavesNoTempAndKeepsOldOnFailure) {
  VideoDatabase db;
  ASSERT_TRUE(db.CreateEntity("o1").ok());
  std::string path = dir_ + "/snap.vqdb";
  ASSERT_TRUE(BinaryFormat::Save(db, path).ok());
  EXPECT_FALSE(Env::Default()->FileExists(path + ".tmp"));
  std::string first = Slurp(path);

  // A save whose writes always fail must leave the old snapshot intact and
  // clean up its temp file.
  VideoDatabase db2;
  ASSERT_TRUE(db2.CreateEntity("o2").ok());
  FaultOptions faults;
  faults.seed = 9;
  faults.write_fault_p = 1.0;
  FaultInjectingEnv env(Env::Default(), faults);
  Status st = BinaryFormat::Save(db2, path, &env);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(Slurp(path), first);  // old contents untouched
  EXPECT_FALSE(Env::Default()->FileExists(path + ".tmp"));

  // A successful save replaces the contents atomically.
  ASSERT_TRUE(BinaryFormat::Save(db2, path).ok());
  auto reloaded = BinaryFormat::Load(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded->Resolve("o2").ok());
}

}  // namespace
}  // namespace vqldb
