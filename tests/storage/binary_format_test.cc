#include "src/storage/binary_format.h"

#include <gtest/gtest.h>

#include "src/common/logging.h"

#include <cstdio>

namespace vqldb {
namespace {

VideoDatabase BuildSample() {
  VideoDatabase db;
  ObjectId o1 = *db.CreateEntity("o1");
  VQLDB_CHECK_OK(db.SetAttribute(o1, "name", Value::String("David")));
  VQLDB_CHECK_OK(db.SetAttribute(o1, "age", Value::Int(-5)));
  VQLDB_CHECK_OK(db.SetAttribute(o1, "score", Value::Double(2.5)));
  VQLDB_CHECK_OK(db.SetAttribute(o1, "alive", Value::Bool(false)));
  ObjectId o2 = *db.CreateEntity("");
  VQLDB_CHECK_OK(db.SetAttribute(o2, "name", Value::String("anon")));
  ObjectId gi =
      *db.CreateInterval("gi1", IntervalSet({TimeInterval::Open(0, 10),
                                             TimeInterval::Point(15)}));
  VQLDB_CHECK_OK(db.AddEntityToInterval(gi, o1));
  VQLDB_CHECK_OK(db.AddEntityToInterval(gi, o2));
  VQLDB_CHECK_OK(db.SetAttribute(
      gi, "tags", Value::Set({Value::String("a"), Value::Int(1)})));
  VQLDB_CHECK_OK(
      db.AssertFact("in", {Value::Oid(o1), Value::Oid(o2), Value::Oid(gi)}));
  return db;
}

TEST(BinaryFormatTest, RoundTrip) {
  VideoDatabase db = BuildSample();
  auto bytes = BinaryFormat::Serialize(db);
  ASSERT_TRUE(bytes.ok());
  auto restored = BinaryFormat::Deserialize(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(restored->Validate().ok());
  EXPECT_EQ(restored->Entities().size(), 2u);
  EXPECT_EQ(restored->BaseIntervals().size(), 1u);
  EXPECT_EQ(restored->fact_count(), 1u);

  ObjectId o1 = *restored->Resolve("o1");
  EXPECT_EQ(restored->GetAttribute(o1, "name")->string_value(), "David");
  EXPECT_EQ(restored->GetAttribute(o1, "age")->int_value(), -5);
  EXPECT_EQ(restored->GetAttribute(o1, "score")->double_value(), 2.5);
  EXPECT_EQ(restored->GetAttribute(o1, "alive")->bool_value(), false);

  ObjectId gi = *restored->Resolve("gi1");
  IntervalSet duration = *restored->DurationOf(gi);
  EXPECT_FALSE(duration.Contains(0));
  EXPECT_TRUE(duration.Contains(5));
  EXPECT_TRUE(duration.Contains(15));
  EXPECT_EQ(restored->EntitiesOf(gi)->size(), 2u);
  EXPECT_EQ(restored->GetAttribute(gi, "tags")->set_elements().size(), 2u);
}

TEST(BinaryFormatTest, IdRemappingSurvivesDerivedGaps) {
  // Create derived intervals so base ids are non-contiguous, then verify
  // the oid remapping on load keeps references consistent.
  VideoDatabase db = BuildSample();
  ObjectId gi = *db.Resolve("gi1");
  ObjectId gi2 =
      *db.CreateInterval("gi2", GeneralizedInterval::Single(40, 50));
  ASSERT_TRUE(db.Concatenate(gi, gi2).ok());  // derived object between bases
  ObjectId gi3 =
      *db.CreateInterval("gi3", GeneralizedInterval::Single(60, 70));
  ASSERT_TRUE(db.AssertFact("follows", {Value::Oid(gi3), Value::Oid(gi)}).ok());

  auto bytes = BinaryFormat::Serialize(db);
  ASSERT_TRUE(bytes.ok());
  auto restored = BinaryFormat::Deserialize(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->BaseIntervals().size(), 3u);
  EXPECT_EQ(restored->derived_interval_count(), 0u);
  const Fact& f = restored->FactsFor("follows")[0];
  EXPECT_EQ(f.args[0].oid_value(), *restored->Resolve("gi3"));
  EXPECT_EQ(f.args[1].oid_value(), *restored->Resolve("gi1"));
}

TEST(BinaryFormatTest, ChecksumDetectsCorruption) {
  VideoDatabase db = BuildSample();
  std::string bytes = *BinaryFormat::Serialize(db);
  for (size_t pos : {size_t(9), bytes.size() / 2, bytes.size() - 6}) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x40);
    auto r = BinaryFormat::Deserialize(corrupted);
    EXPECT_TRUE(r.status().IsCorruption()) << "pos=" << pos;
  }
}

TEST(BinaryFormatTest, TruncationDetected) {
  VideoDatabase db = BuildSample();
  std::string bytes = *BinaryFormat::Serialize(db);
  EXPECT_TRUE(BinaryFormat::Deserialize(bytes.substr(0, 8))
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(BinaryFormat::Deserialize(bytes.substr(0, bytes.size() - 1))
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(BinaryFormat::Deserialize("").status().IsCorruption());
}

TEST(BinaryFormatTest, BadMagicRejected) {
  VideoDatabase db = BuildSample();
  std::string bytes = *BinaryFormat::Serialize(db);
  bytes[0] = 'X';
  // CRC catches the flip first; either way it's corruption.
  EXPECT_TRUE(BinaryFormat::Deserialize(bytes).status().IsCorruption());
}

TEST(BinaryFormatTest, FileRoundTrip) {
  VideoDatabase db = BuildSample();
  std::string path = ::testing::TempDir() + "/archive.vqdb";
  ASSERT_TRUE(BinaryFormat::Save(db, path).ok());
  auto restored = BinaryFormat::Load(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Entities().size(), 2u);
  std::remove(path.c_str());
  EXPECT_TRUE(BinaryFormat::Load("/nonexistent/x.vqdb").status().IsIOError());
}

TEST(BinaryFormatTest, EmptyDatabaseRoundTrips) {
  VideoDatabase db;
  auto bytes = BinaryFormat::Serialize(db);
  ASSERT_TRUE(bytes.ok());
  auto restored = BinaryFormat::Deserialize(*bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Entities().size(), 0u);
  EXPECT_EQ(restored->fact_count(), 0u);
}

TEST(BinaryFormatTest, Crc32KnownVector) {
  // Standard test vector: CRC-32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

}  // namespace
}  // namespace vqldb
