#include "src/storage/journal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "src/common/logging.h"
#include "src/model/term_dict.h"
#include "src/obs/metrics.h"
#include "src/storage/binary_format.h"
#include "src/storage/io_env.h"

namespace vqldb {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process directory: ctest runs each case as its own process, and
    // concurrent cases sharing one fixed path race in SetUp/TearDown.
    dir_ = ::testing::TempDir() + "/journal_test." +
           std::to_string(static_cast<long>(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    journal_path_ = dir_ + "/archive.log";
    snapshot_path_ = dir_ + "/archive.vqdb";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Writes raw bytes to the journal path, bypassing the Journal API.
  void WriteRaw(const std::string& bytes) {
    std::ofstream raw(journal_path_, std::ios::binary | std::ios::trunc);
    raw.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_, journal_path_, snapshot_path_;
};

TEST_F(JournalTest, AppendAndReplay) {
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object o1 { name: \"David\" }.").ok());
    ASSERT_TRUE(journal
                    ->Append("interval gi1 { duration: (t > 0 and t < 9), "
                             "entities: {o1} }.")
                    .ok());
    ASSERT_TRUE(journal->Append("seen(o1, gi1).").ok());
    EXPECT_EQ(journal->appended(), 3u);
  }
  VideoDatabase db;
  auto replayed = Journal::Replay(journal_path_, &db);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed->records_replayed, 3u);
  EXPECT_EQ(replayed->statements_replayed, 3u);
  EXPECT_EQ(replayed->records_dropped, 0u);
  EXPECT_EQ(replayed->bytes_dropped, 0u);
  EXPECT_FALSE(replayed->truncated);
  EXPECT_EQ(db.Entities().size(), 1u);
  EXPECT_EQ(db.BaseIntervals().size(), 1u);
  EXPECT_EQ(db.fact_count(), 1u);
}

TEST_F(JournalTest, RejectsRulesAndQueries) {
  auto journal = Journal::Open(journal_path_);
  ASSERT_TRUE(journal.ok());
  EXPECT_TRUE(journal->Append("q(X) <- p(X).").IsInvalidArgument());
  EXPECT_TRUE(journal->Append("?- q(X).").IsInvalidArgument());
  EXPECT_TRUE(journal->Append("garbage here").IsParseError());
  EXPECT_EQ(journal->appended(), 0u);
  // Nothing leaked into the file.
  VideoDatabase db;
  EXPECT_EQ(Journal::Replay(journal_path_, &db)->records_replayed, 0u);
}

TEST_F(JournalTest, ReplayMissingFileIsEmpty) {
  VideoDatabase db;
  auto replayed = Journal::Replay(dir_ + "/nope.log", &db);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->records_replayed, 0u);
  EXPECT_FALSE(replayed->truncated);
}

TEST_F(JournalTest, ReplayEmptyFileIsEmpty) {
  WriteRaw("");
  VideoDatabase db;
  auto replayed = Journal::Replay(journal_path_, &db);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed->records_replayed, 0u);
  EXPECT_EQ(replayed->bytes_dropped, 0u);
  EXPECT_FALSE(replayed->truncated);
}

TEST_F(JournalTest, RecordObjectAndFactRenderSymbols) {
  VideoDatabase db;
  ObjectId o1 = *db.CreateEntity("o1");
  VQLDB_CHECK_OK(db.SetAttribute(o1, "name", Value::String("David")));
  ObjectId gi =
      *db.CreateInterval("gi1", IntervalSet({TimeInterval::Open(0, 10)}));
  VQLDB_CHECK_OK(db.AddEntityToInterval(gi, o1));
  Fact fact{"seen", {Value::Oid(o1), Value::Oid(gi)}};
  VQLDB_CHECK_OK(db.AssertFact(fact));

  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->RecordObject(db, o1).ok());
    ASSERT_TRUE(journal->RecordObject(db, gi).ok());
    ASSERT_TRUE(journal->RecordFact(db, fact).ok());
  }
  VideoDatabase restored;
  ASSERT_TRUE(Journal::Replay(journal_path_, &restored).ok());
  EXPECT_EQ(restored.GetAttribute(*restored.Resolve("o1"), "name")
                ->string_value(),
            "David");
  EXPECT_FALSE(restored.DurationOf(*restored.Resolve("gi1"))->Contains(0));
  EXPECT_EQ(restored.fact_count(), 1u);
}

TEST_F(JournalTest, RecordObjectRejectsAnonymousAndDerived) {
  VideoDatabase db;
  ObjectId anon = *db.CreateEntity("");
  ObjectId a = *db.CreateInterval("a", GeneralizedInterval::Single(0, 1));
  ObjectId b = *db.CreateInterval("b", GeneralizedInterval::Single(5, 6));
  ObjectId derived = *db.Concatenate(a, b);
  auto journal = Journal::Open(journal_path_);
  ASSERT_TRUE(journal.ok());
  EXPECT_TRUE(journal->RecordObject(db, anon).IsInvalidArgument());
  EXPECT_TRUE(journal->RecordObject(db, derived).IsInvalidArgument());
}

TEST_F(JournalTest, SnapshotPlusJournalRecovery) {
  // Phase 1: build a base archive and snapshot it.
  VideoDatabase db;
  ObjectId o1 = *db.CreateEntity("o1");
  VQLDB_CHECK_OK(db.SetAttribute(o1, "name", Value::String("David")));
  ASSERT_TRUE(BinaryFormat::Save(db, snapshot_path_).ok());

  // Phase 2: journal mutations made after the snapshot.
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object o2 { name: \"Rupert\" }.").ok());
    ASSERT_TRUE(journal
                    ->Append("interval gi1 { duration: (t >= 0 and t <= 5), "
                             "entities: {o1, o2} }.")
                    .ok());
  }

  // Phase 3: recover = snapshot + tail.
  RecoveryReport report;
  auto recovered = Journal::Recover(snapshot_path_, journal_path_, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->Entities().size(), 2u);
  EXPECT_EQ(recovered->BaseIntervals().size(), 1u);
  EXPECT_EQ(recovered->EntitiesOf(*recovered->Resolve("gi1"))->size(), 2u);
  EXPECT_EQ(report.records_replayed, 2u);
  EXPECT_FALSE(report.truncated);
}

TEST_F(JournalTest, RecoverWithoutSnapshotStartsEmpty) {
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object only { }.").ok());
  }
  auto recovered = Journal::Recover("", journal_path_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->Entities().size(), 1u);
}

TEST_F(JournalTest, RecoverWithMissingSnapshotFileStartsEmpty) {
  // A snapshot path that points nowhere (first boot, or the snapshot was
  // never cut) must not fail recovery while a journal is present.
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object o1 { }.").ok());
    ASSERT_TRUE(journal->Append("object o2 { }.").ok());
  }
  RecoveryReport report;
  auto recovered =
      Journal::Recover(dir_ + "/never_written.vqdb", journal_path_, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->Entities().size(), 2u);
  EXPECT_EQ(report.statements_replayed, 2u);
}

TEST_F(JournalTest, ReplayDetectsForeignStatements) {
  // A CRC-valid record whose payload is a rule or query is not a torn tail —
  // it is corruption (Append would never have written it) and must fail.
  WriteRaw(Journal::FrameRecord("object o1 { }.") +
           Journal::FrameRecord("q(X) <- p(X)."));
  VideoDatabase db;
  EXPECT_TRUE(Journal::Replay(journal_path_, &db).status().IsCorruption());

  WriteRaw(Journal::FrameRecord("?- p(X)."));
  VideoDatabase db2;
  EXPECT_TRUE(Journal::Replay(journal_path_, &db2).status().IsCorruption());
}

TEST_F(JournalTest, ReplayTruncatesTornTail) {
  // Three good records, the last one cut mid-payload (what a crash during
  // write leaves). Replay applies the prefix and reports the cut.
  std::string good = Journal::FrameRecord("object o1 { }.") +
                     Journal::FrameRecord("object o2 { }.");
  std::string torn = Journal::FrameRecord("object o3 { }.");
  torn.resize(torn.size() - 5);  // lose the payload's last 5 bytes
  WriteRaw(good + torn);

  VideoDatabase db;
  auto replayed = Journal::Replay(journal_path_, &db);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed->records_replayed, 2u);
  EXPECT_EQ(replayed->statements_replayed, 2u);
  EXPECT_EQ(replayed->records_dropped, 1u);
  EXPECT_EQ(replayed->bytes_dropped, torn.size());
  EXPECT_TRUE(replayed->truncated);
  EXPECT_NE(replayed->truncation_reason.find("torn record payload"),
            std::string::npos);
  EXPECT_EQ(db.Entities().size(), 2u);
}

TEST_F(JournalTest, ReplayTruncatesTornHeaderAndBadMagic) {
  // A few stray header bytes after a good record: torn header.
  WriteRaw(Journal::FrameRecord("object o1 { }.") + "\x56\x51");
  VideoDatabase db;
  auto replayed = Journal::Replay(journal_path_, &db);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->records_replayed, 1u);
  EXPECT_TRUE(replayed->truncated);
  EXPECT_EQ(replayed->bytes_dropped, 2u);

  // A legacy plain-text file has no record magic: everything truncates.
  WriteRaw("object o1 { }.\n");
  VideoDatabase db2;
  auto replayed2 = Journal::Replay(journal_path_, &db2);
  ASSERT_TRUE(replayed2.ok());
  EXPECT_EQ(replayed2->records_replayed, 0u);
  EXPECT_TRUE(replayed2->truncated);
  EXPECT_NE(replayed2->truncation_reason.find("bad record magic"),
            std::string::npos);
}

TEST_F(JournalTest, ReplayTruncatesCorruptedPayload) {
  // Flip one payload byte of the last record: CRC catches it.
  std::string bytes = Journal::FrameRecord("object o1 { }.") +
                      Journal::FrameRecord("object o2 { }.");
  bytes.back() ^= 0x01;
  WriteRaw(bytes);
  VideoDatabase db;
  auto replayed = Journal::Replay(journal_path_, &db);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed->records_replayed, 1u);
  EXPECT_EQ(replayed->records_dropped, 1u);
  EXPECT_TRUE(replayed->truncated);
  EXPECT_NE(replayed->truncation_reason.find("checksum mismatch"),
            std::string::npos);
  EXPECT_EQ(db.Entities().size(), 1u);
}

TEST_F(JournalTest, OpenFailsEagerlyOnUnopenablePath) {
  // A path that routes *through* a regular file fails with ENOTDIR even as
  // root (who bypasses permission bits, so chmod-style tests don't work).
  { std::ofstream f(dir_ + "/plainfile"); }
  auto journal = Journal::Open(dir_ + "/plainfile/journal.log");
  EXPECT_FALSE(journal.ok());
  EXPECT_TRUE(journal.status().IsIOError()) << journal.status();
}

TEST_F(JournalTest, OpenFailsEagerlyWithFaultInjectedOpens) {
  FaultOptions faults;
  faults.fail_opens = true;
  FaultInjectingEnv env(Env::Default(), faults);
  Journal::Options options;
  options.env = &env;
  auto journal = Journal::Open(journal_path_, options);
  EXPECT_FALSE(journal.ok());
  EXPECT_TRUE(journal.status().IsIOError());
}

TEST_F(JournalTest, FsyncDurabilityTracksSyncedStatements) {
  Journal::Options options;
  options.durability = Journal::Durability::kFsync;
  auto journal = Journal::Open(journal_path_, options);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Append("object o1 { }.").ok());
  ASSERT_TRUE(journal->Append("object o2 { }.").ok());
  EXPECT_EQ(journal->appended(), 2u);
  EXPECT_EQ(journal->synced(), 2u);  // fsync per append: always caught up
}

TEST_F(JournalTest, BatchDurabilityBuffersUntilSync) {
  Journal::Options options;
  options.durability = Journal::Durability::kBatch;
  options.batch_bytes = 1 << 20;  // too big to auto-flush in this test
  auto journal = Journal::Open(journal_path_, options);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Append("object o1 { }.").ok());
  ASSERT_TRUE(journal->Append("object o2 { }.").ok());
  EXPECT_EQ(journal->appended(), 2u);
  EXPECT_EQ(journal->synced(), 0u);  // still buffered in memory

  // The records are not in the file yet...
  VideoDatabase before;
  EXPECT_EQ(Journal::Replay(journal_path_, &before)->records_replayed, 0u);

  // ...until Sync drains the batch.
  ASSERT_TRUE(journal->Sync().ok());
  EXPECT_EQ(journal->synced(), 2u);
  VideoDatabase after;
  EXPECT_EQ(Journal::Replay(journal_path_, &after)->records_replayed, 2u);
}

TEST_F(JournalTest, BatchAutoFlushesAtThreshold) {
  Journal::Options options;
  options.durability = Journal::Durability::kBatch;
  options.batch_bytes = 1;  // every append crosses the threshold
  auto journal = Journal::Open(journal_path_, options);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Append("object o1 { }.").ok());
  EXPECT_EQ(journal->synced(), 1u);
  VideoDatabase db;
  EXPECT_EQ(Journal::Replay(journal_path_, &db)->records_replayed, 1u);
}

TEST_F(JournalTest, BatchFlushesOnDestruction) {
  {
    Journal::Options options;
    options.durability = Journal::Durability::kBatch;
    options.batch_bytes = 1 << 20;
    auto journal = Journal::Open(journal_path_, options);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object o1 { }.").ok());
  }  // best-effort flush in the destructor
  VideoDatabase db;
  EXPECT_EQ(Journal::Replay(journal_path_, &db)->records_replayed, 1u);
}

TEST_F(JournalTest, InjectedWriteFaultTearsTailButRecoveryHolds) {
  FaultOptions faults;
  faults.seed = 7;
  faults.write_fault_p = 1.0;  // the very first write tears
  FaultInjectingEnv env(Env::Default(), faults);
  Journal::Options options;
  options.env = &env;
  {
    auto journal = Journal::Open(journal_path_, options);
    ASSERT_TRUE(journal.ok());
    Status st = journal->Append("object o1 { name: \"torn\" }.");
    EXPECT_TRUE(st.IsIOError()) << st;
  }
  EXPECT_GE(env.injected_faults(), 1u);
  // Whatever prefix hit the disk, recovery still succeeds and applies none
  // of the torn record.
  VideoDatabase db;
  auto replayed = Journal::Replay(journal_path_, &db);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed->records_replayed, 0u);
  EXPECT_EQ(db.Entities().size(), 0u);
}

TEST_F(JournalTest, InjectedSyncFaultSurfacesAsIOError) {
  FaultOptions faults;
  faults.seed = 11;
  faults.sync_fault_p = 1.0;
  FaultInjectingEnv env(Env::Default(), faults);
  Journal::Options options;
  options.durability = Journal::Durability::kFsync;
  options.env = &env;
  auto journal = Journal::Open(journal_path_, options);
  ASSERT_TRUE(journal.ok());
  Status st = journal->Append("object o1 { }.");
  EXPECT_TRUE(st.IsIOError()) << st;
  EXPECT_EQ(journal->synced(), 0u);
}

TEST_F(JournalTest, AppendSurvivesReopen) {
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object o1 { }.").ok());
  }
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object o2 { }.").ok());
  }
  VideoDatabase db;
  ASSERT_TRUE(Journal::Replay(journal_path_, &db).ok());
  EXPECT_EQ(db.Entities().size(), 2u);
}

TEST_F(JournalTest, DurabilityMetricsFlowIntoGlobalRegistry) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* fsyncs = registry.GetCounter("vqldb_journal_fsyncs_total");
  obs::Counter* replayed_c =
      registry.GetCounter("vqldb_recovery_records_replayed_total");
  obs::Counter* dropped_c =
      registry.GetCounter("vqldb_recovery_records_dropped_total");
  uint64_t fsyncs0 = fsyncs->value();
  uint64_t replayed0 = replayed_c->value();
  uint64_t dropped0 = dropped_c->value();

  Journal::Options options;
  options.durability = Journal::Durability::kFsync;
  {
    auto journal = Journal::Open(journal_path_, options);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object o1 { }.").ok());
  }
  EXPECT_GE(fsyncs->value(), fsyncs0 + 1);

  // Append a torn record by hand and recover: replayed + dropped both move.
  {
    std::ofstream raw(journal_path_, std::ios::binary | std::ios::app);
    std::string torn = Journal::FrameRecord("object o2 { }.");
    torn.resize(torn.size() - 3);
    raw.write(torn.data(), static_cast<std::streamsize>(torn.size()));
  }
  VideoDatabase db;
  ASSERT_TRUE(Journal::Replay(journal_path_, &db).ok());
  EXPECT_GE(replayed_c->value(), replayed0 + 1);
  EXPECT_GE(dropped_c->value(), dropped0 + 1);

  // And the exporter carries the metric names.
  std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("vqldb_journal_fsyncs_total"), std::string::npos);
  EXPECT_NE(prom.find("vqldb_recovery_records_replayed_total"),
            std::string::npos);
  EXPECT_NE(prom.find("vqldb_recovery_records_dropped_total"),
            std::string::npos);
}

TEST_F(JournalTest, DictionarySurvivesReplay) {
  // String terms that exist only inside journaled statements: before replay
  // the global term dictionary has never seen them; replay must intern them
  // (AssertFact interns every argument) so the recovered relations are
  // dictionary-encoded exactly like live-inserted ones.
  const Value probe = Value::String("journal-dict-probe-alpha");
  ASSERT_EQ(TermDict::Global().IdOf(probe), kNoTermId);
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object o1 { }.").ok());
    ASSERT_TRUE(
        journal->Append("annotation(o1, \"journal-dict-probe-alpha\").").ok());
    ASSERT_TRUE(
        journal->Append("annotation(o1, \"journal-dict-probe-beta\").").ok());
  }
  VideoDatabase db;
  auto replayed = Journal::Replay(journal_path_, &db);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed->statements_replayed, 3u);
  EXPECT_NE(TermDict::Global().IdOf(probe), kNoTermId);
  const auto& facts = db.FactsFor("annotation");
  ASSERT_EQ(facts.size(), 2u);
  EXPECT_EQ(facts[0].args[1], probe);
  // Id equality mirrors value equality for the recovered terms.
  EXPECT_EQ(TermDict::Global().IdOf(facts[0].args[1]),
            TermDict::Global().IdOf(probe));
  EXPECT_NE(TermDict::Global().IdOf(facts[1].args[1]),
            TermDict::Global().IdOf(probe));
}

TEST_F(JournalTest, DictionarySurvivesSnapshotRecovery) {
  // Snapshot + journal tail, both carrying string terms; after Recover the
  // facts must decode to Compare-equal values and every argument must be
  // interned (the columnar engine cannot store un-interned terms).
  VideoDatabase db;
  ObjectId o1 = *db.CreateEntity("o1");
  Fact base{"annotation",
            {Value::Oid(o1), Value::String("snapshot-dict-term-gamma")}};
  VQLDB_CHECK_OK(db.AssertFact(base));
  ASSERT_TRUE(BinaryFormat::Save(db, snapshot_path_).ok());
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(
        journal->Append("annotation(o1, \"snapshot-dict-term-delta\").").ok());
  }
  RecoveryReport report;
  auto recovered = Journal::Recover(snapshot_path_, journal_path_, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  const auto& facts = recovered->FactsFor("annotation");
  ASSERT_EQ(facts.size(), 2u);
  for (const Fact& f : facts) {
    for (const Value& arg : f.args) {
      EXPECT_NE(TermDict::Global().IdOf(arg), kNoTermId)
          << "recovered argument not interned: " << arg.ToString();
    }
  }
  EXPECT_EQ(facts[0].args[1], base.args[1]);
  EXPECT_EQ(facts[1].args[1].string_value(), "snapshot-dict-term-delta");
}

}  // namespace
}  // namespace vqldb
