#include "src/storage/journal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/common/logging.h"
#include "src/storage/binary_format.h"

namespace vqldb {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/journal_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    journal_path_ = dir_ + "/archive.log";
    snapshot_path_ = dir_ + "/archive.vqdb";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_, journal_path_, snapshot_path_;
};

TEST_F(JournalTest, AppendAndReplay) {
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object o1 { name: \"David\" }.").ok());
    ASSERT_TRUE(journal
                    ->Append("interval gi1 { duration: (t > 0 and t < 9), "
                             "entities: {o1} }.")
                    .ok());
    ASSERT_TRUE(journal->Append("seen(o1, gi1).").ok());
    EXPECT_EQ(journal->appended(), 3u);
  }
  VideoDatabase db;
  auto replayed = Journal::Replay(journal_path_, &db);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(*replayed, 3u);
  EXPECT_EQ(db.Entities().size(), 1u);
  EXPECT_EQ(db.BaseIntervals().size(), 1u);
  EXPECT_EQ(db.fact_count(), 1u);
}

TEST_F(JournalTest, RejectsRulesAndQueries) {
  auto journal = Journal::Open(journal_path_);
  ASSERT_TRUE(journal.ok());
  EXPECT_TRUE(journal->Append("q(X) <- p(X).").IsInvalidArgument());
  EXPECT_TRUE(journal->Append("?- q(X).").IsInvalidArgument());
  EXPECT_TRUE(journal->Append("garbage here").IsParseError());
  EXPECT_EQ(journal->appended(), 0u);
  // Nothing leaked into the file.
  VideoDatabase db;
  EXPECT_EQ(*Journal::Replay(journal_path_, &db), 0u);
}

TEST_F(JournalTest, ReplayMissingFileIsEmpty) {
  VideoDatabase db;
  auto replayed = Journal::Replay(dir_ + "/nope.log", &db);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 0u);
}

TEST_F(JournalTest, RecordObjectAndFactRenderSymbols) {
  VideoDatabase db;
  ObjectId o1 = *db.CreateEntity("o1");
  VQLDB_CHECK_OK(db.SetAttribute(o1, "name", Value::String("David")));
  ObjectId gi =
      *db.CreateInterval("gi1", IntervalSet({TimeInterval::Open(0, 10)}));
  VQLDB_CHECK_OK(db.AddEntityToInterval(gi, o1));
  Fact fact{"seen", {Value::Oid(o1), Value::Oid(gi)}};
  VQLDB_CHECK_OK(db.AssertFact(fact));

  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->RecordObject(db, o1).ok());
    ASSERT_TRUE(journal->RecordObject(db, gi).ok());
    ASSERT_TRUE(journal->RecordFact(db, fact).ok());
  }
  VideoDatabase restored;
  ASSERT_TRUE(Journal::Replay(journal_path_, &restored).ok());
  EXPECT_EQ(restored.GetAttribute(*restored.Resolve("o1"), "name")
                ->string_value(),
            "David");
  EXPECT_FALSE(restored.DurationOf(*restored.Resolve("gi1"))->Contains(0));
  EXPECT_EQ(restored.fact_count(), 1u);
}

TEST_F(JournalTest, RecordObjectRejectsAnonymousAndDerived) {
  VideoDatabase db;
  ObjectId anon = *db.CreateEntity("");
  ObjectId a = *db.CreateInterval("a", GeneralizedInterval::Single(0, 1));
  ObjectId b = *db.CreateInterval("b", GeneralizedInterval::Single(5, 6));
  ObjectId derived = *db.Concatenate(a, b);
  auto journal = Journal::Open(journal_path_);
  ASSERT_TRUE(journal.ok());
  EXPECT_TRUE(journal->RecordObject(db, anon).IsInvalidArgument());
  EXPECT_TRUE(journal->RecordObject(db, derived).IsInvalidArgument());
}

TEST_F(JournalTest, SnapshotPlusJournalRecovery) {
  // Phase 1: build a base archive and snapshot it.
  VideoDatabase db;
  ObjectId o1 = *db.CreateEntity("o1");
  VQLDB_CHECK_OK(db.SetAttribute(o1, "name", Value::String("David")));
  ASSERT_TRUE(BinaryFormat::Save(db, snapshot_path_).ok());

  // Phase 2: journal mutations made after the snapshot.
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object o2 { name: \"Rupert\" }.").ok());
    ASSERT_TRUE(journal
                    ->Append("interval gi1 { duration: (t >= 0 and t <= 5), "
                             "entities: {o1, o2} }.")
                    .ok());
  }

  // Phase 3: recover = snapshot + tail.
  auto recovered = Journal::Recover(snapshot_path_, journal_path_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->Entities().size(), 2u);
  EXPECT_EQ(recovered->BaseIntervals().size(), 1u);
  EXPECT_EQ(recovered->EntitiesOf(*recovered->Resolve("gi1"))->size(), 2u);
}

TEST_F(JournalTest, RecoverWithoutSnapshotStartsEmpty) {
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object only { }.").ok());
  }
  auto recovered = Journal::Recover("", journal_path_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->Entities().size(), 1u);
}

TEST_F(JournalTest, ReplayDetectsForeignStatements) {
  {
    std::ofstream raw(journal_path_);
    raw << "object o1 { }.\nq(X) <- p(X).\n";
  }
  VideoDatabase db;
  auto replayed = Journal::Replay(journal_path_, &db);
  EXPECT_TRUE(replayed.status().IsCorruption());
}

TEST_F(JournalTest, AppendSurvivesReopen) {
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object o1 { }.").ok());
  }
  {
    auto journal = Journal::Open(journal_path_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("object o2 { }.").ok());
  }
  VideoDatabase db;
  ASSERT_TRUE(Journal::Replay(journal_path_, &db).ok());
  EXPECT_EQ(db.Entities().size(), 2u);
}

}  // namespace
}  // namespace vqldb
