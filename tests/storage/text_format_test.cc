#include "src/storage/text_format.h"

#include <gtest/gtest.h>

#include "src/common/logging.h"

#include <cstdio>

namespace vqldb {
namespace {

VideoDatabase BuildSample() {
  VideoDatabase db;
  ObjectId o1 = *db.CreateEntity("o1");
  VQLDB_CHECK_OK(db.SetAttribute(o1, "name", Value::String("David")));
  VQLDB_CHECK_OK(db.SetAttribute(o1, "age", Value::Int(30)));
  ObjectId o2 = *db.CreateEntity("o2");
  VQLDB_CHECK_OK(db.SetAttribute(o2, "name", Value::String("Phi\"lip")));
  ObjectId gi =
      *db.CreateInterval("gi1", IntervalSet({TimeInterval::Open(0, 10),
                                             TimeInterval::Closed(20, 25)}));
  VQLDB_CHECK_OK(db.AddEntityToInterval(gi, o1));
  VQLDB_CHECK_OK(db.AddEntityToInterval(gi, o2));
  VQLDB_CHECK_OK(db.SetAttribute(gi, "subject", Value::String("murder")));
  VQLDB_CHECK_OK(db.SetAttribute(gi, "victim", Value::Oid(o1)));
  VQLDB_CHECK_OK(
      db.AssertFact("in", {Value::Oid(o1), Value::Oid(o2), Value::Oid(gi)}));
  VQLDB_CHECK_OK(db.AssertFact("score", {Value::Oid(gi), Value::Double(0.5)}));
  return db;
}

TEST(TextFormatTest, DumpContainsDeclarations) {
  VideoDatabase db = BuildSample();
  auto text = TextFormat::Dump(db);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("object o1 {"), std::string::npos);
  EXPECT_NE(text->find("interval gi1 {"), std::string::npos);
  EXPECT_NE(text->find("in(o1, o2, gi1)."), std::string::npos);
  EXPECT_NE(text->find("duration:"), std::string::npos);
}

TEST(TextFormatTest, RoundTripPreservesEverything) {
  VideoDatabase db = BuildSample();
  auto text = TextFormat::Dump(db);
  ASSERT_TRUE(text.ok());

  VideoDatabase restored;
  auto loaded = TextFormat::Load(*text, &restored);
  ASSERT_TRUE(loaded.ok()) << loaded.status() << "\n" << *text;
  EXPECT_TRUE(restored.Validate().ok());
  EXPECT_EQ(restored.Entities().size(), 2u);
  EXPECT_EQ(restored.BaseIntervals().size(), 1u);
  EXPECT_EQ(restored.fact_count(), 2u);

  ObjectId o1 = *restored.Resolve("o1");
  EXPECT_EQ(restored.GetAttribute(o1, "name")->string_value(), "David");
  EXPECT_EQ(restored.GetAttribute(o1, "age")->int_value(), 30);
  ObjectId gi = *restored.Resolve("gi1");
  IntervalSet duration = *restored.DurationOf(gi);
  EXPECT_FALSE(duration.Contains(0));  // open bound survived
  EXPECT_TRUE(duration.Contains(5));
  EXPECT_TRUE(duration.Contains(20));  // closed fragment survived
  EXPECT_EQ(restored.EntitiesOf(gi)->size(), 2u);
  EXPECT_EQ(restored.GetAttribute(gi, "victim")->oid_value(), o1);
}

TEST(TextFormatTest, DoubleRoundTripIsStable) {
  VideoDatabase db = BuildSample();
  std::string text1 = *TextFormat::Dump(db);
  VideoDatabase db2;
  ASSERT_TRUE(TextFormat::Load(text1, &db2).ok());
  std::string text2 = *TextFormat::Dump(db2);
  EXPECT_EQ(text1, text2);
}

TEST(TextFormatTest, AnonymousObjectsGetSyntheticSymbols) {
  VideoDatabase db;
  ObjectId o = *db.CreateEntity("");
  VQLDB_CHECK_OK(db.SetAttribute(o, "name", Value::String("ghost")));
  auto text = TextFormat::Dump(db);
  ASSERT_TRUE(text.ok());
  VideoDatabase restored;
  ASSERT_TRUE(TextFormat::Load(*text, &restored).ok());
  EXPECT_EQ(restored.Entities().size(), 1u);
}

TEST(TextFormatTest, DerivedIntervalsSkipped) {
  VideoDatabase db = BuildSample();
  ObjectId gi = *db.Resolve("gi1");
  ASSERT_TRUE(db.Concatenate(gi, gi).ok());
  ObjectId gi2 =
      *db.CreateInterval("gi2", GeneralizedInterval::Single(50, 60));
  ObjectId derived = *db.Concatenate(gi, gi2);
  // A fact over the derived interval becomes a comment.
  ASSERT_TRUE(db.AssertFact("derived_rel", {Value::Oid(derived)}).ok());
  auto text = TextFormat::Dump(db);
  ASSERT_TRUE(text.ok());
  VideoDatabase restored;
  auto loaded = TextFormat::Load(*text, &restored);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(restored.BaseIntervals().size(), 2u);
  EXPECT_EQ(restored.derived_interval_count(), 0u);
  EXPECT_TRUE(restored.FactsFor("derived_rel").empty());
}

TEST(TextFormatTest, LoadReturnsRulesAndQueries) {
  VideoDatabase db;
  auto loaded = TextFormat::Load(R"(
    object o1 { name: "x" }.
    q(G) <- Interval(G), o1 in G.entities.
    ?- q(G).
  )",
                                 &db);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rules.size(), 1u);
  EXPECT_EQ(loaded->queries.size(), 1u);
}

TEST(TextFormatTest, LoadRejectsBadProgram) {
  VideoDatabase db;
  EXPECT_TRUE(TextFormat::Load("object { }.", &db).status().IsParseError());
  EXPECT_TRUE(TextFormat::Load("interval gi { }.", &db)
                  .status()
                  .IsInvalidArgument());  // missing duration
}

TEST(TextFormatTest, FileRoundTrip) {
  VideoDatabase db = BuildSample();
  std::string path = ::testing::TempDir() + "/archive.vql";
  ASSERT_TRUE(TextFormat::DumpToFile(db, path).ok());
  VideoDatabase restored;
  auto loaded = TextFormat::LoadFromFile(path, &restored);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(restored.Entities().size(), 2u);
  std::remove(path.c_str());
  EXPECT_TRUE(
      TextFormat::LoadFromFile("/nonexistent/nope.vql", &restored)
          .status()
          .IsIOError());
}

TEST(TextFormatTest, RenderValueErrors) {
  VideoDatabase db;
  EXPECT_TRUE(TextFormat::RenderValue(db, Value()).status().IsInvalidArgument());
  EXPECT_TRUE(TextFormat::RenderValue(db, Value::Oid(ObjectId{99}))
                  .status()
                  .IsCorruption());
}

}  // namespace
}  // namespace vqldb
