#include "src/shell/repl.h"

#include "src/common/cancel.h"
#include "src/obs/stats.h"
#include "src/server/wire.h"
#include "src/storage/journal.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace vqldb {
namespace {

class ReplTest : public ::testing::Test {
 protected:
  VideoDatabase db_;
  Repl repl_{&db_};
};

TEST_F(ReplTest, EmptyLineNoOutput) {
  EXPECT_EQ(repl_.Execute(""), "");
  EXPECT_EQ(repl_.Execute("   "), "");
  EXPECT_FALSE(repl_.done());
}

TEST_F(ReplTest, DeclarationThenQuery) {
  EXPECT_EQ(repl_.Execute("object o1 { name: \"David\" }."), "ok\n");
  EXPECT_EQ(repl_.Execute(
                "interval gi1 { duration: (t > 0 and t < 9), "
                "entities: {o1} }."),
            "ok\n");
  std::string out = repl_.Execute("?- Interval(G).");
  EXPECT_NE(out.find("1 answer"), std::string::npos);
  EXPECT_NE(out.find("gi1"), std::string::npos);
}

TEST_F(ReplTest, MultiLineStatementBuffers) {
  EXPECT_EQ(repl_.Execute("object o1 {"), "");
  EXPECT_TRUE(repl_.pending());
  EXPECT_EQ(repl_.Execute("  name: \"David\""), "");
  EXPECT_EQ(repl_.Execute("}."), "ok\n");
  EXPECT_FALSE(repl_.pending());
}

TEST_F(ReplTest, ClearBufDiscardsPartialInput) {
  EXPECT_EQ(repl_.Execute("object broken {"), "");
  EXPECT_TRUE(repl_.pending());
  // Meta commands do not run while buffering — the input joins the buffer
  // unless it is .clearbuf... actually meta commands only act when the
  // buffer is empty, so flush first.
  repl_.Execute("}.");  // complete the statement (may error, fine)
  EXPECT_FALSE(repl_.pending());
  EXPECT_EQ(repl_.Execute(".clearbuf"), "input buffer cleared\n");
}

TEST_F(ReplTest, RuleAndQuery) {
  repl_.Execute("object o1 { name: \"x\" }.");
  repl_.Execute(
      "interval g { duration: (t >= 0 and t <= 5), entities: {o1} }.");
  EXPECT_EQ(repl_.Execute("q(G) <- Interval(G), o1 in G.entities."), "ok\n");
  std::string out = repl_.Execute("?- q(G).");
  EXPECT_NE(out.find("g"), std::string::npos);
}

TEST_F(ReplTest, ErrorsAreReportedNotFatal) {
  std::string out = repl_.Execute("?- undefined(X.");
  EXPECT_NE(out.find("error:"), std::string::npos);
  out = repl_.Execute("q(X) <- .");
  EXPECT_NE(out.find("error:"), std::string::npos);
  // Shell still usable.
  EXPECT_EQ(repl_.Execute("object ok {}."), "ok\n");
}

TEST_F(ReplTest, StatsAndObjects) {
  repl_.Execute("object o1 {}.");
  repl_.Execute(
      "interval g { duration: (t >= 0 and t <= 1), entities: {o1} }.");
  std::string stats = repl_.Execute(".stats");
  EXPECT_NE(stats.find("1 entities"), std::string::npos);
  EXPECT_NE(stats.find("1 base intervals"), std::string::npos);
  std::string objects = repl_.Execute(".objects");
  EXPECT_NE(objects.find("object   o1"), std::string::npos);
  EXPECT_NE(objects.find("interval g"), std::string::npos);
}

TEST_F(ReplTest, SlowlogShowsEntriesAndResets) {
  obs::StatsCollector::Global().Reset();
  obs::StatsCollector::Global().set_slow_threshold_us(0);  // log everything
  repl_.Execute("object o1 {}.");
  repl_.Execute("object o2 {}.");
  repl_.Execute("edge(o1, o2).");
  repl_.Execute("p(X, Y) <- edge(X, Y).");
  repl_.Execute("?- p(X, Y).");
  std::string out = repl_.Execute(".slowlog");
  EXPECT_NE(out.find("slow-query log"), std::string::npos);
  EXPECT_NE(out.find("p($0, $1)"), std::string::npos) << out;
  EXPECT_NE(out.find("total "), std::string::npos);
  // A bounded listing still shows the newest entry.
  out = repl_.Execute(".slowlog 1");
  EXPECT_NE(out.find("p($0, $1)"), std::string::npos);

  EXPECT_EQ(repl_.Execute(".slowlog reset"), "slow-query log reset\n");
  out = repl_.Execute(".slowlog");
  EXPECT_NE(out.find("(empty)"), std::string::npos);

  EXPECT_NE(repl_.Execute(".slowlog nonsense").find("usage:"),
            std::string::npos);
  EXPECT_NE(repl_.Execute(".slowlog 0").find("usage:"), std::string::npos);
  obs::StatsCollector::Global().set_slow_threshold_us(
      obs::StatsCollector::kDefaultSlowThresholdUs);
  obs::StatsCollector::Global().Reset();
}

TEST_F(ReplTest, StatsResetClearsTheCollectorAtomically) {
  obs::StatsCollector::Global().Reset();
  repl_.Execute("object o1 {}.");
  repl_.Execute("object o2 {}.");
  repl_.Execute("edge(o1, o2).");
  repl_.Execute("p(X, Y) <- edge(X, Y).");
  repl_.Execute("?- p(X, Y).");
  obs::StatsSnapshot before = obs::StatsCollector::Global().Snapshot();
  EXPECT_GT(before.total_queries, 0u);
  EXPECT_FALSE(before.columns.empty());

  EXPECT_EQ(repl_.Execute(".stats reset"), "metrics reset\n");
  obs::StatsSnapshot after = obs::StatsCollector::Global().Snapshot();
  EXPECT_EQ(after.total_queries, 0u);
  EXPECT_TRUE(after.columns.empty());
  EXPECT_TRUE(after.queries.empty());
  EXPECT_TRUE(after.slow.empty());
}

TEST_F(ReplTest, StrategyCommandSwitchesAndReports) {
  EXPECT_EQ(repl_.Execute(".strategy"), "strategy: auto\n");
  EXPECT_EQ(repl_.Execute(".strategy qsqr"), "strategy: qsqr\n");
  EXPECT_EQ(repl_.Execute(".strategy"), "strategy: qsqr\n");
  EXPECT_NE(repl_.Execute(".strategy nope").find("usage"), std::string::npos);
  // Answers are strategy-independent.
  repl_.Execute("object o1 {}.");
  repl_.Execute("object o2 {}.");
  repl_.Execute("edge(o1, o2).");
  repl_.Execute("p(X, Y) <- edge(X, Y).");
  std::string qsqr_out = repl_.Execute("?- p(o1, Y).");
  EXPECT_EQ(repl_.Execute(".strategy fixpoint"), "strategy: fixpoint\n");
  EXPECT_EQ(repl_.Execute("?- p(o1, Y)."), qsqr_out);
}

TEST_F(ReplTest, ReorderCommandTogglesAndReports) {
  std::string off = repl_.Execute(".reorder");
  EXPECT_NE(off.find("off"), std::string::npos);
  EXPECT_NE(repl_.Execute(".reorder on").find("on"), std::string::npos);
  EXPECT_NE(repl_.Execute(".reorder").find("on"), std::string::npos);
  EXPECT_NE(repl_.Execute(".reorder nope").find("usage"), std::string::npos);
  // Reordering is a pure access-path change.
  repl_.Execute("object o1 {}.");
  repl_.Execute("object o2 {}.");
  repl_.Execute("edge(o1, o2).");
  repl_.Execute("tagged(o2).");
  repl_.Execute("hit(X, Y) <- edge(X, Y), tagged(Y).");
  std::string on_out = repl_.Execute("?- hit(X, Y).");
  EXPECT_NE(on_out.find("1 answer"), std::string::npos);
  EXPECT_NE(repl_.Execute(".reorder off").find("off"), std::string::npos);
  EXPECT_EQ(repl_.Execute("?- hit(X, Y)."), on_out);
}

TEST_F(ReplTest, RulesListing) {
  EXPECT_EQ(repl_.Execute(".rules"), "(no rules)\n");
  repl_.Execute("object o1 {}.");
  repl_.Execute("q(X) <- p(X).");
  std::string rules = repl_.Execute(".rules");
  EXPECT_NE(rules.find("q(X) <- p(X)."), std::string::npos);
}

TEST_F(ReplTest, LoadLibraries) {
  EXPECT_EQ(repl_.Execute(".lib std"), "library loaded\n");
  EXPECT_EQ(repl_.Execute(".lib taxonomy"), "library loaded\n");
  EXPECT_NE(repl_.Execute(".lib nope").find("usage"), std::string::npos);
  std::string rules = repl_.Execute(".rules");
  EXPECT_NE(rules.find("contains(G1, G2)"), std::string::npos);
  EXPECT_NE(rules.find("kind_of"), std::string::npos);
}

TEST_F(ReplTest, SaveAndLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/repl_archive.vql";
  repl_.Execute("object o1 { name: \"David\" }.");
  repl_.Execute(
      "interval g { duration: (t >= 0 and t <= 5), entities: {o1} }.");
  EXPECT_EQ(repl_.Execute(".save " + path), "saved " + path + "\n");

  VideoDatabase fresh;
  Repl other(&fresh);
  std::string out = other.Execute(".load " + path);
  EXPECT_NE(out.find("loaded"), std::string::npos);
  EXPECT_EQ(fresh.Entities().size(), 1u);
  std::filesystem::remove(path);
}

TEST_F(ReplTest, SaveBinary) {
  std::string path = ::testing::TempDir() + "/repl_archive.vqdb";
  repl_.Execute("object o1 {}.");
  EXPECT_EQ(repl_.Execute(".save " + path), "saved " + path + "\n");
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

TEST_F(ReplTest, QuitSetsDone) {
  EXPECT_FALSE(repl_.done());
  repl_.Execute(".quit");
  EXPECT_TRUE(repl_.done());
}

TEST_F(ReplTest, UnknownMetaCommand) {
  EXPECT_NE(repl_.Execute(".bogus").find("unknown command"),
            std::string::npos);
}

TEST_F(ReplTest, HelpMentionsEveryCommand) {
  std::string help = repl_.Execute(".help");
  for (const char* cmd : {".stats", ".slowlog", ".rules", ".objects", ".lib",
                          ".load", ".save", ".quit"}) {
    EXPECT_NE(help.find(cmd), std::string::npos) << cmd;
  }
}


TEST_F(ReplTest, JournalMirrorsDataStatements) {
  std::string path = ::testing::TempDir() + "/repl_journal.log";
  std::filesystem::remove(path);
  EXPECT_NE(repl_.Execute(".journal " + path).find("journaling"),
            std::string::npos);
  EXPECT_EQ(repl_.Execute("object o1 { name: \"x\" }."), "ok\n");
  EXPECT_EQ(repl_.Execute("q(X) <- p(X)."), "ok\n");  // rule: not journaled
  EXPECT_NE(repl_.Execute(".journal").find(path), std::string::npos);
  EXPECT_EQ(repl_.Execute(".journal off"), "journaling off\n");

  VideoDatabase fresh;
  auto replayed = Journal::Replay(path, &fresh);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed->statements_replayed, 1u);  // only the declaration
  EXPECT_FALSE(replayed->truncated);
  EXPECT_EQ(fresh.Entities().size(), 1u);
  std::filesystem::remove(path);
}

TEST_F(ReplTest, LastStatusTracksOutcomesForExitCodes) {
  // The vql exit code comes from last_status() via ExitCodeForStatus: a
  // script can tell a parse error (2) from success (0).
  repl_.Execute("object o1 { }.");
  EXPECT_TRUE(repl_.last_status().ok());

  repl_.Execute("?- p(X.");  // parse error
  EXPECT_TRUE(repl_.last_status().IsParseError());
  EXPECT_EQ(ExitCodeForStatus(repl_.last_status()), 2);

  repl_.Execute("?- Object(X).");
  EXPECT_TRUE(repl_.last_status().ok());
  EXPECT_EQ(ExitCodeForStatus(repl_.last_status()), 0);

  repl_.Execute(".nonsense");  // meta-command errors count too
  EXPECT_FALSE(repl_.last_status().ok());
}

TEST_F(ReplTest, CancelTokenInterruptsQueries) {
  auto token = std::make_shared<CancelToken>();
  repl_.InstallCancelToken(token);
  EXPECT_EQ(repl_.Execute("object a { }."), "ok\n");
  token->Cancel();
  std::string out = repl_.Execute("?- Object(X).");
  EXPECT_NE(out.find("Cancelled"), std::string::npos) << out;
  EXPECT_TRUE(repl_.last_status().IsCancelled());
  token->Reset();
  out = repl_.Execute("?- Object(X).");
  EXPECT_NE(out.find("1 answer"), std::string::npos) << out;
}

TEST_F(ReplTest, FlushJournalSyncsTheMirror) {
  // No journal attached: flushing is a no-op, not an error.
  EXPECT_TRUE(repl_.FlushJournal().ok());

  std::string path = ::testing::TempDir() + "/repl_flush_journal.log";
  std::filesystem::remove(path);
  repl_.Execute(".journal " + path);
  repl_.Execute("object o1 { name: \"x\" }.");
  // The signal-exit path: flush without detaching, then replay what's on
  // disk — the statement must be durable.
  EXPECT_TRUE(repl_.FlushJournal().ok());
  VideoDatabase fresh;
  auto replayed = Journal::Replay(path, &fresh);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed->statements_replayed, 1u);
  repl_.Execute(".journal off");
  std::filesystem::remove(path);
}

TEST_F(ReplTest, ThreadsRejectsMalformedNumbers) {
  // The old strtol path silently accepted trailing garbage and wrapped on
  // overflow; all of these must be usage errors now.
  EXPECT_EQ(repl_.Execute(".threads 4x"),
            "usage: .threads <N>=1|auto  (1 = serial engine)\n");
  EXPECT_EQ(repl_.Execute(".threads -2"),
            "usage: .threads <N>=1|auto  (1 = serial engine)\n");
  EXPECT_EQ(repl_.Execute(".threads 0"),
            "usage: .threads <N>=1|auto  (1 = serial engine)\n");
  EXPECT_EQ(repl_.Execute(".threads 99999999999999999999"),
            "usage: .threads <N>=1|auto  (1 = serial engine)\n");
  EXPECT_EQ(repl_.Execute(".threads 2"), "fixpoint threads: 2\n");
  EXPECT_EQ(repl_.Execute(".threads auto"),
            "fixpoint threads: auto (hardware concurrency)\n");
}

TEST_F(ReplTest, TimeoutRejectsMalformedNumbers) {
  EXPECT_EQ(repl_.Execute(".timeout 100ms"), "usage: .timeout <ms>|off\n");
  EXPECT_EQ(repl_.Execute(".timeout -5"), "usage: .timeout <ms>|off\n");
  // Overflow must not wrap into a bogus (possibly negative) deadline.
  EXPECT_EQ(repl_.Execute(".timeout 99999999999999999999"),
            "usage: .timeout <ms>|off\n");
  EXPECT_EQ(repl_.Execute(".timeout 250"), "query timeout: 250 ms\n");
  EXPECT_EQ(repl_.Execute(".timeout"), "query timeout: 250 ms\n");
  EXPECT_EQ(repl_.Execute(".timeout off"), "query timeout: off\n");
}

TEST_F(ReplTest, MagicToggleRoundTrips) {
  EXPECT_EQ(repl_.Execute(".magic"), "magic sets: on\n");  // default on
  EXPECT_EQ(repl_.Execute(".magic off"), "magic sets: off\n");
  EXPECT_EQ(repl_.Execute(".magic"), "magic sets: off\n");
  EXPECT_EQ(repl_.Execute(".magic on"), "magic sets: on\n");
  EXPECT_EQ(repl_.Execute(".magic sideways"), "usage: .magic [on|off]\n");
  // Queries still run after toggling.
  EXPECT_EQ(repl_.Execute("object a {}."), "ok\n");
  EXPECT_EQ(repl_.Execute("p(a)."), "ok\n");
  EXPECT_NE(repl_.Execute("?- p(X).").find("a"), std::string::npos);
}

TEST_F(ReplTest, CacheCommandReportsTogglesAndClears) {
  EXPECT_EQ(repl_.Execute(".cache"), "query cache: on (0 entries)\n");
  EXPECT_EQ(repl_.Execute("object a {}."), "ok\n");
  EXPECT_EQ(repl_.Execute("p(a)."), "ok\n");
  EXPECT_NE(repl_.Execute("?- p(X).").find("a"), std::string::npos);
  EXPECT_EQ(repl_.Execute(".cache"), "query cache: on (1 entries)\n");
  EXPECT_EQ(repl_.Execute(".cache clear"), "query cache cleared\n");
  EXPECT_EQ(repl_.Execute(".cache"), "query cache: on (0 entries)\n");
  EXPECT_EQ(repl_.Execute(".cache off"), "query cache: off\n");
  EXPECT_EQ(repl_.Execute(".cache maybe"), "usage: .cache [on|off|clear]\n");
  EXPECT_EQ(repl_.Execute(".cache on"), "query cache: on\n");
}

class ReplArchiveTest : public ReplTest {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/repl_archive_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ReplArchiveTest, OpenRouteQueryAndClose) {
  EXPECT_NE(repl_.Execute(".archive"), "");  // usage hint, not a crash
  std::string out = repl_.Execute(".archive open " + dir_ + " 2");
  EXPECT_NE(out.find("archive " + dir_ + " open (2 shards)"),
            std::string::npos)
      << out;

  // Statements route through the archive under the active tenant.
  out = repl_.Execute(".tenant alice");
  EXPECT_NE(out.find("tenant: alice (shard "), std::string::npos);
  out = repl_.Execute("object a1 { }.");
  EXPECT_NE(out.find("ok (tenant alice -> shard "), std::string::npos);
  EXPECT_EQ(repl_.Execute("tagged(a1)."),
            out);  // same tenant, same shard
  repl_.Execute(".tenant bob");
  EXPECT_NE(repl_.Execute("object b1 { }.")
                .find("ok (tenant bob -> shard "),
            std::string::npos);
  repl_.Execute("tagged(b1).");

  // Queries scatter-gather over every shard.
  out = repl_.Execute("?- tagged(X).");
  EXPECT_NE(out.find("2 answers"), std::string::npos) << out;
  EXPECT_NE(out.find("a1"), std::string::npos);
  EXPECT_NE(out.find("b1"), std::string::npos);

  // Shard introspection.
  out = repl_.Execute(".shards");
  EXPECT_NE(out.find("shard 0 [healthy]"), std::string::npos) << out;
  EXPECT_NE(out.find("shard 1 [healthy]"), std::string::npos);

  EXPECT_EQ(repl_.Execute(".archive close"), "archive closed\n");
  // Back to plain single-database mode.
  EXPECT_EQ(repl_.Execute("object local { }."), "ok\n");
}

TEST_F(ReplArchiveTest, KilledShardStrictThenPartialThenRecovered) {
  repl_.Execute(".archive open " + dir_ + " 2");
  repl_.Execute(".tenant alice");
  repl_.Execute("object a1 { }.");
  repl_.Execute("tagged(a1).");
  repl_.Execute(".tenant bob");
  repl_.Execute("object b1 { }.");
  repl_.Execute("tagged(b1).");

  // Kill the shard alice's data lives on, whichever one routing picked.
  ASSERT_NE(repl_.archive(), nullptr);
  const uint32_t dead = repl_.archive()->ShardIdFor("alice");
  const std::string dead_str = std::to_string(dead);
  std::string out = repl_.Execute(".shard kill " + dead_str);
  EXPECT_NE(out.find("shard " + dead_str + " killed"), std::string::npos);

  // Strict (default): the query refuses rather than answering silently
  // incompletely.
  out = repl_.Execute("?- tagged(X).");
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  EXPECT_NE(out.find("unavailable"), std::string::npos) << out;

  // Opt-in partial answers are marked and carry the gap report.
  EXPECT_EQ(repl_.Execute(".partial on"), "partial answers: on\n");
  out = repl_.Execute("?- tagged(X).");
  EXPECT_NE(out.find("PARTIAL"), std::string::npos) << out;
  EXPECT_NE(out.find("1 answer"), std::string::npos);
  EXPECT_NE(out.find("missing shard " + dead_str), std::string::npos);

  // Writes to the dead shard refuse; sys_shards shows the failure.
  repl_.Execute(".tenant alice");
  out = repl_.Execute("object a2 { }.");
  EXPECT_NE(out.find("error:"), std::string::npos);
  out = repl_.Execute("?- sys_shards(S, St, F, R, D, Rec, E).");
  EXPECT_NE(out.find("failed"), std::string::npos) << out;

  out = repl_.Execute(".shard recover " + dead_str);
  EXPECT_NE(out.find("shard " + dead_str + " recovered [healthy]"),
            std::string::npos)
      << out;
  EXPECT_EQ(repl_.Execute(".partial off"), "partial answers: off\n");
  out = repl_.Execute("?- tagged(X).");
  EXPECT_NE(out.find("2 answers"), std::string::npos) << out;
}

TEST_F(ReplArchiveTest, SnapshotRotatesAndExplainShowsShards) {
  repl_.Execute(".archive open " + dir_ + " 2");
  repl_.Execute(".tenant alice");
  repl_.Execute("object a1 { }.");
  std::string out = repl_.Execute(".shard snapshot all");
  EXPECT_EQ(out, "all shards rotated to fresh snapshots\n");
  out = repl_.Execute("explain analyze ?- Object(X).");
  EXPECT_NE(out.find("sharded archive:"), std::string::npos) << out;
  EXPECT_NE(out.find("scatter-gather"), std::string::npos);
}

TEST_F(ReplArchiveTest, ArchivePersistsAcrossReopen) {
  repl_.Execute(".archive open " + dir_ + " 2");
  repl_.Execute(".tenant alice");
  repl_.Execute("object a1 { }.");
  repl_.Execute("tagged(a1).");
  repl_.Execute(".archive close");

  VideoDatabase fresh;
  Repl other(&fresh);
  other.Execute(".archive open " + dir_);
  std::string out = other.Execute("?- tagged(X).");
  EXPECT_NE(out.find("1 answer"), std::string::npos) << out;
  EXPECT_NE(out.find("a1"), std::string::npos);
}

TEST_F(ReplArchiveTest, HelpMentionsArchiveCommands) {
  std::string help = repl_.Execute(".help");
  for (const char* cmd :
       {".archive", ".tenant", ".partial", ".shards", ".shard"}) {
    EXPECT_NE(help.find(cmd), std::string::npos) << cmd;
  }
}

}  // namespace
}  // namespace vqldb
