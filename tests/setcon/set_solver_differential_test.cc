// Brute-force differential test for the set-order solver: enumerate every
// assignment of subsets of a small universe to the variables and compare
// satisfiability and entailment against the polynomial closure procedure.
//
// Domain subtlety: the real semantics has an infinite element universe, so
// "X subseteq s" can always be refuted by adding a fresh element when X has
// no upper bound. The brute-force universe therefore includes two fresh
// elements (never mentioned by any constraint), which is enough slack for
// every countermodel the Def. 3 fragment can need.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/setcon/set_solver.h"

namespace vqldb {
namespace {

constexpr int kVars = 3;
constexpr Element kMentioned = 3;  // constraints mention elements 0..2
constexpr Element kUniverse = 5;   // universe adds fresh elements 3, 4

using Assignment = std::array<ElementSet, kVars>;

bool Holds(const SetConstraint& c, const Assignment& a) {
  switch (c.kind) {
    case SetConstraint::Kind::kMember:
      return a[static_cast<size_t>(c.var)].Contains(c.element);
    case SetConstraint::Kind::kLowerBound:
      return c.set.SubsetOf(a[static_cast<size_t>(c.var)]);
    case SetConstraint::Kind::kUpperBound:
      return a[static_cast<size_t>(c.var)].SubsetOf(c.set);
    case SetConstraint::Kind::kSubset:
      return a[static_cast<size_t>(c.var)].SubsetOf(
          a[static_cast<size_t>(c.var2)]);
  }
  return false;
}

bool HoldsAll(const SetConjunction& conj, const Assignment& a) {
  for (const SetConstraint& c : conj) {
    if (!Holds(c, a)) return false;
  }
  return true;
}

// Enumerates all (2^kUniverse)^kVars assignments, invoking fn; returns true
// if fn returned true for any assignment (early exit).
template <typename Fn>
bool AnyAssignment(Fn fn) {
  constexpr uint32_t kSubsets = 1u << kUniverse;
  Assignment a;
  for (uint32_t m0 = 0; m0 < kSubsets; ++m0) {
    for (uint32_t m1 = 0; m1 < kSubsets; ++m1) {
      for (uint32_t m2 = 0; m2 < kSubsets; ++m2) {
        uint32_t masks[kVars] = {m0, m1, m2};
        for (int v = 0; v < kVars; ++v) {
          std::vector<Element> elements;
          for (Element e = 0; e < kUniverse; ++e) {
            if (masks[v] & (1u << e)) elements.push_back(e);
          }
          a[static_cast<size_t>(v)] = ElementSet(std::move(elements));
        }
        if (fn(a)) return true;
      }
    }
  }
  return false;
}

SetConjunction RandomConjunction(Rng* rng) {
  SetConjunction c;
  size_t n = 1 + rng->UniformU64(5);
  for (size_t i = 0; i < n; ++i) {
    int var = static_cast<int>(rng->UniformU64(kVars));
    switch (rng->UniformU64(4)) {
      case 0:
        c.push_back(SetConstraint::Member(
            static_cast<Element>(rng->UniformU64(kMentioned)), var));
        break;
      case 1: {
        std::vector<Element> s;
        size_t k = rng->UniformU64(3);
        for (size_t j = 0; j < k; ++j) {
          s.push_back(static_cast<Element>(rng->UniformU64(kMentioned)));
        }
        c.push_back(SetConstraint::LowerBound(ElementSet(std::move(s)), var));
        break;
      }
      case 2: {
        std::vector<Element> s;
        size_t k = rng->UniformU64(kMentioned + 1);
        for (size_t j = 0; j < k; ++j) {
          s.push_back(static_cast<Element>(rng->UniformU64(kMentioned)));
        }
        c.push_back(SetConstraint::UpperBound(var, ElementSet(std::move(s))));
        break;
      }
      default:
        c.push_back(SetConstraint::Subset(
            var, static_cast<int>(rng->UniformU64(kVars))));
    }
  }
  return c;
}

class SetSolverDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetSolverDifferentialTest, SatisfiabilityMatchesBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    SetConjunction c = RandomConjunction(&rng);
    bool solver = SetSolver::Satisfiable(c);
    bool brute = AnyAssignment([&](const Assignment& a) {
      return HoldsAll(c, a);
    });
    EXPECT_EQ(solver, brute) << ToString(c);
  }
}

TEST_P(SetSolverDifferentialTest, EntailmentMatchesBruteForce) {
  Rng rng(GetParam() + 5000);
  for (int trial = 0; trial < 6; ++trial) {
    SetConjunction c = RandomConjunction(&rng);
    SetConjunction goal_pool = RandomConjunction(&rng);
    const SetConstraint& goal = goal_pool.front();
    bool solver = SetSolver::Entails(c, goal);
    // Entailed iff no assignment satisfies c but violates goal. The two
    // fresh universe elements supply the countermodels an infinite domain
    // would (for the Def. 3 fragment one fresh element per side suffices).
    bool counterexample = AnyAssignment([&](const Assignment& a) {
      return HoldsAll(c, a) && !Holds(goal, a);
    });
    EXPECT_EQ(solver, !counterexample)
        << ToString(c) << "  =>  " << goal.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetSolverDifferentialTest,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace vqldb
