#include "src/setcon/set_solver.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace vqldb {
namespace {

using SC = SetConstraint;

TEST(SetSolverTest, EmptyConjunctionSatisfiable) {
  EXPECT_TRUE(SetSolver::Satisfiable({}));
}

TEST(SetSolverTest, LowerWithinUpperSatisfiable) {
  EXPECT_TRUE(SetSolver::Satisfiable(
      {SC::LowerBound(ElementSet({1}), 0), SC::UpperBound(0, ElementSet({1, 2}))}));
}

TEST(SetSolverTest, LowerOutsideUpperUnsat) {
  EXPECT_FALSE(SetSolver::Satisfiable(
      {SC::LowerBound(ElementSet({3}), 0), SC::UpperBound(0, ElementSet({1, 2}))}));
}

TEST(SetSolverTest, MemberIsLowerBound) {
  EXPECT_FALSE(SetSolver::Satisfiable(
      {SC::Member(9, 0), SC::UpperBound(0, ElementSet({1, 2}))}));
  EXPECT_TRUE(SetSolver::Satisfiable(
      {SC::Member(1, 0), SC::UpperBound(0, ElementSet({1, 2}))}));
}

TEST(SetSolverTest, PropagationThroughSubsetChain) {
  // {5} subseteq X, X subseteq Y, Y subseteq {1,2}: 5 must flow into Y.
  EXPECT_FALSE(SetSolver::Satisfiable({SC::LowerBound(ElementSet({5}), 0),
                                       SC::Subset(0, 1),
                                       SC::UpperBound(1, ElementSet({1, 2}))}));
  EXPECT_TRUE(SetSolver::Satisfiable({SC::LowerBound(ElementSet({1}), 0),
                                      SC::Subset(0, 1),
                                      SC::UpperBound(1, ElementSet({1, 2}))}));
}

TEST(SetSolverTest, UpperPropagatesBackwards) {
  // X subseteq Y, Y subseteq {1}: X's effective upper bound is {1}.
  EXPECT_FALSE(SetSolver::Satisfiable({SC::Member(2, 0), SC::Subset(0, 1),
                                       SC::UpperBound(1, ElementSet({1}))}));
}

TEST(SetSolverTest, CyclesForceEquality) {
  // X subseteq Y subseteq X with {1} in X and Y subseteq {2}: unsat.
  EXPECT_FALSE(SetSolver::Satisfiable(
      {SC::Subset(0, 1), SC::Subset(1, 0), SC::Member(1, 0),
       SC::UpperBound(1, ElementSet({2}))}));
}

TEST(SetSolverTest, EntailsMember) {
  SetConjunction c = {SC::LowerBound(ElementSet({1, 2}), 0)};
  EXPECT_TRUE(SetSolver::Entails(c, SC::Member(1, 0)));
  EXPECT_FALSE(SetSolver::Entails(c, SC::Member(3, 0)));
}

TEST(SetSolverTest, EntailsMemberThroughChain) {
  SetConjunction c = {SC::Member(7, 0), SC::Subset(0, 1)};
  EXPECT_TRUE(SetSolver::Entails(c, SC::Member(7, 1)));
  EXPECT_FALSE(SetSolver::Entails(c, SC::Member(8, 1)));
}

TEST(SetSolverTest, EntailsLowerBound) {
  SetConjunction c = {SC::LowerBound(ElementSet({1, 2, 3}), 0)};
  EXPECT_TRUE(SetSolver::Entails(c, SC::LowerBound(ElementSet({1, 3}), 0)));
  EXPECT_FALSE(SetSolver::Entails(c, SC::LowerBound(ElementSet({4}), 0)));
}

TEST(SetSolverTest, EntailsUpperBoundRequiresBound) {
  // Without any upper constraint X can always grow: X subseteq s never holds.
  EXPECT_FALSE(SetSolver::Entails({SC::Member(1, 0)},
                                  SC::UpperBound(0, ElementSet({1, 2, 3}))));
  SetConjunction c = {SC::UpperBound(0, ElementSet({1, 2}))};
  EXPECT_TRUE(SetSolver::Entails(c, SC::UpperBound(0, ElementSet({1, 2, 3}))));
  EXPECT_FALSE(SetSolver::Entails(c, SC::UpperBound(0, ElementSet({1}))));
}

TEST(SetSolverTest, EntailsSubsetViaPath) {
  SetConjunction c = {SC::Subset(0, 1), SC::Subset(1, 2)};
  EXPECT_TRUE(SetSolver::Entails(c, SC::Subset(0, 2)));
  EXPECT_FALSE(SetSolver::Entails(c, SC::Subset(2, 0)));
}

TEST(SetSolverTest, EntailsSubsetViaBounds) {
  // X subseteq {1,2} and {1,2,3} subseteq Y entails X subseteq Y even with
  // no subseteq path.
  SetConjunction c = {SC::UpperBound(0, ElementSet({1, 2})),
                      SC::LowerBound(ElementSet({1, 2, 3}), 1)};
  EXPECT_TRUE(SetSolver::Entails(c, SC::Subset(0, 1)));
  // But not when some permitted element of X avoids Y's forced content.
  SetConjunction c2 = {SC::UpperBound(0, ElementSet({1, 2, 9})),
                       SC::LowerBound(ElementSet({1, 2}), 1)};
  EXPECT_FALSE(SetSolver::Entails(c2, SC::Subset(0, 1)));
}

TEST(SetSolverTest, UnsatEntailsEverything) {
  SetConjunction c = {SC::Member(9, 0), SC::UpperBound(0, ElementSet({1}))};
  EXPECT_TRUE(SetSolver::Entails(c, SC::Member(12345, 7)));
}

TEST(SetSolverTest, ReflexiveSubsetAlwaysEntailed) {
  EXPECT_TRUE(SetSolver::Entails({SC::Member(1, 0)}, SC::Subset(0, 0)));
}

TEST(SetSolverTest, SolveMinimalIsLowerClosure) {
  SetConjunction c = {SC::LowerBound(ElementSet({1}), 0), SC::Subset(0, 1),
                      SC::Member(5, 1)};
  auto solution = SetSolver::SolveMinimal(c);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->at(0), ElementSet({1}));
  EXPECT_EQ(solution->at(1), ElementSet({1, 5}));
}

TEST(SetSolverTest, SolveMinimalUnsat) {
  SetConjunction c = {SC::Member(9, 0), SC::UpperBound(0, ElementSet({1}))};
  EXPECT_TRUE(SetSolver::SolveMinimal(c).status().IsNotFound());
}

TEST(SetSolverTest, EliminationBasic) {
  // exists X: {1} subseteq X and X subseteq Y  ==>  {1} subseteq Y.
  SetConjunction c = {SC::LowerBound(ElementSet({1}), 0), SC::Subset(0, 1)};
  auto e = SetSolver::EliminateVariable(c, 0);
  EXPECT_TRUE(e.satisfiable);
  ASSERT_EQ(e.conjunction.size(), 1u);
  EXPECT_EQ(e.conjunction[0].ToString(), "{1} subseteq X1");
}

TEST(SetSolverTest, EliminationDetectsGroundContradiction) {
  SetConjunction c = {SC::LowerBound(ElementSet({5}), 0),
                      SC::UpperBound(0, ElementSet({1}))};
  auto e = SetSolver::EliminateVariable(c, 0);
  EXPECT_FALSE(e.satisfiable);
}

TEST(SetSolverTest, EliminationBridgesSubsets) {
  // Z subseteq X subseteq Y  ==>  Z subseteq Y.
  SetConjunction c = {SC::Subset(2, 0), SC::Subset(0, 1)};
  auto e = SetSolver::EliminateVariable(c, 0);
  EXPECT_TRUE(e.satisfiable);
  ASSERT_EQ(e.conjunction.size(), 1u);
  EXPECT_EQ(e.conjunction[0].ToString(), "X2 subseteq X1");
}

// Property: elimination preserves satisfiability, and the minimal solution
// of the eliminated conjunction extends to the original.
class SetSolverPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SetConjunction RandomConjunction(Rng* rng) {
    SetConjunction c;
    size_t n = 1 + rng->UniformU64(8);
    for (size_t i = 0; i < n; ++i) {
      int var = static_cast<int>(rng->UniformU64(4));
      switch (rng->UniformU64(4)) {
        case 0:
          c.push_back(SC::Member(static_cast<Element>(rng->UniformU64(6)), var));
          break;
        case 1:
          c.push_back(SC::LowerBound(RandomElements(rng), var));
          break;
        case 2:
          c.push_back(SC::UpperBound(var, RandomElements(rng)));
          break;
        default:
          c.push_back(SC::Subset(var, static_cast<int>(rng->UniformU64(4))));
      }
    }
    return c;
  }
  ElementSet RandomElements(Rng* rng) {
    std::vector<Element> e;
    size_t n = rng->UniformU64(4);
    for (size_t i = 0; i < n; ++i) {
      e.push_back(static_cast<Element>(rng->UniformU64(6)));
    }
    return ElementSet(std::move(e));
  }
};

TEST_P(SetSolverPropertyTest, MinimalSolutionSatisfiesEverything) {
  Rng rng(GetParam());
  SetConjunction c = RandomConjunction(&rng);
  auto solution = SetSolver::SolveMinimal(c);
  EXPECT_EQ(solution.ok(), SetSolver::Satisfiable(c));
  if (!solution.ok()) return;
  auto value = [&](int var) {
    auto it = solution->find(var);
    return it == solution->end() ? ElementSet() : it->second;
  };
  for (const SC& atom : c) {
    switch (atom.kind) {
      case SC::Kind::kMember:
        EXPECT_TRUE(value(atom.var).Contains(atom.element)) << atom.ToString();
        break;
      case SC::Kind::kLowerBound:
        EXPECT_TRUE(atom.set.SubsetOf(value(atom.var))) << atom.ToString();
        break;
      case SC::Kind::kUpperBound:
        EXPECT_TRUE(value(atom.var).SubsetOf(atom.set)) << atom.ToString();
        break;
      case SC::Kind::kSubset:
        EXPECT_TRUE(value(atom.var).SubsetOf(value(atom.var2)))
            << atom.ToString();
        break;
    }
  }
}

TEST_P(SetSolverPropertyTest, EntailedAtomsHoldInMinimalSolution) {
  Rng rng(GetParam() + 500);
  SetConjunction c = RandomConjunction(&rng);
  if (!SetSolver::Satisfiable(c)) return;
  auto solution = SetSolver::SolveMinimal(c);
  ASSERT_TRUE(solution.ok());
  // Any atom the solver claims entailed must hold in the minimal solution
  // (soundness spot-check against one concrete model).
  for (int var = 0; var < 4; ++var) {
    for (Element e = 0; e < 6; ++e) {
      if (SetSolver::Entails(c, SC::Member(e, var))) {
        auto it = solution->find(var);
        ASSERT_NE(it, solution->end());
        EXPECT_TRUE(it->second.Contains(e));
      }
    }
  }
}

TEST_P(SetSolverPropertyTest, EliminationPreservesSatisfiability) {
  Rng rng(GetParam() + 900);
  SetConjunction c = RandomConjunction(&rng);
  auto e = SetSolver::EliminateVariable(c, 0);
  bool original = SetSolver::Satisfiable(c);
  bool eliminated = e.satisfiable && SetSolver::Satisfiable(e.conjunction);
  EXPECT_EQ(original, eliminated) << ToString(c);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetSolverPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace vqldb
