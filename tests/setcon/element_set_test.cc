#include <gtest/gtest.h>

#include "src/setcon/set_constraint.h"

namespace vqldb {
namespace {

TEST(ElementSetTest, CanonicalizesInput) {
  ElementSet s({3, 1, 2, 3, 1});
  EXPECT_EQ(s.elements(), (std::vector<Element>{1, 2, 3}));
  EXPECT_EQ(s.size(), 3u);
}

TEST(ElementSetTest, EmptySet) {
  ElementSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Contains(0));
  EXPECT_EQ(s.ToString(), "{}");
}

TEST(ElementSetTest, Contains) {
  ElementSet s({1, 5, 9});
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
}

TEST(ElementSetTest, SubsetOf) {
  EXPECT_TRUE(ElementSet({1, 2}).SubsetOf(ElementSet({1, 2, 3})));
  EXPECT_FALSE(ElementSet({1, 4}).SubsetOf(ElementSet({1, 2, 3})));
  EXPECT_TRUE(ElementSet().SubsetOf(ElementSet({1})));
  EXPECT_TRUE(ElementSet({1}).SubsetOf(ElementSet({1})));
}

TEST(ElementSetTest, UnionIntersectDifference) {
  ElementSet a({1, 2, 3});
  ElementSet b({3, 4});
  EXPECT_EQ(a.Union(b), ElementSet({1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), ElementSet({3}));
  EXPECT_EQ(a.Difference(b), ElementSet({1, 2}));
}

TEST(ElementSetTest, InsertKeepsSorted) {
  ElementSet s({5});
  s.Insert(2);
  s.Insert(9);
  s.Insert(2);  // duplicate
  EXPECT_EQ(s.elements(), (std::vector<Element>{2, 5, 9}));
}

TEST(ElementSetTest, ToString) {
  EXPECT_EQ(ElementSet({2, 1}).ToString(), "{1, 2}");
}

TEST(SetConstraintTest, FactoriesAndToString) {
  EXPECT_EQ(SetConstraint::Member(7, 0).ToString(), "7 in X0");
  EXPECT_EQ(SetConstraint::UpperBound(1, ElementSet({1, 2})).ToString(),
            "X1 subseteq {1, 2}");
  EXPECT_EQ(SetConstraint::LowerBound(ElementSet({3}), 2).ToString(),
            "{3} subseteq X2");
  EXPECT_EQ(SetConstraint::Subset(0, 1).ToString(), "X0 subseteq X1");
}

TEST(SetConstraintTest, ConjunctionToString) {
  SetConjunction c = {SetConstraint::Member(1, 0), SetConstraint::Subset(0, 1)};
  EXPECT_EQ(ToString(c), "1 in X0 and X0 subseteq X1");
  EXPECT_EQ(ToString(SetConjunction{}), "true");
}

TEST(ElementTableTest, InternAndLookup) {
  ElementTable table;
  Element a = table.Intern("o1");
  Element b = table.Intern("o2");
  Element a2 = table.Intern("o1");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Lookup(a), "o1");
  EXPECT_EQ(table.Lookup(b), "o2");
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Lookup(999), "?999");
}

}  // namespace
}  // namespace vqldb
