#include "src/model/value.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace vqldb {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, ScalarKindsAndAccessors) {
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int(-7).int_value(), -7);
  EXPECT_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_EQ(Value::Oid(ObjectId{9}).oid_value(), (ObjectId{9}));
}

TEST(ValueTest, ToStringSurfaceSyntax) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Double(3.5).ToString(), "3.5");
  EXPECT_EQ(Value::String("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Oid(ObjectId{3}).ToString(), "id3");
  EXPECT_EQ(Value::Set({Value::Int(2), Value::Int(1)}).ToString(), "{1, 2}");
}

TEST(ValueTest, TemporalToStringIsConstraintSyntax) {
  Value v = Value::Temporal(IntervalSet({TimeInterval::Open(0, 10)}));
  EXPECT_EQ(v.ToString(), "(t > 0 and t < 10)");
}

TEST(ValueTest, SetsAreCanonical) {
  Value a = Value::Set({Value::Int(2), Value::Int(1), Value::Int(2)});
  Value b = Value::Set({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.set_elements().size(), 2u);
}

TEST(ValueTest, NumericCrossKindEquality) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
  EXPECT_NE(Value::Int(2), Value::Double(2.5));
}

TEST(ValueTest, CompareOrdersWithinKind) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_LT(Value::Oid(ObjectId{1}), Value::Oid(ObjectId{2}));
  EXPECT_LT(Value::Bool(false), Value::Bool(true));
}

TEST(ValueTest, CompareOrdersAcrossKindsByRank) {
  EXPECT_LT(Value(), Value::Bool(false));          // null < bool
  EXPECT_LT(Value::Bool(true), Value::Int(0));     // bool < numeric
  EXPECT_LT(Value::Int(999), Value::String(""));   // numeric < string
  EXPECT_LT(Value::String("z"), Value::Oid(ObjectId{1}));
  EXPECT_LT(Value::Oid(ObjectId{99}),
            Value::Temporal(IntervalSet::Empty()));
  EXPECT_LT(Value::Temporal(IntervalSet::All()), Value::EmptySet());
}

TEST(ValueTest, SetComparisonLexicographic) {
  Value a = Value::Set({Value::Int(1)});
  Value b = Value::Set({Value::Int(1), Value::Int(2)});
  EXPECT_LT(a, b);  // prefix is smaller
  EXPECT_LT(Value::Set({Value::Int(0), Value::Int(9)}), b);
}

TEST(ValueTest, AsDouble) {
  EXPECT_EQ(*Value::Int(3).AsDouble(), 3.0);
  EXPECT_EQ(*Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_TRUE(Value::String("x").AsDouble().status().IsTypeError());
}

TEST(ValueTest, SetContains) {
  Value s = Value::Set({Value::Int(1), Value::String("x")});
  EXPECT_TRUE(*s.SetContains(Value::Int(1)));
  EXPECT_TRUE(*s.SetContains(Value::Double(1.0)));  // numeric cross-kind
  EXPECT_FALSE(*s.SetContains(Value::Int(2)));
  EXPECT_TRUE(Value::Int(1).SetContains(Value::Int(1)).status().IsTypeError());
}

TEST(ValueTest, SetSubsetOf) {
  Value small = Value::Set({Value::Int(1)});
  Value big = Value::Set({Value::Int(1), Value::Int(2)});
  EXPECT_TRUE(*small.SetSubsetOf(big));
  EXPECT_FALSE(*big.SetSubsetOf(small));
  EXPECT_TRUE(*Value::EmptySet().SetSubsetOf(small));
  EXPECT_TRUE(small.SetSubsetOf(Value::Int(1)).status().IsTypeError());
}

TEST(ValueTest, HashConsistentWithEquality) {
  Value a = Value::Set({Value::Int(1), Value::String("x")});
  Value b = Value::Set({Value::String("x"), Value::Int(1)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueTest, TemporalEqualityIsSemantic) {
  Value a = Value::Temporal(IntervalSet({TimeInterval::Closed(0, 5),
                                         TimeInterval::Closed(3, 9)}));
  Value b = Value::Temporal(IntervalSet({TimeInterval::Closed(0, 9)}));
  EXPECT_EQ(a, b);  // both normalize to [0,9]
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueTest, UnionWithNull) {
  Value v = Value::Int(1);
  EXPECT_EQ(Value::UnionWith(Value(), v), v);
  EXPECT_EQ(Value::UnionWith(v, Value()), v);
}

TEST(ValueTest, UnionWithEqualCollapses) {
  Value v = Value::String("x");
  EXPECT_EQ(Value::UnionWith(v, v), v);
  EXPECT_TRUE(Value::UnionWith(v, v).is_string());  // not lifted to a set
}

TEST(ValueTest, UnionWithDistinctAtomsLiftsToSet) {
  Value u = Value::UnionWith(Value::Int(1), Value::Int(2));
  EXPECT_TRUE(u.is_set());
  EXPECT_EQ(u, Value::Set({Value::Int(1), Value::Int(2)}));
}

TEST(ValueTest, UnionWithSetsUnites) {
  Value a = Value::Set({Value::Int(1), Value::Int(2)});
  Value b = Value::Set({Value::Int(2), Value::Int(3)});
  EXPECT_EQ(Value::UnionWith(a, b),
            Value::Set({Value::Int(1), Value::Int(2), Value::Int(3)}));
}

TEST(ValueTest, UnionWithSetAndAtom) {
  Value a = Value::Set({Value::Int(1)});
  EXPECT_EQ(Value::UnionWith(a, Value::Int(5)),
            Value::Set({Value::Int(1), Value::Int(5)}));
  EXPECT_EQ(Value::UnionWith(Value::Int(5), a),
            Value::Set({Value::Int(1), Value::Int(5)}));
}

TEST(ValueTest, UnionWithTemporalsIsPointwise) {
  Value a = Value::Temporal(IntervalSet({TimeInterval::Closed(0, 2)}));
  Value b = Value::Temporal(IntervalSet({TimeInterval::Closed(5, 7)}));
  Value u = Value::UnionWith(a, b);
  ASSERT_TRUE(u.is_temporal());
  EXPECT_EQ(u.temporal_value().fragment_count(), 2u);
}

TEST(ValueTest, UnionIsIdempotentAndCommutative) {
  Rng rng(3);
  std::vector<Value> pool = {
      Value::Int(1), Value::String("a"),
      Value::Set({Value::Int(1), Value::Int(2)}),
      Value::Temporal(IntervalSet({TimeInterval::Closed(0, 1)})),
      Value::Bool(true)};
  for (const Value& a : pool) {
    EXPECT_EQ(Value::UnionWith(a, a), a) << a.ToString();
    for (const Value& b : pool) {
      EXPECT_EQ(Value::UnionWith(a, b), Value::UnionWith(b, a));
    }
  }
}

TEST(ValueTest, CompareIsTotalOrderOnSamples) {
  std::vector<Value> pool = {
      Value(), Value::Bool(false), Value::Bool(true), Value::Int(-1),
      Value::Int(3), Value::Double(2.5), Value::String("a"),
      Value::String("b"), Value::Oid(ObjectId{1}),
      Value::Temporal(IntervalSet({TimeInterval::Closed(0, 1)})),
      Value::EmptySet(), Value::Set({Value::Int(9)})};
  for (const Value& a : pool) {
    EXPECT_EQ(a.Compare(a), 0);
    for (const Value& b : pool) {
      EXPECT_EQ(a.Compare(b), -b.Compare(a));
      for (const Value& c : pool) {
        if (a.Compare(b) < 0 && b.Compare(c) < 0) {
          EXPECT_LT(a.Compare(c), 0);
        }
      }
    }
  }
}

}  // namespace
}  // namespace vqldb
