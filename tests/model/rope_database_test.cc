// EX-1: the paper's Section 5.2 worked example — "The Rope" by Alfred
// Hitchcock — built verbatim through the model API, then checked against
// every statement of the database extract.

#include <gtest/gtest.h>

#include "src/model/database.h"

namespace vqldb {
namespace {

class RopeDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Entities o1..o9 with the paper's attributes.
    auto entity = [&](const char* symbol,
                      std::initializer_list<std::pair<const char*, const char*>>
                          attrs) {
      ObjectId id = *db_.CreateEntity(symbol);
      for (const auto& [k, v] : attrs) {
        ASSERT_TRUE(db_.SetAttribute(id, k, Value::String(v)).ok());
      }
    };
    entity("o1", {{"name", "David"}, {"role", "Victim"}});
    entity("o2", {{"name", "Philip"},
                  {"realname", "Farley Granger"},
                  {"role", "Murderer"}});
    entity("o3", {{"name", "Brandon"},
                  {"realname", "John Dall"},
                  {"role", "Murderer"}});
    entity("o4", {{"identification", "Chest"}});
    entity("o5", {{"name", "Janet"}, {"realname", "Joan Chandler"}});
    entity("o6", {{"name", "Kenneth"}, {"realname", "Douglas Dick"}});
    entity("o7", {{"name", "Mr.Kentley"}, {"realname", "Cedric Hardwicke"}});
    entity("o8", {{"name", "Mrs.Atwater"}, {"realname", "Constance Collier"}});
    entity("o9", {{"name", "Rupert Cadell"}, {"realname", "James Stewart"}});

    // gi1: the crime, duration t > a1 and t < b1 with a1=0, b1=10.
    gi1_ = *db_.CreateInterval("gi1", IntervalSet({TimeInterval::Open(0, 10)}));
    ASSERT_TRUE(db_.SetAttribute(gi1_, "subject", Value::String("murder")).ok());
    for (const char* s : {"o1", "o2", "o3", "o4"}) {
      ASSERT_TRUE(db_.AddEntityToInterval(gi1_, *db_.Resolve(s)).ok());
    }
    ASSERT_TRUE(
        db_.SetAttribute(gi1_, "victim", Value::Oid(*db_.Resolve("o1"))).ok());
    ASSERT_TRUE(db_.SetAttribute(gi1_, "murderer",
                                 Value::Set({Value::Oid(*db_.Resolve("o2")),
                                             Value::Oid(*db_.Resolve("o3"))}))
                    .ok());

    // gi2: the party, duration t > a2 and t < b2 with a2=15, b2=40
    // (a1 < b1 < a2 < b2 as the paper requires).
    gi2_ = *db_.CreateInterval("gi2", IntervalSet({TimeInterval::Open(15, 40)}));
    ASSERT_TRUE(
        db_.SetAttribute(gi2_, "subject", Value::String("Giving a party")).ok());
    for (const char* s :
         {"o1", "o2", "o3", "o4", "o5", "o6", "o7", "o8", "o9"}) {
      ASSERT_TRUE(db_.AddEntityToInterval(gi2_, *db_.Resolve(s)).ok());
    }
    ASSERT_TRUE(db_.SetAttribute(gi2_, "host",
                                 Value::Set({Value::Oid(*db_.Resolve("o2")),
                                             Value::Oid(*db_.Resolve("o3"))}))
                    .ok());
    ASSERT_TRUE(db_.SetAttribute(gi2_, "guest",
                                 Value::Set({Value::Oid(*db_.Resolve("o5")),
                                             Value::Oid(*db_.Resolve("o6")),
                                             Value::Oid(*db_.Resolve("o7")),
                                             Value::Oid(*db_.Resolve("o8")),
                                             Value::Oid(*db_.Resolve("o9"))}))
                    .ok());

    // in(o1, o4, gi1) and in(o1, o4, gi2): David is in the chest.
    for (ObjectId gi : {gi1_, gi2_}) {
      ASSERT_TRUE(db_.AssertFact("in", {Value::Oid(*db_.Resolve("o1")),
                                        Value::Oid(*db_.Resolve("o4")),
                                        Value::Oid(gi)})
                      .ok());
    }
  }

  VideoDatabase db_;
  ObjectId gi1_, gi2_;
};

TEST_F(RopeDatabaseTest, SevenTupleShape) {
  EXPECT_EQ(db_.Entities().size(), 9u);        // O
  EXPECT_EQ(db_.BaseIntervals().size(), 2u);   // I
  EXPECT_EQ(db_.fact_count(), 2u);             // R
  EXPECT_TRUE(db_.Validate().ok());
}

TEST_F(RopeDatabaseTest, Lambda1OfGi1) {
  auto entities = db_.EntitiesOf(gi1_);
  ASSERT_TRUE(entities.ok());
  EXPECT_EQ(entities->size(), 4u);
}

TEST_F(RopeDatabaseTest, Lambda1OfGi2) {
  EXPECT_EQ(db_.EntitiesOf(gi2_)->size(), 9u);
}

TEST_F(RopeDatabaseTest, Lambda2DurationsAreOpenIntervals) {
  IntervalSet d1 = *db_.DurationOf(gi1_);
  EXPECT_FALSE(d1.Contains(0));   // strict bound t > a1
  EXPECT_TRUE(d1.Contains(5));
  EXPECT_FALSE(d1.Contains(10));  // strict bound t < b1
  IntervalSet d2 = *db_.DurationOf(gi2_);
  EXPECT_TRUE(d2.Contains(20));
  // a1 < b1 < a2 < b2: the two scenes are disjoint in time.
  EXPECT_TRUE(d1.Intersect(d2).IsEmpty());
}

TEST_F(RopeDatabaseTest, RoleFillersMatchPaper) {
  EXPECT_EQ(db_.GetAttribute(*db_.Resolve("o1"), "role")->string_value(),
            "Victim");
  EXPECT_EQ(db_.GetAttribute(*db_.Resolve("o2"), "role")->string_value(),
            "Murderer");
  EXPECT_EQ(db_.GetAttribute(*db_.Resolve("o3"), "role")->string_value(),
            "Murderer");
}

TEST_F(RopeDatabaseTest, MultiValuedAttributes) {
  // host and murderer are set-valued, as in [1]'s give-party example.
  Value murderer = *db_.GetAttribute(gi1_, "murderer");
  ASSERT_TRUE(murderer.is_set());
  EXPECT_TRUE(*murderer.SetContains(Value::Oid(*db_.Resolve("o2"))));
  EXPECT_TRUE(*murderer.SetContains(Value::Oid(*db_.Resolve("o3"))));
  Value guest = *db_.GetAttribute(gi2_, "guest");
  EXPECT_EQ(guest.set_elements().size(), 5u);
}

TEST_F(RopeDatabaseTest, InRelationHoldsInBothScenes) {
  ObjectId o1 = *db_.Resolve("o1");
  ObjectId o4 = *db_.Resolve("o4");
  EXPECT_TRUE(db_.HasFact(
      Fact{"in", {Value::Oid(o1), Value::Oid(o4), Value::Oid(gi1_)}}));
  EXPECT_TRUE(db_.HasFact(
      Fact{"in", {Value::Oid(o1), Value::Oid(o4), Value::Oid(gi2_)}}));
  EXPECT_EQ(db_.FactsFor("in").size(), 2u);
}

TEST_F(RopeDatabaseTest, AttributeIndexFindsMurderers) {
  auto murderers = db_.FindByAttribute("role", Value::String("Murderer"));
  EXPECT_EQ(murderers.size(), 2u);
}

TEST_F(RopeDatabaseTest, TemporalIndexSeparatesScenes) {
  EXPECT_EQ(db_.IntervalsContaining(5), (std::vector<ObjectId>{gi1_}));
  EXPECT_EQ(db_.IntervalsContaining(20), (std::vector<ObjectId>{gi2_}));
  EXPECT_TRUE(db_.IntervalsContaining(12).empty());
}

TEST_F(RopeDatabaseTest, InvertedIndexTracesDavid) {
  ObjectId o1 = *db_.Resolve("o1");
  EXPECT_EQ(db_.IntervalsWithEntity(o1).size(), 2u);
  ObjectId o9 = *db_.Resolve("o9");
  EXPECT_EQ(db_.IntervalsWithEntity(o9), (std::vector<ObjectId>{gi2_}));
}

TEST_F(RopeDatabaseTest, ConcatenationOfScenesIsWholeCrimeArc) {
  ObjectId arc = *db_.Concatenate(gi1_, gi2_);
  IntervalSet duration = *db_.DurationOf(arc);
  EXPECT_TRUE(duration.Contains(5));
  EXPECT_TRUE(duration.Contains(20));
  EXPECT_FALSE(duration.Contains(12));
  EXPECT_EQ(db_.EntitiesOf(arc)->size(), 9u);
  // subject becomes the set of both subjects.
  Value subject = *db_.GetAttribute(arc, "subject");
  EXPECT_EQ(subject, Value::Set({Value::String("Giving a party"),
                                 Value::String("murder")}));
}

}  // namespace
}  // namespace vqldb
