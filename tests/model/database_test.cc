#include "src/model/database.h"

#include <gtest/gtest.h>

namespace vqldb {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  VideoDatabase db_;

  ObjectId Entity(const std::string& symbol) {
    auto r = db_.CreateEntity(symbol);
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  }
  ObjectId Interval(const std::string& symbol, double begin, double end) {
    auto r = db_.CreateInterval(symbol, GeneralizedInterval::Single(begin, end));
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  }
};

TEST_F(DatabaseTest, CreateEntityAndKind) {
  ObjectId o = Entity("o1");
  EXPECT_TRUE(db_.Exists(o));
  EXPECT_TRUE(db_.IsEntity(o));
  EXPECT_FALSE(db_.IsInterval(o));
  EXPECT_EQ(*db_.KindOf(o), ObjectKind::kEntity);
}

TEST_F(DatabaseTest, CreateIntervalHasDurationAndEntities) {
  ObjectId gi = Interval("gi1", 0, 10);
  EXPECT_TRUE(db_.IsInterval(gi));
  auto duration = db_.DurationOf(gi);
  ASSERT_TRUE(duration.ok());
  EXPECT_TRUE(duration->Contains(5));
  auto entities = db_.EntitiesOf(gi);
  ASSERT_TRUE(entities.ok());
  EXPECT_TRUE(entities->empty());
}

TEST_F(DatabaseTest, SymbolResolution) {
  ObjectId o = Entity("o1");
  EXPECT_EQ(*db_.Resolve("o1"), o);
  EXPECT_TRUE(db_.Resolve("nope").status().IsNotFound());
  EXPECT_EQ(*db_.SymbolOf(o), "o1");
  EXPECT_EQ(db_.DisplayName(o), "o1");
}

TEST_F(DatabaseTest, DuplicateSymbolRejected) {
  Entity("o1");
  EXPECT_TRUE(db_.CreateEntity("o1").status().IsAlreadyExists());
}

TEST_F(DatabaseTest, BindAnonymousObject) {
  auto r = db_.CreateEntity("");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(db_.SymbolOf(*r), nullptr);
  EXPECT_EQ(db_.DisplayName(*r), r->ToString());
  ASSERT_TRUE(db_.Bind("late", *r).ok());
  EXPECT_EQ(*db_.Resolve("late"), *r);
  EXPECT_TRUE(db_.Bind("late2", *r).IsAlreadyExists());
}

TEST_F(DatabaseTest, KindOfUnknownIsNotFound) {
  EXPECT_TRUE(db_.KindOf(ObjectId{999}).status().IsNotFound());
  EXPECT_TRUE(db_.GetObject(ObjectId{999}).status().IsNotFound());
}

TEST_F(DatabaseTest, Lambda1ViaEntitiesAttribute) {
  ObjectId o1 = Entity("o1");
  ObjectId o2 = Entity("o2");
  ObjectId gi = Interval("gi1", 0, 10);
  ASSERT_TRUE(db_.AddEntityToInterval(gi, o1).ok());
  ASSERT_TRUE(db_.AddEntityToInterval(gi, o2).ok());
  ASSERT_TRUE(db_.AddEntityToInterval(gi, o1).ok());  // idempotent (set)
  auto entities = db_.EntitiesOf(gi);
  ASSERT_TRUE(entities.ok());
  EXPECT_EQ(entities->size(), 2u);
}

TEST_F(DatabaseTest, EntitiesAttributeValidated) {
  ObjectId gi = Interval("gi1", 0, 10);
  // Non-set rejected.
  EXPECT_TRUE(db_.SetAttribute(gi, kAttrEntities, Value::Int(1)).IsTypeError());
  // Set of non-entity oids rejected.
  EXPECT_TRUE(db_.SetAttribute(gi, kAttrEntities,
                               Value::Set({Value::Oid(ObjectId{777})}))
                  .IsInvalidArgument());
  // Interval oid inside entities rejected.
  ObjectId gi2 = Interval("gi2", 0, 1);
  EXPECT_TRUE(db_.SetAttribute(gi, kAttrEntities,
                               Value::Set({Value::Oid(gi2)}))
                  .IsInvalidArgument());
}

TEST_F(DatabaseTest, DurationMustStayTemporal) {
  ObjectId gi = Interval("gi1", 0, 10);
  EXPECT_TRUE(
      db_.SetAttribute(gi, kAttrDuration, Value::Int(3)).IsTypeError());
  // Entities may carry arbitrary other attributes.
  EXPECT_TRUE(db_.SetAttribute(gi, "subject", Value::String("murder")).ok());
}

TEST_F(DatabaseTest, FactsAssertAndDedup) {
  ObjectId o1 = Entity("o1");
  ObjectId gi = Interval("gi1", 0, 5);
  ASSERT_TRUE(db_.AssertFact("in", {Value::Oid(o1), Value::Oid(gi)}).ok());
  ASSERT_TRUE(db_.AssertFact("in", {Value::Oid(o1), Value::Oid(gi)}).ok());
  EXPECT_EQ(db_.fact_count(), 1u);
  EXPECT_EQ(db_.FactsFor("in").size(), 1u);
  EXPECT_TRUE(db_.HasFact(Fact{"in", {Value::Oid(o1), Value::Oid(gi)}}));
}

TEST_F(DatabaseTest, FactValidation) {
  EXPECT_TRUE(db_.AssertFact("", {}).IsInvalidArgument());
  EXPECT_TRUE(
      db_.AssertFact("r", {Value::Oid(ObjectId{42})}).IsInvalidArgument());
  EXPECT_TRUE(db_.AssertFact("r", {Value()}).IsInvalidArgument());
}

TEST_F(DatabaseTest, FactArityConsistencyEnforced) {
  ASSERT_TRUE(db_.AssertFact("r", {Value::Int(1)}).ok());
  EXPECT_TRUE(
      db_.AssertFact("r", {Value::Int(1), Value::Int(2)}).IsInvalidArgument());
}

TEST_F(DatabaseTest, RelationNames) {
  ASSERT_TRUE(db_.AssertFact("b", {Value::Int(1)}).ok());
  ASSERT_TRUE(db_.AssertFact("a", {Value::Int(1)}).ok());
  EXPECT_EQ(db_.RelationNames(), (std::vector<std::string>{"a", "b"}));
}

TEST_F(DatabaseTest, ConcatenateCreatesDerivedInterval) {
  ObjectId a = Interval("a", 0, 5);
  ObjectId b = Interval("b", 20, 30);
  auto c = db_.Concatenate(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*db_.KindOf(*c), ObjectKind::kDerivedInterval);
  auto duration = db_.DurationOf(*c);
  ASSERT_TRUE(duration.ok());
  EXPECT_TRUE(duration->Contains(3));
  EXPECT_TRUE(duration->Contains(25));
  EXPECT_FALSE(duration->Contains(10));
}

TEST_F(DatabaseTest, ConcatenateIdempotentOnIds) {
  // Section 6.1: I (+) I == I, and f(id1, id2) is canonical in the
  // constituent set.
  ObjectId a = Interval("a", 0, 5);
  ObjectId b = Interval("b", 20, 30);
  EXPECT_EQ(*db_.Concatenate(a, a), a);
  ObjectId ab = *db_.Concatenate(a, b);
  EXPECT_EQ(*db_.Concatenate(b, a), ab);   // commutative ids
  EXPECT_EQ(*db_.Concatenate(ab, a), ab);  // absorption
  EXPECT_EQ(*db_.Concatenate(ab, ab), ab);
  EXPECT_EQ(db_.derived_interval_count(), 1u);
}

TEST_F(DatabaseTest, ConcatenateMergesAttributesPerPaper) {
  ObjectId o1 = Entity("o1");
  ObjectId o2 = Entity("o2");
  ObjectId a = Interval("a", 0, 5);
  ObjectId b = Interval("b", 20, 30);
  ASSERT_TRUE(db_.AddEntityToInterval(a, o1).ok());
  ASSERT_TRUE(db_.AddEntityToInterval(b, o2).ok());
  ASSERT_TRUE(db_.SetAttribute(a, "subject", Value::String("x")).ok());
  ASSERT_TRUE(db_.SetAttribute(b, "subject", Value::String("y")).ok());
  ASSERT_TRUE(db_.SetAttribute(a, "only_a", Value::Int(1)).ok());

  ObjectId ab = *db_.Concatenate(a, b);
  // entities: set union.
  auto entities = db_.EntitiesOf(ab);
  ASSERT_TRUE(entities.ok());
  EXPECT_EQ(entities->size(), 2u);
  // subject: distinct atoms lift to a set.
  auto subject = db_.GetAttribute(ab, "subject");
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(*subject, Value::Set({Value::String("x"), Value::String("y")}));
  // attr(e) = attr(e1) union attr(e2): one-sided attributes survive.
  EXPECT_EQ(db_.GetAttribute(ab, "only_a")->int_value(), 1);
}

TEST_F(DatabaseTest, ConcatenateRejectsEntities) {
  ObjectId o = Entity("o1");
  ObjectId gi = Interval("gi", 0, 1);
  EXPECT_TRUE(db_.Concatenate(o, gi).status().IsInvalidArgument());
}

TEST_F(DatabaseTest, BaseIdsOf) {
  ObjectId a = Interval("a", 0, 5);
  ObjectId b = Interval("b", 20, 30);
  ObjectId c = Interval("c", 50, 60);
  ObjectId ab = *db_.Concatenate(a, b);
  ObjectId abc = *db_.Concatenate(ab, c);
  EXPECT_EQ(*db_.BaseIdsOf(a), (std::vector<ObjectId>{a}));
  EXPECT_EQ(*db_.BaseIdsOf(abc), (std::vector<ObjectId>{a, b, c}));
  EXPECT_TRUE(db_.BaseIdsOf(Entity("e")).status().IsNotFound());
}

TEST_F(DatabaseTest, FindByAttribute) {
  ObjectId o1 = Entity("o1");
  ObjectId o2 = Entity("o2");
  ASSERT_TRUE(db_.SetAttribute(o1, "role", Value::String("Murderer")).ok());
  ASSERT_TRUE(db_.SetAttribute(o2, "role", Value::String("Murderer")).ok());
  auto found = db_.FindByAttribute("role", Value::String("Murderer"));
  EXPECT_EQ(found.size(), 2u);
  EXPECT_TRUE(db_.FindByAttribute("role", Value::String("Victim")).empty());
  // Overwrites move index entries.
  ASSERT_TRUE(db_.SetAttribute(o1, "role", Value::String("Victim")).ok());
  EXPECT_EQ(db_.FindByAttribute("role", Value::String("Murderer")).size(), 1u);
  EXPECT_EQ(db_.FindByAttribute("role", Value::String("Victim")).size(), 1u);
}

TEST_F(DatabaseTest, IntervalsContaining) {
  ObjectId a = Interval("a", 0, 10);
  ObjectId b = Interval("b", 5, 15);
  Interval("c", 20, 30);
  auto hits = db_.IntervalsContaining(7);
  EXPECT_EQ(hits, (std::vector<ObjectId>{a, b}));
  EXPECT_TRUE(db_.IntervalsContaining(17).empty());
}

TEST_F(DatabaseTest, IntervalsContainingRespectsOpenBounds) {
  auto gi = db_.CreateInterval(
      "open", IntervalSet({TimeInterval::Open(0, 10)}));
  ASSERT_TRUE(gi.ok());
  EXPECT_TRUE(db_.IntervalsContaining(0).empty());
  EXPECT_EQ(db_.IntervalsContaining(5).size(), 1u);
}

TEST_F(DatabaseTest, IntervalsOverlapping) {
  ObjectId a = Interval("a", 0, 10);
  Interval("b", 20, 30);
  auto hits =
      db_.IntervalsOverlapping(IntervalSet({TimeInterval::Closed(8, 12)}));
  EXPECT_EQ(hits, (std::vector<ObjectId>{a}));
  auto both =
      db_.IntervalsOverlapping(IntervalSet({TimeInterval::Closed(9, 21)}));
  EXPECT_EQ(both.size(), 2u);
}

TEST_F(DatabaseTest, IntervalsWithEntityInvertedIndex) {
  ObjectId o1 = Entity("o1");
  ObjectId a = Interval("a", 0, 10);
  ObjectId b = Interval("b", 20, 30);
  ASSERT_TRUE(db_.AddEntityToInterval(a, o1).ok());
  ASSERT_TRUE(db_.AddEntityToInterval(b, o1).ok());
  EXPECT_EQ(db_.IntervalsWithEntity(o1), (std::vector<ObjectId>{a, b}));
  // Removing via overwrite updates the index.
  ASSERT_TRUE(db_.SetAttribute(a, kAttrEntities, Value::EmptySet()).ok());
  EXPECT_EQ(db_.IntervalsWithEntity(o1), (std::vector<ObjectId>{b}));
}

TEST_F(DatabaseTest, TemporalIndexTracksDurationUpdates) {
  ObjectId a = Interval("a", 0, 10);
  EXPECT_EQ(db_.IntervalsContaining(5).size(), 1u);
  ASSERT_TRUE(db_.SetAttribute(
                     a, kAttrDuration,
                     Value::Temporal(IntervalSet({TimeInterval::Closed(100, 110)})))
                  .ok());
  EXPECT_TRUE(db_.IntervalsContaining(5).empty());
  EXPECT_EQ(db_.IntervalsContaining(105).size(), 1u);
}

TEST_F(DatabaseTest, ValidateCleanDatabase) {
  ObjectId o1 = Entity("o1");
  ObjectId gi = Interval("gi1", 0, 5);
  ASSERT_TRUE(db_.AddEntityToInterval(gi, o1).ok());
  ASSERT_TRUE(db_.Concatenate(gi, gi).ok());
  EXPECT_TRUE(db_.Validate().ok());
}

TEST_F(DatabaseTest, StatsCounts) {
  Entity("o1");
  Entity("o2");
  ObjectId a = Interval("a", 0, 5);
  ObjectId b = Interval("b", 6, 9);
  ASSERT_TRUE(db_.Concatenate(a, b).ok());
  ASSERT_TRUE(db_.AssertFact("r", {Value::Int(1)}).ok());
  VideoDatabase::Stats s = db_.GetStats();
  EXPECT_EQ(s.entity_count, 2u);
  EXPECT_EQ(s.base_interval_count, 2u);
  EXPECT_EQ(s.derived_interval_count, 1u);
  EXPECT_EQ(s.fact_count, 1u);
  EXPECT_EQ(s.relation_count, 1u);
}

TEST_F(DatabaseTest, AllIntervalsIncludesDerived) {
  ObjectId a = Interval("a", 0, 5);
  ObjectId b = Interval("b", 6, 9);
  ObjectId ab = *db_.Concatenate(a, b);
  auto all = db_.AllIntervals();
  EXPECT_EQ(all.size(), 3u);
  EXPECT_NE(std::find(all.begin(), all.end(), ab), all.end());
}

TEST_F(DatabaseTest, TemporalIndexRebuildsOncePerMutationBurst) {
  ObjectId a = Interval("a", 0, 5);
  Interval("b", 6, 9);
  // First temporal query after the mutations: exactly one rebuild.
  db_.IntervalsContaining(1.0);
  EXPECT_EQ(db_.temporal_index_rebuilds(), 1u);
  // Read-only query burst: the dirty-flag fast path, zero further rebuilds.
  for (int i = 0; i < 25; ++i) {
    db_.IntervalsContaining(static_cast<double>(i));
    db_.IntervalsOverlapping(GeneralizedInterval::Single(2, 3).ToIntervalSet());
  }
  EXPECT_EQ(db_.temporal_index_rebuilds(), 1u);
  // A duration mutation dirties the index again — one more rebuild, lazily.
  ASSERT_TRUE(db_.SetAttribute(a, kAttrDuration,
                               Value::Temporal(GeneralizedInterval::Single(
                                                   0, 7)
                                                   .ToIntervalSet()))
                  .ok());
  EXPECT_EQ(db_.temporal_index_rebuilds(), 1u);  // still lazy
  db_.IntervalsContaining(6.5);
  EXPECT_EQ(db_.temporal_index_rebuilds(), 2u);
}

TEST_F(DatabaseTest, TemporalIndexEmptyResultStaysClean) {
  // An interval whose duration denotes no instants yields an empty temporal
  // index; a query burst against it must still rebuild at most once (the
  // empty-index case used to defeat the fast path).
  ASSERT_TRUE(db_.CreateInterval("hollow", IntervalSet::Empty()).ok());
  db_.IntervalsContaining(1.0);
  size_t rebuilds = db_.temporal_index_rebuilds();
  for (int i = 0; i < 25; ++i) db_.IntervalsContaining(1.0);
  EXPECT_EQ(db_.temporal_index_rebuilds(), rebuilds);
}

TEST_F(DatabaseTest, TemporalQueriesOnEmptyDatabaseNeverRebuild) {
  for (int i = 0; i < 5; ++i) db_.IntervalsContaining(1.0);
  EXPECT_EQ(db_.temporal_index_rebuilds(), 0u);
}

}  // namespace
}  // namespace vqldb
