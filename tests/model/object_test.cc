#include "src/model/object.h"

#include <gtest/gtest.h>

namespace vqldb {
namespace {

TEST(VideoObjectTest, SetAndGetAttribute) {
  VideoObject o(ObjectId{3});
  ASSERT_TRUE(o.SetAttribute("name", Value::String("David")).ok());
  ASSERT_TRUE(o.SetAttribute("role", Value::String("Victim")).ok());
  EXPECT_EQ(o.GetAttribute("name")->string_value(), "David");
  EXPECT_EQ(o.attribute_count(), 2u);
}

TEST(VideoObjectTest, OverwriteKeepsSingleEntry) {
  VideoObject o(ObjectId{1});
  ASSERT_TRUE(o.SetAttribute("a", Value::Int(1)).ok());
  ASSERT_TRUE(o.SetAttribute("a", Value::Int(2)).ok());
  EXPECT_EQ(o.attribute_count(), 1u);
  EXPECT_EQ(o.GetAttribute("a")->int_value(), 2);
}

TEST(VideoObjectTest, UndefinedAttributeIsNotFound) {
  VideoObject o(ObjectId{1});
  EXPECT_EQ(o.FindAttribute("missing"), nullptr);
  EXPECT_TRUE(o.GetAttribute("missing").status().IsNotFound());
  EXPECT_FALSE(o.HasAttribute("missing"));
}

TEST(VideoObjectTest, NullValueRejected) {
  // Def. 7 remark: a defined attribute always has a value.
  VideoObject o(ObjectId{1});
  EXPECT_TRUE(o.SetAttribute("a", Value()).IsInvalidArgument());
}

TEST(VideoObjectTest, EmptyNameRejected) {
  VideoObject o(ObjectId{1});
  EXPECT_TRUE(o.SetAttribute("", Value::Int(1)).IsInvalidArgument());
}

TEST(VideoObjectTest, AttributesSortedByName) {
  VideoObject o(ObjectId{1});
  ASSERT_TRUE(o.SetAttribute("z", Value::Int(1)).ok());
  ASSERT_TRUE(o.SetAttribute("a", Value::Int(2)).ok());
  ASSERT_TRUE(o.SetAttribute("m", Value::Int(3)).ok());
  EXPECT_EQ(o.AttributeNames(),
            (std::vector<std::string>{"a", "m", "z"}));
}

TEST(VideoObjectTest, RemoveAttribute) {
  VideoObject o(ObjectId{1});
  ASSERT_TRUE(o.SetAttribute("a", Value::Int(1)).ok());
  EXPECT_TRUE(o.RemoveAttribute("a"));
  EXPECT_FALSE(o.RemoveAttribute("a"));
  EXPECT_FALSE(o.HasAttribute("a"));
}

TEST(VideoObjectTest, ToStringMatchesPaperNotation) {
  VideoObject o(ObjectId{3});
  ASSERT_TRUE(o.SetAttribute("name", Value::String("David")).ok());
  ASSERT_TRUE(o.SetAttribute("role", Value::String("Victim")).ok());
  EXPECT_EQ(o.ToString(), "(id3, [name: \"David\", role: \"Victim\"])");
}

TEST(FactTest, EqualityAndHash) {
  Fact a{"in", {Value::Oid(ObjectId{1}), Value::Oid(ObjectId{2})}};
  Fact b{"in", {Value::Oid(ObjectId{1}), Value::Oid(ObjectId{2})}};
  Fact c{"in", {Value::Oid(ObjectId{2}), Value::Oid(ObjectId{1})}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
}

TEST(FactTest, ToString) {
  Fact f{"in", {Value::Oid(ObjectId{3}), Value::String("x")}};
  EXPECT_EQ(f.ToString(), "in(id3, \"x\")");
}

}  // namespace
}  // namespace vqldb
