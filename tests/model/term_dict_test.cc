// TermDict unit tests: dense id assignment, Compare-equivalence interning,
// arena reference stability under growth, concurrent interning agreement,
// and the added-bytes amortization contract the resource governor relies on.

#include "src/model/term_dict.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/model/value.h"

namespace vqldb {
namespace {

TEST(TermDictTest, AssignsDenseIdsInInternOrder) {
  TermDict dict;
  EXPECT_EQ(dict.size(), 0u);
  TermDict::Interned a = dict.Intern(Value::String("alpha"));
  TermDict::Interned b = dict.Intern(Value::String("beta"));
  TermDict::Interned c = dict.Intern(Value::Int(7));
  EXPECT_EQ(a.id, 0u);
  EXPECT_EQ(b.id, 1u);
  EXPECT_EQ(c.id, 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(TermDictTest, ReinternReturnsSameIdAndChargesNothing) {
  TermDict dict;
  TermDict::Interned first = dict.Intern(Value::String("needle"));
  EXPECT_GT(first.added_bytes, 0u);
  TermDict::Interned again = dict.Intern(Value::String("needle"));
  EXPECT_EQ(again.id, first.id);
  EXPECT_EQ(again.added_bytes, 0u);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(TermDictTest, CompareEqualValuesShareAnId) {
  // Int(2) and Double(2.0) are Compare-equal, so id equality must be exactly
  // Value equality — the invariant that lets joins compare raw ids.
  TermDict dict;
  TermDict::Interned i = dict.Intern(Value::Int(2));
  TermDict::Interned d = dict.Intern(Value::Double(2.0));
  EXPECT_EQ(i.id, d.id);
  EXPECT_EQ(d.added_bytes, 0u);
  // The canonical value is the first-interned representative.
  EXPECT_TRUE(dict.Get(i.id).is_int());
}

TEST(TermDictTest, MissProbesDoNotInsert) {
  TermDict dict;
  EXPECT_EQ(dict.IdOf(Value::String("ghost")), kNoTermId);
  EXPECT_FALSE(dict.TryGetId(Value::String("ghost")).has_value());
  EXPECT_EQ(dict.size(), 0u);
  dict.Intern(Value::String("ghost"));
  EXPECT_EQ(dict.IdOf(Value::String("ghost")), 0u);
  ASSERT_TRUE(dict.TryGetId(Value::String("ghost")).has_value());
  EXPECT_EQ(*dict.TryGetId(Value::String("ghost")), 0u);
}

TEST(TermDictTest, GetReferencesStayValidAcrossGrowth) {
  // The arena chunks never move once published: a reference taken early must
  // survive tens of thousands of later interns (the evaluator's zero-copy
  // bindings alias these references across a whole fixpoint).
  TermDict dict;
  uint32_t id = dict.Intern(Value::String("pinned-term")).id;
  const Value& ref = dict.Get(id);
  for (int i = 0; i < 50000; ++i) {
    dict.Intern(Value::Int(i));
  }
  EXPECT_TRUE(ref.is_string());
  EXPECT_EQ(ref.string_value(), "pinned-term");
  EXPECT_EQ(&dict.Get(id), &ref);
}

TEST(TermDictTest, ApproxBytesGrowsWithPayload) {
  TermDict dict;
  size_t before = dict.ApproxBytes();
  TermDict::Interned in =
      dict.Intern(Value::String(std::string(256, 'x')));
  EXPECT_GE(dict.ApproxBytes(), before + 256);
  EXPECT_EQ(dict.ApproxBytes() - before, in.added_bytes);
}

TEST(TermDictTest, ConcurrentInterningAgreesOnIds) {
  // Eight threads intern overlapping value sets; every thread must observe
  // the same value -> id mapping, and Get must invert it.
  TermDict dict;
  constexpr int kThreads = 8;
  constexpr int kValues = 2000;
  std::vector<std::vector<uint32_t>> ids(kThreads,
                                         std::vector<uint32_t>(kValues));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dict, &ids, t] {
      for (int i = 0; i < kValues; ++i) {
        ids[static_cast<size_t>(t)][static_cast<size_t>(i)] =
            dict.Intern(Value::String("v" + std::to_string(i))).id;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[static_cast<size_t>(t)], ids[0]) << "thread " << t;
  }
  EXPECT_EQ(dict.size(), static_cast<size_t>(kValues));
  for (int i = 0; i < kValues; ++i) {
    EXPECT_EQ(dict.Get(ids[0][static_cast<size_t>(i)]).string_value(),
              "v" + std::to_string(i));
  }
}

TEST(TermDictTest, GlobalIsASingleSharedInstance) {
  TermDict& a = TermDict::Global();
  TermDict& b = TermDict::Global();
  EXPECT_EQ(&a, &b);
  uint32_t id = a.Intern(Value::String("term-dict-global-smoke")).id;
  EXPECT_EQ(b.IdOf(Value::String("term-dict-global-smoke")), id);
}

}  // namespace
}  // namespace vqldb
