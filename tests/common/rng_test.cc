#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace vqldb {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(10);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.5)) ++heads;
  }
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace vqldb
