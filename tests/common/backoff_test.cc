#include "src/common/backoff.h"

#include <gtest/gtest.h>

#include <vector>

namespace vqldb {
namespace {

TEST(BackoffTest, DeterministicUnderSeed) {
  BackoffOptions options;
  options.seed = 42;
  Backoff a(options);
  Backoff b(options);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.NextDelayMs(), b.NextDelayMs()) << "attempt " << i;
  }
}

TEST(BackoffTest, DifferentSeedsDiverge) {
  BackoffOptions a_opts;
  a_opts.seed = 1;
  BackoffOptions b_opts;
  b_opts.seed = 2;
  Backoff a(a_opts);
  Backoff b(b_opts);
  bool diverged = false;
  for (int i = 0; i < 5 && !diverged; ++i) {
    diverged = a.NextDelayMs() != b.NextDelayMs();
  }
  EXPECT_TRUE(diverged);
}

TEST(BackoffTest, ExponentialGrowthWithoutJitter) {
  BackoffOptions options;
  options.initial_ms = 10;
  options.multiplier = 2.0;
  options.jitter = 0.0;  // deterministic full delays
  options.max_ms = 1000;
  options.max_attempts = 0;
  Backoff backoff(options);
  EXPECT_EQ(backoff.NextDelayMs(), 10u);
  EXPECT_EQ(backoff.NextDelayMs(), 20u);
  EXPECT_EQ(backoff.NextDelayMs(), 40u);
  EXPECT_EQ(backoff.NextDelayMs(), 80u);
}

TEST(BackoffTest, CapsAtMax) {
  BackoffOptions options;
  options.initial_ms = 100;
  options.multiplier = 10.0;
  options.jitter = 0.0;
  options.max_ms = 250;
  options.max_attempts = 0;
  Backoff backoff(options);
  EXPECT_EQ(backoff.NextDelayMs(), 100u);
  EXPECT_EQ(backoff.NextDelayMs(), 250u);
  EXPECT_EQ(backoff.NextDelayMs(), 250u);
}

TEST(BackoffTest, JitterStaysWithinBand) {
  BackoffOptions options;
  options.initial_ms = 1000;
  options.multiplier = 1.0;  // constant base so the band is easy to check
  options.jitter = 0.5;      // delays land in [500, 1000]
  options.max_ms = 1000;
  options.max_attempts = 0;
  options.seed = 7;
  Backoff backoff(options);
  for (int i = 0; i < 100; ++i) {
    uint64_t delay = backoff.NextDelayMs();
    EXPECT_GE(delay, 500u);
    EXPECT_LE(delay, 1000u);
  }
}

TEST(BackoffTest, MaxAttemptsBoundsRetries) {
  BackoffOptions options;
  options.max_attempts = 3;
  Backoff backoff(options);
  EXPECT_TRUE(backoff.ShouldRetry());
  backoff.NextDelayMs();
  EXPECT_TRUE(backoff.ShouldRetry());
  backoff.NextDelayMs();
  EXPECT_TRUE(backoff.ShouldRetry());
  backoff.NextDelayMs();
  EXPECT_FALSE(backoff.ShouldRetry());
  EXPECT_EQ(backoff.attempts(), 3u);
}

TEST(BackoffTest, ZeroMaxAttemptsIsUnlimited) {
  BackoffOptions options;
  options.max_attempts = 0;
  Backoff backoff(options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(backoff.ShouldRetry());
    backoff.NextDelayMs();
  }
  EXPECT_TRUE(backoff.ShouldRetry());
}

TEST(BackoffTest, ResetRestartsScheduleButNotJitterStream) {
  BackoffOptions options;
  options.initial_ms = 10;
  options.multiplier = 2.0;
  options.jitter = 0.0;
  options.max_attempts = 2;
  Backoff backoff(options);
  backoff.NextDelayMs();
  backoff.NextDelayMs();
  EXPECT_FALSE(backoff.ShouldRetry());
  backoff.Reset();
  EXPECT_TRUE(backoff.ShouldRetry());
  EXPECT_EQ(backoff.attempts(), 0u);
  EXPECT_EQ(backoff.NextDelayMs(), 10u);  // schedule restarts at initial
}

TEST(BackoffTest, ClampsDegenerateOptions) {
  BackoffOptions options;
  options.multiplier = 0.25;  // clamped to 1.0
  options.jitter = 3.0;       // clamped to 1.0
  options.initial_ms = 100;
  options.max_ms = 1;  // clamped up to initial
  Backoff backoff(options);
  EXPECT_GE(backoff.options().multiplier, 1.0);
  EXPECT_LE(backoff.options().jitter, 1.0);
  EXPECT_GE(backoff.options().max_ms, backoff.options().initial_ms);
  uint64_t delay = backoff.NextDelayMs();
  EXPECT_LE(delay, 100u);  // never above the (clamped) cap
}

}  // namespace
}  // namespace vqldb
