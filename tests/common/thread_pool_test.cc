// ThreadPool: FIFO work queue semantics, WaitAll barrier, exception and
// Status propagation, graceful shutdown with tasks still pending.

#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace vqldb {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitAll();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.tasks_completed(), 100u);
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitAll();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ResultIndependentOfCompletionOrder) {
  // Each task writes into its own slot: the aggregate must be identical no
  // matter which worker ran which task, or in what order they finished.
  ThreadPool pool(8);
  std::vector<int> slots(64, 0);
  for (int round = 0; round < 10; ++round) {
    std::fill(slots.begin(), slots.end(), 0);
    for (size_t i = 0; i < slots.size(); ++i) {
      pool.Submit([&slots, i] { slots[i] = static_cast<int>(i) * 3 + 1; });
    }
    pool.WaitAll();
    for (size_t i = 0; i < slots.size(); ++i) {
      ASSERT_EQ(slots[i], static_cast<int>(i) * 3 + 1);
    }
  }
}

TEST(ThreadPoolTest, WaitAllIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitAll();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, WaitAllWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool(3);
  pool.WaitAll();
  EXPECT_EQ(pool.tasks_completed(), 0u);
}

TEST(ThreadPoolTest, ExceptionPropagatesToWaitAll) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.WaitAll(), std::runtime_error);
  // The failure neither cancels nor corrupts the other tasks.
  EXPECT_EQ(ran.load(), 20);
  // The exception is consumed: the next batch starts clean.
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.WaitAll();
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPoolTest, StatusPropagationPerTaskSlot) {
  // The engine's convention: tasks capture a Status each; the coordinator
  // inspects them after WaitAll in deterministic task order.
  ThreadPool pool(4);
  std::vector<Status> statuses(8, Status::OK());
  for (size_t i = 0; i < statuses.size(); ++i) {
    pool.Submit([&statuses, i] {
      statuses[i] = (i == 5) ? Status::EvaluationError("task 5 failed")
                             : Status::OK();
    });
  }
  pool.WaitAll();
  for (size_t i = 0; i < statuses.size(); ++i) {
    EXPECT_EQ(statuses[i].ok(), i != 5) << i;
  }
  EXPECT_TRUE(statuses[5].IsEvaluationError());
}

TEST(ThreadPoolTest, GracefulShutdownDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    // One slow worker: most of the queue is still pending when the pool is
    // destroyed. Graceful shutdown must run every queued task, not drop it.
    ThreadPool pool(1);
    pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No WaitAll: destructor handles the drain.
  }
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace vqldb
