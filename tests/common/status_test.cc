#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"

namespace vqldb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllFactoryPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::EvaluationError("x").IsEvaluationError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("missing");
  Status copy = s;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "missing");
  EXPECT_TRUE(s.IsNotFound());  // source unchanged
}

TEST(StatusTest, MoveTransfersState) {
  Status s = Status::NotFound("missing");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsNotFound());
}

TEST(StatusTest, AssignmentOverwrites) {
  Status s = Status::NotFound("a");
  s = Status::IOError("b");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "b");
  s = Status::OK();
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::IOError("disk full").WithContext("saving archive");
  EXPECT_EQ(s.message(), "saving archive: disk full");
  EXPECT_TRUE(s.IsIOError());
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    VQLDB_RETURN_NOT_OK(Status::NotFound("inner"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsNotFound());
  auto succeeds = []() -> Status {
    VQLDB_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_TRUE(succeeds().IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallback) {
  Result<int> ok = 7;
  Result<int> err = Status::NotFound("x");
  EXPECT_EQ(ok.ValueOr(-1), 7);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("boom");
    return 10;
  };
  auto outer = [&](bool fail) -> Result<int> {
    VQLDB_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 11);
  EXPECT_TRUE(outer(true).status().IsOutOfRange());
}

TEST(StatusTest, StreamOperatorPrints) {
  std::ostringstream os;
  os << Status::ParseError("line 3");
  EXPECT_EQ(os.str(), "Parse error: line 3");
}

}  // namespace
}  // namespace vqldb
