#include "src/common/string_util.h"

#include <gtest/gtest.h>

namespace vqldb {
namespace {

TEST(StringUtilTest, JoinBasic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("nosep", ','), (std::vector<std::string>{"nosep"}));
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::string s = "x,y,,z";
  EXPECT_EQ(Join(Split(s, ','), ","), s);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nabc\r "), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("interval gi1", "interval"));
  EXPECT_FALSE(StartsWith("int", "interval"));
  EXPECT_TRUE(EndsWith("archive.vql", ".vql"));
  EXPECT_FALSE(EndsWith("vql", ".vql"));
}

TEST(StringUtilTest, FormatDoubleIntegers) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-10.0), "-10");
  EXPECT_EQ(FormatDouble(0.0), "0");
}

TEST(StringUtilTest, FormatDoubleFractions) {
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
}

TEST(StringUtilTest, FormatDoubleRoundTrips) {
  for (double v : {1.0 / 3.0, 2.718281828459045, 1e-9, 123456.789}) {
    EXPECT_EQ(std::stod(FormatDouble(v)), v) << v;
  }
}

TEST(StringUtilTest, QuoteStringEscapes) {
  EXPECT_EQ(QuoteString("plain"), "\"plain\"");
  EXPECT_EQ(QuoteString("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(QuoteString("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(QuoteString("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(QuoteString("a\tb"), "\"a\\tb\"");
}

TEST(StringUtilTest, JoinMapped) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(JoinMapped(v, "+", [](int x) { return std::to_string(x * x); }),
            "1+4+9");
}

TEST(StringUtilTest, ParseNonNegativeIntAccepts) {
  int64_t v = -1;
  EXPECT_TRUE(ParseNonNegativeInt("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseNonNegativeInt("7", &v));
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(ParseNonNegativeInt("+42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseNonNegativeInt("00123", &v));
  EXPECT_EQ(v, 123);
  // INT64_MAX parses exactly.
  EXPECT_TRUE(ParseNonNegativeInt("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
}

TEST(StringUtilTest, ParseNonNegativeIntRejects) {
  int64_t v = 0;
  EXPECT_FALSE(ParseNonNegativeInt("", &v));
  EXPECT_FALSE(ParseNonNegativeInt("+", &v));
  EXPECT_FALSE(ParseNonNegativeInt("-1", &v));      // negatives are the
  EXPECT_FALSE(ParseNonNegativeInt("-0", &v));      // caller's error path
  EXPECT_FALSE(ParseNonNegativeInt("12x", &v));     // trailing garbage
  EXPECT_FALSE(ParseNonNegativeInt("x12", &v));
  EXPECT_FALSE(ParseNonNegativeInt(" 12", &v));     // no whitespace skipping
  EXPECT_FALSE(ParseNonNegativeInt("12 ", &v));
  EXPECT_FALSE(ParseNonNegativeInt("1 2", &v));
  EXPECT_FALSE(ParseNonNegativeInt("0x10", &v));    // base 10 only
  EXPECT_FALSE(ParseNonNegativeInt("1.5", &v));
  // Overflow is a parse failure, never a silent wrap (the strtol bug).
  EXPECT_FALSE(ParseNonNegativeInt("9223372036854775808", &v));
  EXPECT_FALSE(ParseNonNegativeInt("99999999999999999999", &v));
}

}  // namespace
}  // namespace vqldb
