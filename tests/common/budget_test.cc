// ResourceBudget and ExecContext: charge/limit/trip semantics, the
// parent-child hierarchy (propagated charges, dtor releases), sticky trips
// with explicit recovery, deterministic fault injection, and the
// thread-local solver polling surface.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/common/budget.h"
#include "src/common/cancel.h"

namespace vqldb {
namespace {

TEST(ResourceBudgetTest, UnlimitedBudgetNeverTrips) {
  ResourceBudget budget;
  EXPECT_TRUE(budget.ChargeBytes(1u << 30).ok());
  EXPECT_TRUE(budget.ChargeTuples(1'000'000).ok());
  EXPECT_TRUE(budget.ChargeSolverSteps(1'000'000).ok());
  EXPECT_FALSE(budget.tripped());
  EXPECT_TRUE(budget.Check().ok());
  EXPECT_EQ(budget.bytes_reserved(), 1u << 30);
}

TEST(ResourceBudgetTest, ByteLimitTripsWithStructuredStatus) {
  ResourceBudget budget({/*max_bytes=*/100});
  EXPECT_TRUE(budget.ChargeBytes(60).ok());
  Status st = budget.ChargeBytes(60);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsResourceExhausted()) << st;
  EXPECT_TRUE(budget.tripped());
  // The trip is sticky: later charges and checks keep failing.
  EXPECT_FALSE(budget.ChargeBytes(1).ok());
  EXPECT_TRUE(budget.Check().IsResourceExhausted());
}

TEST(ResourceBudgetTest, TupleAndSolverStepLimitsTrip) {
  ResourceBudget tuples({0, /*max_tuples=*/10, 0});
  EXPECT_TRUE(tuples.ChargeTuples(10).ok());
  EXPECT_TRUE(tuples.ChargeTuples(1).IsResourceExhausted());

  ResourceBudget steps({0, 0, /*max_solver_steps=*/10});
  EXPECT_TRUE(steps.ChargeSolverSteps(10).ok());
  EXPECT_TRUE(steps.ChargeSolverSteps(1).IsResourceExhausted());
}

TEST(ResourceBudgetTest, ReleaseBytesRefundsAndClampsAtZero) {
  ResourceBudget budget;
  ASSERT_TRUE(budget.ChargeBytes(100).ok());
  budget.ReleaseBytes(40);
  EXPECT_EQ(budget.bytes_reserved(), 60u);
  budget.ReleaseBytes(1000);  // over-release clamps, never wraps
  EXPECT_EQ(budget.bytes_reserved(), 0u);
  EXPECT_EQ(budget.bytes_peak(), 100u);
}

TEST(ResourceBudgetTest, ClearTripRecoversButKeepsCounters) {
  ResourceBudget budget({/*max_bytes=*/50});
  ASSERT_TRUE(budget.ChargeBytes(80).IsResourceExhausted());
  budget.ReleaseBytes(80);
  budget.ClearTrip();
  EXPECT_FALSE(budget.tripped());
  EXPECT_TRUE(budget.Check().ok());
  EXPECT_TRUE(budget.ChargeBytes(40).ok());
  EXPECT_EQ(budget.bytes_peak(), 80u);  // peak survives recovery
}

TEST(ResourceBudgetTest, ChildChargesPropagateToParent) {
  auto parent = std::make_shared<ResourceBudget>(
      ResourceBudget::Limits{/*max_bytes=*/100});
  ResourceBudget child({}, parent);
  EXPECT_TRUE(child.ChargeBytes(70).ok());
  EXPECT_EQ(parent->bytes_reserved(), 70u);
  // The child is unlimited, but the parent's limit still fails the charge.
  Status st = child.ChargeBytes(70);
  EXPECT_TRUE(st.IsResourceExhausted()) << st;
  EXPECT_TRUE(parent->tripped());
  EXPECT_FALSE(child.Check().ok());  // Check consults ancestors
}

TEST(ResourceBudgetTest, ChildDestructorReleasesOutstandingBytes) {
  auto parent = std::make_shared<ResourceBudget>();
  {
    ResourceBudget child({}, parent);
    ASSERT_TRUE(child.ChargeBytes(500).ok());
    child.ReleaseBytes(100);
    EXPECT_EQ(parent->bytes_reserved(), 400u);
  }
  // An aborted query returns its whole remaining reservation to the pool.
  EXPECT_EQ(parent->bytes_reserved(), 0u);
}

TEST(ResourceBudgetTest, ConcurrentChargesSumExactly) {
  auto parent = std::make_shared<ResourceBudget>();
  ResourceBudget child({}, parent);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&child] {
      for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(child.ChargeBytes(3).ok());
        ASSERT_TRUE(child.ChargeTuples(1).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(child.bytes_reserved(), 12000u);
  EXPECT_EQ(parent->bytes_reserved(), 12000u);
  EXPECT_EQ(child.tuples(), 4000u);
}

TEST(ResourceBudgetTest, FaultInjectionIsDeterministic) {
  auto run = [](uint64_t seed) {
    ResourceBudget budget;
    budget.ArmFaults({seed, /*trip_p=*/0.3});
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(budget.ChargeBytes(1).ok());
      budget.ClearTrip();  // observe each trial independently
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));       // same seed, same schedule
  EXPECT_NE(run(7), run(8));       // different seed, different schedule
  ResourceBudget budget;
  budget.ArmFaults({42, 1.0});
  EXPECT_TRUE(budget.ChargeBytes(1).IsResourceExhausted());
  EXPECT_EQ(budget.injected_trips(), 1u);
}

TEST(ExecContextTest, CheckIsStickyAndOrdered) {
  CancelToken cancel;
  ExecContext ctx;
  ctx.set_cancel(&cancel);
  EXPECT_TRUE(ctx.Check().ok());
  cancel.Cancel();
  EXPECT_TRUE(ctx.Check().IsCancelled());
  cancel.Reset();
  // Interruption is sticky for the lifetime of the context.
  EXPECT_TRUE(ctx.Check().IsCancelled());
  EXPECT_TRUE(ctx.interrupted());
  EXPECT_TRUE(ctx.status().IsCancelled());
}

TEST(ExecContextTest, BudgetTripSurfacesThroughCheck) {
  ResourceBudget budget({/*max_bytes=*/10});
  ExecContext ctx;
  ctx.set_budget(&budget);
  EXPECT_TRUE(ctx.Check().ok());
  (void)budget.ChargeBytes(100);
  EXPECT_TRUE(ctx.Check().IsResourceExhausted());
}

TEST(ExecContextTest, PollSolverStepsIsNoOpWithoutContext) {
  ASSERT_EQ(ExecContext::Current(), nullptr);
  EXPECT_TRUE(ExecContext::PollSolverSteps(1'000'000));
}

TEST(ExecContextTest, PollSolverStepsChargesBudgetAndStops) {
  ResourceBudget budget({0, 0, /*max_solver_steps=*/100});
  ExecContext ctx;
  ctx.set_budget(&budget);
  ExecContextScope scope(&ctx);
  ASSERT_EQ(ExecContext::Current(), &ctx);

  bool stopped = false;
  for (int i = 0; i < 10'000; ++i) {
    if (!ExecContext::PollSolverSteps(10)) {
      stopped = true;
      break;
    }
  }
  EXPECT_TRUE(stopped);
  EXPECT_TRUE(ExecContext::CurrentStatus().IsResourceExhausted());
  EXPECT_GE(budget.solver_steps(), 100u);
}

TEST(ExecContextTest, ScopeRestoresPreviousBinding) {
  ExecContext outer;
  ExecContext inner;
  {
    ExecContextScope a(&outer);
    EXPECT_EQ(ExecContext::Current(), &outer);
    {
      ExecContextScope b(&inner);
      EXPECT_EQ(ExecContext::Current(), &inner);
    }
    EXPECT_EQ(ExecContext::Current(), &outer);
  }
  EXPECT_EQ(ExecContext::Current(), nullptr);
}

}  // namespace
}  // namespace vqldb
