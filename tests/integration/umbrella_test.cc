// Compile-and-touch test for the umbrella header: everything a downstream
// user reaches through #include "src/vqldb.h" stays available together.

#include "src/vqldb.h"

#include <gtest/gtest.h>

namespace vqldb {
namespace {

TEST(UmbrellaTest, OneIncludeDrivesTheWholePipeline) {
  // Model + language + engine.
  VideoDatabase db;
  QuerySession session(&db);
  ASSERT_TRUE(session.Load(R"(
    object o1 { name: "probe" }.
    interval g { duration: (t >= 0 and t <= 4), entities: {o1} }.
  )")
                  .ok());
  ASSERT_TRUE(
      session.AddRule("q(G) <- Interval(G), o1 in G.entities.").ok());
  auto r = session.Query("?- q(G).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(aggregates::Count(*r), 1u);

  // Constraint substrates.
  EXPECT_TRUE(TemporalConstraint::ClosedInterval(0, 1).Satisfiable());
  EXPECT_TRUE(OrderSolver::Satisfiable({}));
  EXPECT_TRUE(SetSolver::Satisfiable({}));
  GeneralizedInterval gi = GeneralizedInterval::Single(0, 2);
  EXPECT_EQ(gi.Concat(gi), gi);

  // Video substrate.
  SyntheticArchiveConfig config;
  config.num_shots = 3;
  config.num_entities = 1;
  VideoTimeline timeline = GenerateArchive(config);
  GeneralizedIntervalIndex index;
  EXPECT_TRUE(index.Build(timeline).ok());

  // Storage.
  auto bytes = BinaryFormat::Serialize(db);
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(BinaryFormat::Deserialize(*bytes).ok());
  EXPECT_TRUE(TextFormat::Dump(db).ok());

  // Concrete domain registry.
  ConcreteDomain domain = ConcreteDomain::StandardOrder();
  EXPECT_TRUE(domain.HasPredicate("lt", 2));
}

}  // namespace
}  // namespace vqldb
