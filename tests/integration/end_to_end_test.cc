// Full-pipeline integration: synthetic footage -> shot detection ->
// annotation -> data model -> rule-based querying -> virtual editing ->
// persistence round-trip. This is the workflow the paper's archive
// prototype (Section 1: TV channel / audio-visual institute) would run.

#include <gtest/gtest.h>

#include "src/engine/query.h"
#include "src/storage/binary_format.h"
#include "src/storage/catalog.h"
#include "src/storage/text_format.h"
#include "src/video/annotator.h"
#include "src/video/indexing_schemes.h"
#include "src/video/shot_detector.h"
#include "src/video/synthetic.h"
#include "src/video/virtual_editing.h"

namespace vqldb {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticArchiveConfig config;
    config.seed = 2024;
    config.num_shots = 15;
    config.num_entities = 4;
    config.mean_shot_seconds = 5.0;
    config.presence_probability = 0.45;
    timeline_ = GenerateArchive(config);
  }

  VideoTimeline timeline_;
};

TEST_F(EndToEndTest, FullPipeline) {
  // 1. Machine-derived indices: render frames, detect shots.
  FrameRenderConfig render;
  render.fps = 10.0;
  FrameStream stream = RenderFrameStream(timeline_, render);
  auto shots = ShotDetector().Detect(stream);
  ASSERT_TRUE(shots.ok());
  EXPECT_GE(shots->size(), 12u);

  // 2. Application-level indices: annotate the ground-truth tracks.
  VideoDatabase db;
  Annotator annotator(&db);
  ASSERT_TRUE(annotator.AnnotateTimeline(timeline_).ok());
  ASSERT_TRUE(db.Validate().ok());
  EXPECT_EQ(db.Entities().size(), 4u);
  EXPECT_EQ(db.BaseIntervals().size(), 4u);

  // 3. Declarative retrieval with the standard rule library.
  QuerySession session(&db);
  ASSERT_TRUE(session.Load(StandardRuleLibrary()).ok());
  auto appears = session.Query("?- appears(actor0, G).");
  ASSERT_TRUE(appears.ok());
  ASSERT_GE(appears->rows.size(), 1u);

  // 4. Virtual editing: build a sequence of every scene actor0 appears in.
  auto edit = SequenceFromQueryColumn(db, *appears, 0);
  ASSERT_TRUE(edit.ok());
  EXPECT_GT(edit->TotalDuration(), 0);
  auto edited = MaterializeSequence(&db, "actor0_reel", *edit);
  ASSERT_TRUE(edited.ok());
  session.Invalidate();  // external db mutation

  // The materialized reel equals actor0's ground-truth occurrences.
  IntervalSet reel = *db.DurationOf(*edited);
  EXPECT_EQ(reel, timeline_.FindTrack("actor0")->extent.ToIntervalSet());

  // 5. Persist and restore, then re-run a query on the restored archive.
  std::string text = *TextFormat::Dump(db);
  VideoDatabase restored;
  ASSERT_TRUE(TextFormat::Load(text, &restored).ok());
  QuerySession session2(&restored);
  ASSERT_TRUE(session2.Load(StandardRuleLibrary()).ok());
  auto appears2 = session2.Query("?- appears(actor0, G).");
  ASSERT_TRUE(appears2.ok());
  // The reel interval also survives (it became a base interval on load).
  EXPECT_GE(appears2->rows.size(), appears->rows.size());
}

TEST_F(EndToEndTest, BinaryAndTextAgree) {
  VideoDatabase db;
  Annotator annotator(&db);
  ASSERT_TRUE(annotator.AnnotateTimeline(timeline_).ok());

  auto bytes = BinaryFormat::Serialize(db);
  ASSERT_TRUE(bytes.ok());
  auto from_binary = BinaryFormat::Deserialize(*bytes);
  ASSERT_TRUE(from_binary.ok());

  VideoDatabase from_text;
  ASSERT_TRUE(TextFormat::Load(*TextFormat::Dump(db), &from_text).ok());

  EXPECT_EQ(from_binary->Entities().size(), from_text.Entities().size());
  EXPECT_EQ(from_binary->BaseIntervals().size(),
            from_text.BaseIntervals().size());
  for (ObjectId gi : from_text.BaseIntervals()) {
    const std::string* symbol = from_text.SymbolOf(gi);
    ASSERT_NE(symbol, nullptr);
    ObjectId other = *from_binary->Resolve(*symbol);
    EXPECT_EQ(*from_binary->DurationOf(other), *from_text.DurationOf(gi));
  }
}

TEST_F(EndToEndTest, ThreeSchemesAnswerTheSameQueryConsistently) {
  // Build the three Fig. 1-3 representations of the same footage and ask
  // "when is actor1 on screen" through the model layer.
  const GeneralizedInterval& truth = timeline_.FindTrack("actor1")->extent;
  for (auto& scheme : AllIndexingSchemes()) {
    ASSERT_TRUE(scheme->Build(timeline_).ok());
    GeneralizedInterval retrieved = scheme->OccurrencesOf("actor1");
    RetrievalQuality q = MeasureQuality(retrieved, truth);
    EXPECT_DOUBLE_EQ(q.recall, 1.0) << scheme->SchemeName();
    if (scheme->SchemeName() != "segmentation") {
      EXPECT_DOUBLE_EQ(q.precision, 1.0) << scheme->SchemeName();
    }
  }
}

TEST_F(EndToEndTest, ConstructiveQueryBuildsReelInsideTheLanguage) {
  VideoDatabase db;
  Annotator annotator(&db);
  ASSERT_TRUE(annotator.AnnotateTimeline(timeline_).ok());
  QuerySession session(&db);
  // The paper's virtual-editing motivation, purely in rules: concatenate
  // all scenes where actor0 and actor1 both appear... here each occ_ GI
  // holds a single entity, so concatenate actor0's with actor1's.
  ASSERT_TRUE(session
                  .AddRule("reel(G1 ++ G2) <- Interval(G1), Interval(G2), "
                           "Object(O1), Object(O2), O1 in G1.entities, "
                           "O2 in G2.entities, O1.name = \"actor0\", "
                           "O2.name = \"actor1\".")
                  .ok());
  auto r = session.Query("?- reel(G).");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  ObjectId reel = r->rows[0][0].oid_value();
  IntervalSet expected = timeline_.FindTrack("actor0")
                             ->extent.Concat(timeline_.FindTrack("actor1")->extent)
                             .ToIntervalSet();
  EXPECT_EQ(*db.DurationOf(reel), expected);
}

TEST_F(EndToEndTest, SessionCachingAndInvalidation) {
  VideoDatabase db;
  Annotator annotator(&db);
  ASSERT_TRUE(annotator.AnnotateTimeline(timeline_).ok());
  QuerySession session(&db);
  // The legacy full-materialization contract under test: disable the
  // goal-directed path (which evaluates against the live database) so
  // queries answer from the session's cached fixpoint.
  session.set_magic_enabled(false);
  ASSERT_TRUE(session.Load(StandardRuleLibrary()).ok());
  auto before = session.Query("?- appears(O, G).");
  ASSERT_TRUE(before.ok());
  // External mutation without Invalidate: the cache still answers with the
  // old fixpoint; after Invalidate the new entity shows up. (The query
  // cache does not mask this: it keys on the database epoch, which the
  // mutation advances.)
  ObjectId extra = *db.CreateEntity("latecomer");
  ObjectId gi =
      *db.CreateInterval("late_scene", GeneralizedInterval::Single(500, 510));
  ASSERT_TRUE(db.AddEntityToInterval(gi, extra).ok());
  auto stale = session.Query("?- appears(latecomer, G).");
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale->rows.empty());
  session.Invalidate();
  auto fresh = session.Query("?- appears(latecomer, G).");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows.size(), 1u);
}

TEST_F(EndToEndTest, GoalDirectedDefaultSeesLiveDatabase) {
  VideoDatabase db;
  Annotator annotator(&db);
  ASSERT_TRUE(annotator.AnnotateTimeline(timeline_).ok());
  QuerySession session(&db);
  ASSERT_TRUE(session.Load(StandardRuleLibrary()).ok());
  auto before = session.Query("?- appears(O, G).");
  ASSERT_TRUE(before.ok());
  // With magic-set evaluation on (the default), each query evaluates
  // against the live database and the query cache self-invalidates via the
  // mutation epoch — external mutation needs no Invalidate() call.
  ObjectId extra = *db.CreateEntity("latecomer");
  ObjectId gi =
      *db.CreateInterval("late_scene", GeneralizedInterval::Single(500, 510));
  ASSERT_TRUE(db.AddEntityToInterval(gi, extra).ok());
  auto fresh = session.Query("?- appears(latecomer, G).");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows.size(), 1u);
}

}  // namespace
}  // namespace vqldb
