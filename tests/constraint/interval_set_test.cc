#include "src/constraint/interval_set.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace vqldb {
namespace {

TEST(IntervalSetTest, EmptySet) {
  IntervalSet s;
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_EQ(s.fragment_count(), 0u);
  EXPECT_EQ(s.ToString(), "{}");
  EXPECT_FALSE(s.Contains(0));
}

TEST(IntervalSetTest, NormalizationMergesOverlaps) {
  IntervalSet s({TimeInterval::Closed(0, 3), TimeInterval::Closed(2, 5)});
  EXPECT_EQ(s.fragment_count(), 1u);
  EXPECT_EQ(s.ToString(), "[0, 5]");
}

TEST(IntervalSetTest, NormalizationMergesTouching) {
  IntervalSet s({TimeInterval::ClosedOpen(0, 2), TimeInterval::Closed(2, 4)});
  EXPECT_EQ(s.fragment_count(), 1u);
  EXPECT_EQ(s.ToString(), "[0, 4]");
}

TEST(IntervalSetTest, NormalizationKeepsGaps) {
  IntervalSet s({TimeInterval::Open(0, 2), TimeInterval::Open(2, 4)});
  EXPECT_EQ(s.fragment_count(), 2u);  // the point 2 is missing
  EXPECT_FALSE(s.Contains(2));
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.Contains(3));
}

TEST(IntervalSetTest, NormalizationDropsEmpties) {
  IntervalSet s({TimeInterval::Open(1, 1), TimeInterval::Closed(5, 6)});
  EXPECT_EQ(s.fragment_count(), 1u);
}

TEST(IntervalSetTest, NormalizationSorts) {
  IntervalSet s({TimeInterval::Closed(10, 12), TimeInterval::Closed(0, 1)});
  EXPECT_EQ(s.fragments()[0].lo(), 0);
  EXPECT_EQ(s.fragments()[1].lo(), 10);
}

TEST(IntervalSetTest, ContainsBinarySearch) {
  IntervalSet s({TimeInterval::Closed(0, 1), TimeInterval::Closed(4, 5),
                 TimeInterval::Closed(9, 12)});
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(4.5));
  EXPECT_TRUE(s.Contains(12));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_FALSE(s.Contains(8.99));
  EXPECT_FALSE(s.Contains(13));
}

TEST(IntervalSetTest, UnionDisjoint) {
  IntervalSet a({TimeInterval::Closed(0, 1)});
  IntervalSet b({TimeInterval::Closed(3, 4)});
  IntervalSet u = a.Union(b);
  EXPECT_EQ(u.fragment_count(), 2u);
  EXPECT_EQ(u.Measure(), 2);
}

TEST(IntervalSetTest, IntersectBasic) {
  IntervalSet a({TimeInterval::Closed(0, 5), TimeInterval::Closed(10, 15)});
  IntervalSet b({TimeInterval::Closed(3, 12)});
  IntervalSet i = a.Intersect(b);
  EXPECT_EQ(i.ToString(), "[3, 5] u [10, 12]");
}

TEST(IntervalSetTest, IntersectEmpty) {
  IntervalSet a({TimeInterval::Closed(0, 1)});
  EXPECT_TRUE(a.Intersect(IntervalSet()).IsEmpty());
}

TEST(IntervalSetTest, ComplementOfEmptyIsAll) {
  EXPECT_EQ(IntervalSet().Complement(), IntervalSet::All());
  EXPECT_TRUE(IntervalSet::All().Complement().IsEmpty());
}

TEST(IntervalSetTest, ComplementOfClosedInterval) {
  IntervalSet s({TimeInterval::Closed(2, 5)});
  IntervalSet c = s.Complement();
  EXPECT_EQ(c.fragment_count(), 2u);
  EXPECT_TRUE(c.Contains(1.999));
  EXPECT_FALSE(c.Contains(2));
  EXPECT_FALSE(c.Contains(5));
  EXPECT_TRUE(c.Contains(5.001));
}

TEST(IntervalSetTest, ComplementOfPoint) {
  IntervalSet c = IntervalSet({TimeInterval::Point(3)}).Complement();
  EXPECT_FALSE(c.Contains(3));
  EXPECT_TRUE(c.Contains(2.999));
  EXPECT_TRUE(c.Contains(3.001));
}

TEST(IntervalSetTest, DifferencePunchesHole) {
  IntervalSet a({TimeInterval::Closed(0, 10)});
  IntervalSet b({TimeInterval::Open(3, 5)});
  IntervalSet d = a.Difference(b);
  EXPECT_TRUE(d.Contains(3));
  EXPECT_FALSE(d.Contains(4));
  EXPECT_TRUE(d.Contains(5));
  EXPECT_EQ(d.fragment_count(), 2u);
}

TEST(IntervalSetTest, SubsetOfBasic) {
  IntervalSet a({TimeInterval::Closed(1, 2), TimeInterval::Closed(5, 6)});
  IntervalSet b({TimeInterval::Closed(0, 3), TimeInterval::Closed(4, 9)});
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_FALSE(b.SubsetOf(a));
  EXPECT_TRUE(IntervalSet().SubsetOf(a));
  EXPECT_TRUE(a.SubsetOf(IntervalSet::All()));
}

TEST(IntervalSetTest, SubsetRespectsOpenness) {
  IntervalSet open({TimeInterval::Open(0, 1)});
  IntervalSet closed({TimeInterval::Closed(0, 1)});
  EXPECT_TRUE(open.SubsetOf(closed));
  EXPECT_FALSE(closed.SubsetOf(open));
}

TEST(IntervalSetTest, OverlapsBasic) {
  IntervalSet a({TimeInterval::Closed(0, 1), TimeInterval::Closed(10, 11)});
  IntervalSet b({TimeInterval::Closed(5, 10)});
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  IntervalSet c({TimeInterval::Closed(2, 4)});
  EXPECT_FALSE(a.Overlaps(c));
  EXPECT_FALSE(a.Overlaps(IntervalSet()));
}

TEST(IntervalSetTest, MeasureSumsFragments) {
  IntervalSet s({TimeInterval::Closed(0, 2), TimeInterval::Closed(5, 8)});
  EXPECT_EQ(s.Measure(), 5);
}

TEST(IntervalSetTest, SpanCoversAll) {
  IntervalSet s({TimeInterval::Closed(1, 2), TimeInterval::Open(8, 9)});
  TimeInterval span = s.Span();
  EXPECT_EQ(span.lo(), 1);
  EXPECT_EQ(span.hi(), 9);
  EXPECT_FALSE(span.lo_open());
  EXPECT_TRUE(span.hi_open());
}

TEST(IntervalSetTest, MinMax) {
  IntervalSet s({TimeInterval::Closed(3, 4), TimeInterval::Closed(7, 9)});
  EXPECT_EQ(s.Min(), 3);
  EXPECT_EQ(s.Max(), 9);
}

// ------------------------- randomized algebraic property sweeps (TEST_P)

class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  // Random set of up to 4 intervals with small-integer endpoints, mixing
  // open/closed bounds — exercises merge and boundary logic heavily.
  IntervalSet RandomSet(Rng* rng) {
    std::vector<TimeInterval> ivs;
    size_t n = rng->UniformU64(5);
    for (size_t i = 0; i < n; ++i) {
      double lo = static_cast<double>(rng->UniformInt(0, 20));
      double hi = lo + static_cast<double>(rng->UniformInt(0, 6));
      ivs.emplace_back(lo, rng->Bernoulli(0.5), hi, rng->Bernoulli(0.5));
    }
    return IntervalSet(std::move(ivs));
  }

  // Point probes including boundary values.
  std::vector<double> Probes() {
    std::vector<double> p;
    for (int i = -1; i <= 27; ++i) {
      p.push_back(i);
      p.push_back(i + 0.5);
    }
    return p;
  }
};

TEST_P(IntervalSetPropertyTest, UnionMatchesPointwiseOr) {
  Rng rng(GetParam());
  IntervalSet a = RandomSet(&rng), b = RandomSet(&rng);
  IntervalSet u = a.Union(b);
  for (double t : Probes()) {
    EXPECT_EQ(u.Contains(t), a.Contains(t) || b.Contains(t)) << t;
  }
}

TEST_P(IntervalSetPropertyTest, IntersectMatchesPointwiseAnd) {
  Rng rng(GetParam() + 1000);
  IntervalSet a = RandomSet(&rng), b = RandomSet(&rng);
  IntervalSet i = a.Intersect(b);
  for (double t : Probes()) {
    EXPECT_EQ(i.Contains(t), a.Contains(t) && b.Contains(t)) << t;
  }
}

TEST_P(IntervalSetPropertyTest, ComplementMatchesPointwiseNot) {
  Rng rng(GetParam() + 2000);
  IntervalSet a = RandomSet(&rng);
  IntervalSet c = a.Complement();
  for (double t : Probes()) {
    EXPECT_EQ(c.Contains(t), !a.Contains(t)) << t;
  }
}

TEST_P(IntervalSetPropertyTest, DoubleComplementIsIdentity) {
  Rng rng(GetParam() + 3000);
  IntervalSet a = RandomSet(&rng);
  EXPECT_EQ(a.Complement().Complement(), a);
}

TEST_P(IntervalSetPropertyTest, DeMorgan) {
  Rng rng(GetParam() + 4000);
  IntervalSet a = RandomSet(&rng), b = RandomSet(&rng);
  EXPECT_EQ(a.Union(b).Complement(),
            a.Complement().Intersect(b.Complement()));
}

TEST_P(IntervalSetPropertyTest, SubsetIffDifferenceEmpty) {
  Rng rng(GetParam() + 5000);
  IntervalSet a = RandomSet(&rng), b = RandomSet(&rng);
  EXPECT_EQ(a.SubsetOf(b), a.Difference(b).IsEmpty());
  EXPECT_TRUE(a.Intersect(b).SubsetOf(a));
  EXPECT_TRUE(a.SubsetOf(a.Union(b)));
}

TEST_P(IntervalSetPropertyTest, UnionIsCommutativeAssociativeIdempotent) {
  Rng rng(GetParam() + 6000);
  IntervalSet a = RandomSet(&rng), b = RandomSet(&rng), c = RandomSet(&rng);
  EXPECT_EQ(a.Union(b), b.Union(a));
  EXPECT_EQ(a.Union(b).Union(c), a.Union(b.Union(c)));
  EXPECT_EQ(a.Union(a), a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace vqldb
