#include "src/constraint/concrete_domain.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vqldb {
namespace {

TEST(ConcreteDomainTest, StandardOrderComparisons) {
  ConcreteDomain d = ConcreteDomain::StandardOrder();
  auto num = [](double v) { return DomainValue::Number(v); };
  EXPECT_TRUE(*d.Evaluate("lt", {num(1), num(2)}));
  EXPECT_FALSE(*d.Evaluate("lt", {num(2), num(2)}));
  EXPECT_TRUE(*d.Evaluate("le", {num(2), num(2)}));
  EXPECT_TRUE(*d.Evaluate("eq", {num(3), num(3)}));
  EXPECT_TRUE(*d.Evaluate("ne", {num(3), num(4)}));
  EXPECT_TRUE(*d.Evaluate("ge", {num(4), num(4)}));
  EXPECT_TRUE(*d.Evaluate("gt", {num(5), num(4)}));
}

TEST(ConcreteDomainTest, BetweenTernary) {
  ConcreteDomain d = ConcreteDomain::StandardOrder();
  auto num = [](double v) { return DomainValue::Number(v); };
  EXPECT_TRUE(*d.Evaluate("between", {num(3), num(1), num(5)}));
  EXPECT_FALSE(*d.Evaluate("between", {num(9), num(1), num(5)}));
}

TEST(ConcreteDomainTest, StringPredicates) {
  ConcreteDomain d = ConcreteDomain::StandardOrder();
  auto str = [](const char* s) { return DomainValue::String(s); };
  EXPECT_TRUE(*d.Evaluate("streq", {str("a"), str("a")}));
  EXPECT_TRUE(*d.Evaluate("strne", {str("a"), str("b")}));
}

TEST(ConcreteDomainTest, SortMismatchIsFalseNotError) {
  ConcreteDomain d = ConcreteDomain::StandardOrder();
  auto r = d.Evaluate("lt", {DomainValue::String("a"), DomainValue::Number(1)});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(ConcreteDomainTest, UnknownPredicateIsNotFound) {
  ConcreteDomain d = ConcreteDomain::StandardOrder();
  EXPECT_TRUE(d.Evaluate("nope", {}).status().IsNotFound());
}

TEST(ConcreteDomainTest, ArityMismatchIsInvalidArgument) {
  ConcreteDomain d = ConcreteDomain::StandardOrder();
  EXPECT_TRUE(
      d.Evaluate("lt", {DomainValue::Number(1)}).status().IsInvalidArgument());
}

TEST(ConcreteDomainTest, CustomPredicateRegistration) {
  ConcreteDomain d("video-spatial");
  d.RegisterPredicate("near", 2, [](const std::vector<DomainValue>& a) {
    return std::fabs(a[0].number - a[1].number) < 10;
  });
  EXPECT_TRUE(d.HasPredicate("near", 2));
  EXPECT_FALSE(d.HasPredicate("near", 3));
  EXPECT_TRUE(
      *d.Evaluate("near", {DomainValue::Number(3), DomainValue::Number(9)}));
  EXPECT_FALSE(
      *d.Evaluate("near", {DomainValue::Number(3), DomainValue::Number(99)}));
}

TEST(ConcreteDomainTest, ArityOverloading) {
  ConcreteDomain d("overloads");
  d.RegisterPredicate("p", 1, [](const auto&) { return true; });
  d.RegisterPredicate("p", 2, [](const auto&) { return false; });
  EXPECT_TRUE(*d.Evaluate("p", {DomainValue::Number(0)}));
  EXPECT_FALSE(
      *d.Evaluate("p", {DomainValue::Number(0), DomainValue::Number(1)}));
}

TEST(ConcreteDomainTest, ListPredicatesSorted) {
  ConcreteDomain d = ConcreteDomain::StandardOrder();
  auto preds = d.ListPredicates();
  EXPECT_GE(preds.size(), 9u);
  EXPECT_TRUE(std::is_sorted(preds.begin(), preds.end()));
}

}  // namespace
}  // namespace vqldb
