// Solver-level cancellation (the deadline-granularity fix): the inner loops
// of OrderSolver (branch distribution, transitive closure), SetClosure, and
// IntervalSet canonicalization poll the thread-bound ExecContext, so a
// single long solver call observes deadlines, CancelTokens, and solver-step
// budgets instead of blowing far past them. Interrupted solvers abandon
// work with a conservative answer (or a structured status where the
// signature allows) and leave the interruption recorded on the context.

#include <gtest/gtest.h>

#include <chrono>

#include "src/common/budget.h"
#include "src/common/cancel.h"
#include "src/constraint/interval_set.h"
#include "src/constraint/order_solver.h"
#include "src/setcon/set_solver.h"

namespace vqldb {
namespace {

using Clock = std::chrono::steady_clock;

// The adversarial branch-distribution input: x0 = 5 entails a 16-disjunct
// DNF whose disjuncts are two-atom, so distributing the negation yields
// 2^16 branches — and because the entailment HOLDS, every branch is
// unsatisfiable and the enumeration cannot exit early. Without an
// interrupt the solver grinds through all 65536 satisfiability checks.
struct AdversarialEntailment {
  OrderConjunction conjunction;
  OrderDnf dnf;

  AdversarialEntailment() {
    conjunction.push_back(
        {OrderTerm::Var(0), CompareOp::kEq, OrderTerm::Const(5.0)});
    for (int i = 0; i < 16; ++i) {
      OrderConjunction disjunct;  // both atoms follow from x0 = 5
      disjunct.push_back({OrderTerm::Var(0), CompareOp::kGt,
                          OrderTerm::Const(static_cast<double>(-1 - i))});
      disjunct.push_back({OrderTerm::Var(0), CompareOp::kGt,
                          OrderTerm::Const(static_cast<double>(-2 - i))});
      dnf.push_back(std::move(disjunct));
    }
  }
};

TEST(SolverCancelTest, EntailsDnfObservesCancelToken) {
  AdversarialEntailment adv;
  CancelToken cancel;
  cancel.Cancel();
  ExecContext ctx;
  ctx.set_cancel(&cancel);
  ExecContextScope scope(&ctx);

  auto begin = Clock::now();
  auto result = OrderSolver::EntailsDnf(adv.conjunction, adv.dnf, 1u << 16);
  auto elapsed = Clock::now() - begin;
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
  // The poll interval bounds the reaction latency to ~1024 solver steps,
  // not the full 65536-branch enumeration.
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  EXPECT_TRUE(ctx.interrupted());
}

TEST(SolverCancelTest, EntailsDnfObservesExpiredDeadline) {
  AdversarialEntailment adv;
  ExecContext ctx;
  ctx.set_deadline(Clock::now() - std::chrono::seconds(1));
  ExecContextScope scope(&ctx);

  auto result = OrderSolver::EntailsDnf(adv.conjunction, adv.dnf, 1u << 16);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
}

TEST(SolverCancelTest, EntailsDnfObservesSolverStepBudget) {
  AdversarialEntailment adv;
  ResourceBudget budget({0, 0, /*max_solver_steps=*/10});
  ExecContext ctx;
  ctx.set_budget(&budget);
  ExecContextScope scope(&ctx);

  auto result = OrderSolver::EntailsDnf(adv.conjunction, adv.dnf, 1u << 16);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
  EXPECT_GE(budget.solver_steps(), 10u);
}

TEST(SolverCancelTest, EntailsDnfStillCorrectWithoutInterruption) {
  // Control: under an unlimited context the same adversarial input
  // completes with the exact answer (the entailment holds).
  AdversarialEntailment small;
  small.dnf.resize(8);  // 2^8 branches: exact yet fast
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  auto result = OrderSolver::EntailsDnf(small.conjunction, small.dnf, 1u << 16);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(*result);
  EXPECT_FALSE(ctx.interrupted());
}

TEST(SolverCancelTest, OrderClosureChargesAndRecordsBudgetTrip) {
  // A 100-variable chain makes the reachability closure itself the long
  // call. The solver bails out with a conservative partial closure; the
  // recorded interrupt is what the engine surfaces.
  OrderConjunction chain;
  for (int i = 0; i < 100; ++i) {
    chain.push_back({OrderTerm::Var(i), CompareOp::kLt, OrderTerm::Var(i + 1)});
  }
  ResourceBudget budget({0, 0, /*max_solver_steps=*/50});
  ExecContext ctx;
  ctx.set_budget(&budget);
  ExecContextScope scope(&ctx);

  (void)OrderSolver::Satisfiable(chain);  // answer is conservative here
  EXPECT_TRUE(ctx.interrupted());
  EXPECT_TRUE(ctx.status().IsResourceExhausted()) << ctx.status();
  EXPECT_GE(budget.solver_steps(), 50u);
}

TEST(SolverCancelTest, SetClosureObservesSolverStepBudget) {
  SetConjunction conjunction;
  for (int i = 0; i < 80; ++i) {
    conjunction.push_back(SetConstraint::Subset(i, i + 1));
  }
  conjunction.push_back(SetConstraint::LowerBound(ElementSet{1, 2, 3}, 0));

  ResourceBudget budget({0, 0, /*max_solver_steps=*/50});
  ExecContext ctx;
  ctx.set_budget(&budget);
  ExecContextScope scope(&ctx);

  SetClosure closure(conjunction);  // bounds are conservative here
  EXPECT_TRUE(ctx.interrupted());
  EXPECT_TRUE(ctx.status().IsResourceExhausted()) << ctx.status();
}

TEST(SolverCancelTest, IntervalCanonicalizationObservesBudget) {
  std::vector<TimeInterval> fragments;
  for (int i = 0; i < 3000; ++i) {
    fragments.push_back(TimeInterval::Closed(2.0 * i, 2.0 * i + 1.0));
  }

  {
    // Control: unlimited context canonicalizes all fragments.
    ExecContext ctx;
    ExecContextScope scope(&ctx);
    IntervalSet full(fragments);
    EXPECT_EQ(full.fragment_count(), 3000u);
    EXPECT_FALSE(ctx.interrupted());
  }

  ResourceBudget budget({0, 0, /*max_solver_steps=*/100});
  ExecContext ctx;
  ctx.set_budget(&budget);
  ExecContextScope scope(&ctx);
  IntervalSet interrupted(fragments);
  // The empty set is the documented conservative value of an abandoned
  // canonicalization; the sticky interrupt carries the real status.
  EXPECT_TRUE(interrupted.IsEmpty());
  EXPECT_TRUE(ctx.interrupted());
  EXPECT_TRUE(ctx.status().IsResourceExhausted()) << ctx.status();
}

TEST(SolverCancelTest, InterruptIsStickyAcrossSolverCalls) {
  // Once one solver call trips, every later poll on the same context fails
  // fast — the engine can rely on CurrentStatus() after any bail-out.
  ResourceBudget budget({0, 0, /*max_solver_steps=*/10});
  ExecContext ctx;
  ctx.set_budget(&budget);
  ExecContextScope scope(&ctx);

  AdversarialEntailment adv;
  ASSERT_FALSE(OrderSolver::EntailsDnf(adv.conjunction, adv.dnf, 1u << 16).ok());
  EXPECT_FALSE(ExecContext::PollSolverSteps(1));
  EXPECT_TRUE(ExecContext::CurrentStatus().IsResourceExhausted());
}

}  // namespace
}  // namespace vqldb
