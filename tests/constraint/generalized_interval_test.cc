#include "src/constraint/generalized_interval.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace vqldb {
namespace {

using GI = GeneralizedInterval;

GI Make(std::initializer_list<Fragment> fragments) {
  auto r = GI::Make(std::vector<Fragment>(fragments));
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

TEST(GeneralizedIntervalTest, EmptyByDefault) {
  GI gi;
  EXPECT_TRUE(gi.IsEmpty());
  EXPECT_EQ(gi.Measure(), 0);
  EXPECT_EQ(gi.ToString(), "{}");
}

TEST(GeneralizedIntervalTest, MakeRejectsInvertedFragment) {
  auto r = GI::Make({Fragment{5, 2}});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(GeneralizedIntervalTest, MakeRejectsNonFinite) {
  auto r = GI::Make({Fragment{0, std::numeric_limits<double>::infinity()}});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(GeneralizedIntervalTest, NormalizationEnforcesDef5NonOverlap) {
  // Def. 5: pairwise non-overlapping fragments — overlaps merge.
  GI gi = Make({{0, 5}, {3, 8}, {8, 10}});
  EXPECT_EQ(gi.fragment_count(), 1u);
  EXPECT_EQ(gi.ToString(), "[0,10]");
}

TEST(GeneralizedIntervalTest, NormalizationSortsAndKeepsGaps) {
  GI gi = Make({{20, 25}, {0, 5}});
  EXPECT_EQ(gi.fragment_count(), 2u);
  EXPECT_EQ(gi.Begin(), 0);
  EXPECT_EQ(gi.End(), 25);
}

TEST(GeneralizedIntervalTest, SingleAndContains) {
  GI gi = GI::Single(2, 7);
  EXPECT_TRUE(gi.Contains(2));
  EXPECT_TRUE(gi.Contains(7));
  EXPECT_FALSE(gi.Contains(7.1));
}

TEST(GeneralizedIntervalTest, MeasureSumsFragments) {
  GI gi = Make({{0, 2}, {10, 13}});
  EXPECT_EQ(gi.Measure(), 5);
}

TEST(GeneralizedIntervalTest, ConcatIsPaperUnion) {
  GI a = Make({{0, 5}});
  GI b = Make({{20, 30}});
  GI c = a.Concat(b);
  EXPECT_EQ(c.ToString(), "[0,5] u [20,30]");
}

TEST(GeneralizedIntervalTest, ConcatMergesAdjacent) {
  GI a = Make({{0, 5}});
  GI b = Make({{5, 9}});
  EXPECT_EQ(a.Concat(b).fragment_count(), 1u);
}

TEST(GeneralizedIntervalTest, ConcatIdempotent) {
  // Section 6.1: I1 (+) I1 == I1 — the termination guarantee.
  GI a = Make({{0, 5}, {9, 12}});
  EXPECT_EQ(a.Concat(a), a);
}

TEST(GeneralizedIntervalTest, IntersectExact) {
  GI a = Make({{0, 10}, {20, 30}});
  GI b = Make({{5, 25}});
  EXPECT_EQ(a.Intersect(b).ToString(), "[5,10] u [20,25]");
}

TEST(GeneralizedIntervalTest, DifferenceBasic) {
  GI a = Make({{0, 10}});
  GI b = Make({{3, 5}});
  GI d = a.Difference(b);
  EXPECT_EQ(d.ToString(), "[0,3] u [5,10]");
}

TEST(GeneralizedIntervalTest, SubsetOf) {
  GI a = Make({{1, 2}, {21, 24}});
  GI b = Make({{0, 5}, {20, 30}});
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_FALSE(b.SubsetOf(a));
  EXPECT_TRUE(GI().SubsetOf(a));
  EXPECT_TRUE(a.SubsetOf(a));
}

TEST(GeneralizedIntervalTest, SubsetFailsAcrossGap) {
  GI a = Make({{4, 6}});            // straddles b's gap
  GI b = Make({{0, 5}, {5.5, 10}});
  EXPECT_FALSE(a.SubsetOf(b));
}

TEST(GeneralizedIntervalTest, OverlapsBasic) {
  GI a = Make({{0, 1}, {10, 11}});
  GI b = Make({{5, 10}});
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_FALSE(a.Overlaps(Make({{2, 4}})));
  EXPECT_FALSE(a.Overlaps(GI()));
}

TEST(GeneralizedIntervalTest, AllenStyleRelations) {
  GI a = Make({{0, 5}});
  GI b = Make({{6, 9}});
  GI c = Make({{5, 9}});
  EXPECT_TRUE(a.Before(b));
  EXPECT_FALSE(b.Before(a));
  EXPECT_TRUE(a.Meets(c));
  EXPECT_FALSE(a.Meets(b));

  GI d = Make({{0, 7}});
  GI e = Make({{3, 10}});
  EXPECT_TRUE(d.HullOverlaps(e));
  EXPECT_FALSE(e.HullOverlaps(d));

  GI f = Make({{0, 3}});
  EXPECT_TRUE(f.Starts(d));   // same begin, earlier end
  GI g = Make({{5, 7}});
  EXPECT_TRUE(g.Finishes(d)); // same end, later begin

  GI h = Make({{1, 2}});
  EXPECT_TRUE(h.During(d));
  EXPECT_FALSE(d.During(d));  // strict
}

TEST(GeneralizedIntervalTest, HullCoversExtent) {
  GI a = Make({{2, 3}, {8, 9}});
  Fragment hull = a.Hull();
  EXPECT_EQ(hull.begin, 2);
  EXPECT_EQ(hull.end, 9);
}

TEST(GeneralizedIntervalTest, ToIntervalSetAndBack) {
  GI a = Make({{0, 5}, {9, 12}});
  auto back = GI::FromIntervalSet(a.ToIntervalSet());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, a);
}

TEST(GeneralizedIntervalTest, FromIntervalSetRejectsOpen) {
  IntervalSet open({TimeInterval::Open(0, 5)});
  EXPECT_TRUE(GI::FromIntervalSet(open).status().IsInvalidArgument());
}

TEST(GeneralizedIntervalTest, FromIntervalSetRejectsUnbounded) {
  IntervalSet ray({TimeInterval::AtLeast(0)});
  EXPECT_TRUE(GI::FromIntervalSet(ray).status().IsInvalidArgument());
}

TEST(GeneralizedIntervalTest, ToConstraintDenotesSameSet) {
  GI a = Make({{0, 5}, {9, 9}, {12, 15}});
  EXPECT_EQ(a.ToConstraint().ToIntervalSet(), a.ToIntervalSet());
}

// ------------------------------------ randomized algebra of (+) (TEST_P)

class ConcatPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  GI RandomGi(Rng* rng) {
    std::vector<Fragment> fragments;
    size_t n = rng->UniformU64(5);
    for (size_t i = 0; i < n; ++i) {
      double begin = static_cast<double>(rng->UniformInt(0, 40));
      fragments.push_back(
          Fragment{begin, begin + static_cast<double>(rng->UniformInt(0, 8))});
    }
    auto gi = GI::Make(std::move(fragments));
    EXPECT_TRUE(gi.ok());
    return *gi;
  }
};

TEST_P(ConcatPropertyTest, ConcatCommutativeAssociativeIdempotent) {
  Rng rng(GetParam());
  GI a = RandomGi(&rng), b = RandomGi(&rng), c = RandomGi(&rng);
  EXPECT_EQ(a.Concat(b), b.Concat(a));
  EXPECT_EQ(a.Concat(b).Concat(c), a.Concat(b.Concat(c)));
  EXPECT_EQ(a.Concat(a), a);
  // Absorption: (a (+) b) (+) a == a (+) b — the paper's termination remark.
  EXPECT_EQ(a.Concat(b).Concat(a), a.Concat(b));
}

TEST_P(ConcatPropertyTest, ConcatMatchesPointwiseOr) {
  Rng rng(GetParam() + 77);
  GI a = RandomGi(&rng), b = RandomGi(&rng);
  GI u = a.Concat(b);
  for (double t = -1; t < 50; t += 0.5) {
    EXPECT_EQ(u.Contains(t), a.Contains(t) || b.Contains(t)) << t;
  }
}

TEST_P(ConcatPropertyTest, SubsetAgreesWithIntervalSet) {
  Rng rng(GetParam() + 177);
  GI a = RandomGi(&rng), b = RandomGi(&rng);
  EXPECT_EQ(a.SubsetOf(b), a.ToIntervalSet().SubsetOf(b.ToIntervalSet()));
  EXPECT_EQ(a.Overlaps(b), a.ToIntervalSet().Overlaps(b.ToIntervalSet()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcatPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace vqldb
