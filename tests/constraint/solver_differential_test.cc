// Cross-solver differential tests:
//  (a) on single-variable formulas, the graph-based dense-order solver must
//      agree with the exact IntervalSet normalization (two independent
//      decision procedures for the same theory);
//  (b) DNF entailment must agree with point-set inclusion of the denoted
//      sets.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/constraint/order_solver.h"
#include "src/constraint/temporal_constraint.h"

namespace vqldb {
namespace {

// A random conjunction of atoms over the single variable x0 with small
// integer constants, mirrored as a TemporalConstraint conjunction.
struct MirroredConjunction {
  OrderConjunction order;
  TemporalConstraint temporal;
};

MirroredConjunction RandomConjunction(Rng* rng) {
  CompareOp ops[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kEq,
                     CompareOp::kNe, CompareOp::kGe, CompareOp::kGt};
  MirroredConjunction out;
  std::vector<TemporalConstraint> parts;
  size_t n = 1 + rng->UniformU64(5);
  for (size_t i = 0; i < n; ++i) {
    CompareOp op = ops[rng->UniformU64(6)];
    double c = static_cast<double>(rng->UniformInt(0, 8));
    out.order.push_back(
        OrderAtom{OrderTerm::Var(0), op, OrderTerm::Const(c)});
    parts.push_back(TemporalConstraint::Atom(op, c));
  }
  out.temporal = TemporalConstraint::And(std::move(parts));
  return out;
}

class SolverDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverDifferentialTest, SatisfiabilityAgreesWithIntervalSemantics) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    MirroredConjunction c = RandomConjunction(&rng);
    bool graph_sat = OrderSolver::Satisfiable(c.order);
    bool interval_sat = c.temporal.Satisfiable();
    EXPECT_EQ(graph_sat, interval_sat)
        << ToString(c.order) << " vs " << c.temporal.ToString();
  }
}

TEST_P(SolverDifferentialTest, AtomEntailmentAgreesWithInclusion) {
  Rng rng(GetParam() + 1000);
  CompareOp ops[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kEq,
                     CompareOp::kNe, CompareOp::kGe, CompareOp::kGt};
  for (int trial = 0; trial < 40; ++trial) {
    MirroredConjunction c = RandomConjunction(&rng);
    CompareOp op = ops[rng.UniformU64(6)];
    double k = static_cast<double>(rng.UniformInt(0, 8));
    OrderAtom goal{OrderTerm::Var(0), op, OrderTerm::Const(k)};
    bool graph_entails = OrderSolver::Entails(c.order, goal);
    bool interval_entails = c.temporal.Entails(TemporalConstraint::Atom(op, k));
    EXPECT_EQ(graph_entails, interval_entails)
        << ToString(c.order) << " => " << goal.ToString();
  }
}

TEST_P(SolverDifferentialTest, DnfEntailmentAgreesWithInclusion) {
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 20; ++trial) {
    MirroredConjunction premise = RandomConjunction(&rng);
    // A small DNF goal mirrored both ways.
    OrderDnf dnf;
    std::vector<TemporalConstraint> disjuncts;
    size_t k = 1 + rng.UniformU64(3);
    for (size_t i = 0; i < k; ++i) {
      MirroredConjunction d = RandomConjunction(&rng);
      dnf.push_back(d.order);
      disjuncts.push_back(d.temporal);
    }
    TemporalConstraint goal = TemporalConstraint::Or(std::move(disjuncts));

    auto graph_entails = OrderSolver::EntailsDnf(premise.order, dnf);
    ASSERT_TRUE(graph_entails.ok());
    bool interval_entails = premise.temporal.Entails(goal);
    EXPECT_EQ(*graph_entails, interval_entails)
        << ToString(premise.order) << " => " << goal.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverDifferentialTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace vqldb
