#include "src/constraint/order_solver.h"

#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"

namespace vqldb {
namespace {

OrderAtom Atom(OrderTerm lhs, CompareOp op, OrderTerm rhs) {
  return OrderAtom{lhs, op, rhs};
}
OrderTerm V(int i) { return OrderTerm::Var(i); }
OrderTerm C(double v) { return OrderTerm::Const(v); }

TEST(OrderSolverTest, EmptyConjunctionSatisfiable) {
  EXPECT_TRUE(OrderSolver::Satisfiable({}));
}

TEST(OrderSolverTest, SimpleChainSatisfiable) {
  // x0 < x1 < x2
  EXPECT_TRUE(OrderSolver::Satisfiable(
      {Atom(V(0), CompareOp::kLt, V(1)), Atom(V(1), CompareOp::kLt, V(2))}));
}

TEST(OrderSolverTest, StrictCycleUnsat) {
  EXPECT_FALSE(OrderSolver::Satisfiable(
      {Atom(V(0), CompareOp::kLt, V(1)), Atom(V(1), CompareOp::kLe, V(0))}));
}

TEST(OrderSolverTest, WeakCycleIsEquality) {
  // x0 <= x1 <= x0 forces equality — satisfiable, but x0 != x1 breaks it.
  OrderConjunction eq = {Atom(V(0), CompareOp::kLe, V(1)),
                         Atom(V(1), CompareOp::kLe, V(0))};
  EXPECT_TRUE(OrderSolver::Satisfiable(eq));
  eq.push_back(Atom(V(0), CompareOp::kNe, V(1)));
  EXPECT_FALSE(OrderSolver::Satisfiable(eq));
}

TEST(OrderSolverTest, SelfDisequalityUnsat) {
  EXPECT_FALSE(OrderSolver::Satisfiable({Atom(V(0), CompareOp::kNe, V(0))}));
}

TEST(OrderSolverTest, ConstantsAreOrdered) {
  // x <= 1 and 2 <= x is unsat because 1 < 2.
  EXPECT_FALSE(OrderSolver::Satisfiable(
      {Atom(V(0), CompareOp::kLe, C(1)), Atom(C(2), CompareOp::kLe, V(0))}));
  // x <= 2 and 1 <= x is fine.
  EXPECT_TRUE(OrderSolver::Satisfiable(
      {Atom(V(0), CompareOp::kLe, C(2)), Atom(C(1), CompareOp::kLe, V(0))}));
}

TEST(OrderSolverTest, EqualToTwoDistinctConstantsUnsat) {
  EXPECT_FALSE(OrderSolver::Satisfiable(
      {Atom(V(0), CompareOp::kEq, C(1)), Atom(V(0), CompareOp::kEq, C(2))}));
}

TEST(OrderSolverTest, DenseOrderAllowsBetween) {
  // 1 < x < 2 has a solution in a dense order (no integers assumption).
  EXPECT_TRUE(OrderSolver::Satisfiable(
      {Atom(C(1), CompareOp::kLt, V(0)), Atom(V(0), CompareOp::kLt, C(2))}));
}

TEST(OrderSolverTest, EntailsTransitivity) {
  OrderConjunction c = {Atom(V(0), CompareOp::kLt, V(1)),
                        Atom(V(1), CompareOp::kLt, V(2))};
  EXPECT_TRUE(OrderSolver::Entails(c, Atom(V(0), CompareOp::kLt, V(2))));
  EXPECT_TRUE(OrderSolver::Entails(c, Atom(V(0), CompareOp::kLe, V(2))));
  EXPECT_TRUE(OrderSolver::Entails(c, Atom(V(0), CompareOp::kNe, V(2))));
  EXPECT_FALSE(OrderSolver::Entails(c, Atom(V(2), CompareOp::kLt, V(0))));
  EXPECT_FALSE(OrderSolver::Entails(c, Atom(V(0), CompareOp::kEq, V(2))));
}

TEST(OrderSolverTest, EntailsWithConstants) {
  OrderConjunction c = {Atom(V(0), CompareOp::kGt, C(3)),
                        Atom(V(0), CompareOp::kLt, C(5))};
  EXPECT_TRUE(OrderSolver::Entails(c, Atom(V(0), CompareOp::kGt, C(2))));
  EXPECT_TRUE(OrderSolver::Entails(c, Atom(V(0), CompareOp::kNe, C(7))));
  EXPECT_FALSE(OrderSolver::Entails(c, Atom(V(0), CompareOp::kGt, C(4))));
}

TEST(OrderSolverTest, UnsatEntailsEverything) {
  OrderConjunction c = {Atom(V(0), CompareOp::kLt, V(0))};
  EXPECT_TRUE(OrderSolver::Entails(c, Atom(V(5), CompareOp::kEq, C(9))));
}

TEST(OrderSolverTest, EntailsAll) {
  OrderConjunction c = {Atom(V(0), CompareOp::kEq, V(1))};
  EXPECT_TRUE(OrderSolver::EntailsAll(
      c, {Atom(V(0), CompareOp::kLe, V(1)), Atom(V(1), CompareOp::kLe, V(0))}));
  EXPECT_FALSE(OrderSolver::EntailsAll(
      c, {Atom(V(0), CompareOp::kLe, V(1)), Atom(V(0), CompareOp::kNe, V(1))}));
}

TEST(OrderSolverTest, EntailsDnfBasic) {
  // 1 < x < 2  entails  (x < 2) or (x > 5).
  OrderConjunction c = {Atom(C(1), CompareOp::kLt, V(0)),
                        Atom(V(0), CompareOp::kLt, C(2))};
  OrderDnf dnf = {{Atom(V(0), CompareOp::kLt, C(2))},
                  {Atom(V(0), CompareOp::kGt, C(5))}};
  auto r = OrderSolver::EntailsDnf(c, dnf);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(OrderSolverTest, EntailsDnfCaseSplit) {
  // x < 1 or x > 3 does NOT follow from x != 2 alone... but over a dense
  // order x < 3 and x > 1 and x != 2 does entail (x < 2) or (x > 2).
  OrderConjunction c = {Atom(C(1), CompareOp::kLt, V(0)),
                        Atom(V(0), CompareOp::kLt, C(3)),
                        Atom(V(0), CompareOp::kNe, C(2))};
  OrderDnf dnf = {{Atom(V(0), CompareOp::kLt, C(2))},
                  {Atom(V(0), CompareOp::kGt, C(2))}};
  auto r = OrderSolver::EntailsDnf(c, dnf);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(OrderSolverTest, EntailsDnfNegative) {
  OrderConjunction c = {Atom(C(0), CompareOp::kLt, V(0))};
  OrderDnf dnf = {{Atom(V(0), CompareOp::kGt, C(5))},
                  {Atom(V(0), CompareOp::kLt, C(3))}};
  auto r = OrderSolver::EntailsDnf(c, dnf);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);  // x = 4 is a counterexample
}

TEST(OrderSolverTest, EmptyDnfIsFalse) {
  auto r = OrderSolver::EntailsDnf({Atom(C(0), CompareOp::kLt, V(0))}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  auto r2 =
      OrderSolver::EntailsDnf({Atom(V(0), CompareOp::kLt, V(0))}, {});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);  // unsat entails false
}

TEST(OrderSolverTest, SatisfiableDnf) {
  OrderDnf dnf = {{Atom(V(0), CompareOp::kLt, V(0))},  // unsat branch
                  {Atom(V(0), CompareOp::kLt, C(3))}};
  EXPECT_TRUE(OrderSolver::SatisfiableDnf(dnf));
  EXPECT_FALSE(OrderSolver::SatisfiableDnf({{Atom(V(0), CompareOp::kNe, V(0))}}));
}

TEST(OrderSolverTest, SolveProducesModel) {
  OrderConjunction c = {Atom(V(0), CompareOp::kLt, V(1)),
                        Atom(V(1), CompareOp::kLe, C(5)),
                        Atom(V(0), CompareOp::kGt, C(2))};
  auto solution = OrderSolver::Solve(c);
  ASSERT_TRUE(solution.ok());
  std::map<int, double> m(solution->begin(), solution->end());
  EXPECT_LT(m[0], m[1]);
  EXPECT_LE(m[1], 5);
  EXPECT_GT(m[0], 2);
}

TEST(OrderSolverTest, SolveUnsatReturnsNotFound) {
  EXPECT_TRUE(OrderSolver::Solve({Atom(V(0), CompareOp::kLt, V(0))})
                  .status()
                  .IsNotFound());
}

// Random conjunctions: Solve's model actually satisfies every atom, and
// satisfiability is consistent with Solve.
class OrderSolverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderSolverPropertyTest, SolveModelsSatisfy) {
  Rng rng(GetParam());
  CompareOp ops[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kEq,
                     CompareOp::kNe, CompareOp::kGe, CompareOp::kGt};
  OrderConjunction c;
  size_t n = 1 + rng.UniformU64(8);
  for (size_t i = 0; i < n; ++i) {
    OrderTerm lhs = rng.Bernoulli(0.7)
                        ? V(static_cast<int>(rng.UniformU64(4)))
                        : C(static_cast<double>(rng.UniformInt(0, 5)));
    OrderTerm rhs = rng.Bernoulli(0.7)
                        ? V(static_cast<int>(rng.UniformU64(4)))
                        : C(static_cast<double>(rng.UniformInt(0, 5)));
    c.push_back(Atom(lhs, ops[rng.UniformU64(6)], rhs));
  }
  auto solution = OrderSolver::Solve(c);
  EXPECT_EQ(solution.ok(), OrderSolver::Satisfiable(c)) << ToString(c);
  if (!solution.ok()) return;
  std::map<int, double> m(solution->begin(), solution->end());
  auto value = [&](const OrderTerm& t) {
    return t.is_var() ? m.at(t.variable) : t.constant;
  };
  for (const OrderAtom& atom : c) {
    EXPECT_TRUE(EvalCompare(value(atom.lhs), atom.op, value(atom.rhs)))
        << atom.ToString() << " under model of " << ToString(c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderSolverPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace vqldb
