#include "src/constraint/temporal_constraint.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace vqldb {
namespace {

using TC = TemporalConstraint;

TEST(TemporalConstraintTest, TrueFalseSemantics) {
  EXPECT_EQ(TC::True().ToIntervalSet(), IntervalSet::All());
  EXPECT_TRUE(TC::False().ToIntervalSet().IsEmpty());
  EXPECT_TRUE(TC::True().Satisfiable());
  EXPECT_FALSE(TC::False().Satisfiable());
}

TEST(TemporalConstraintTest, AtomSemantics) {
  EXPECT_TRUE(TC::Atom(CompareOp::kLt, 5).ToIntervalSet().Contains(4.9));
  EXPECT_FALSE(TC::Atom(CompareOp::kLt, 5).ToIntervalSet().Contains(5));
  EXPECT_TRUE(TC::Atom(CompareOp::kLe, 5).ToIntervalSet().Contains(5));
  EXPECT_TRUE(TC::Atom(CompareOp::kEq, 5).ToIntervalSet().Contains(5));
  EXPECT_FALSE(TC::Atom(CompareOp::kEq, 5).ToIntervalSet().Contains(5.1));
  EXPECT_FALSE(TC::Atom(CompareOp::kNe, 5).ToIntervalSet().Contains(5));
  EXPECT_TRUE(TC::Atom(CompareOp::kNe, 5).ToIntervalSet().Contains(5.1));
  EXPECT_TRUE(TC::Atom(CompareOp::kGe, 5).ToIntervalSet().Contains(5));
  EXPECT_FALSE(TC::Atom(CompareOp::kGt, 5).ToIntervalSet().Contains(5));
}

TEST(TemporalConstraintTest, PaperDurationPattern) {
  // gi1's duration in the Rope example: t > a1 and t < b1.
  TC c = TC::And({TC::Atom(CompareOp::kGt, 0), TC::Atom(CompareOp::kLt, 10)});
  IntervalSet s = c.ToIntervalSet();
  EXPECT_FALSE(s.Contains(0));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(10));
  EXPECT_EQ(s.fragment_count(), 1u);
}

TEST(TemporalConstraintTest, DisjunctionForNonContinuousScene) {
  // "a meaningful scene does not always correspond to a single continuous
  // sequence of frames" — disjunction of two fragments.
  TC c = TC::Or({TC::ClosedInterval(0, 5), TC::ClosedInterval(20, 30)});
  IntervalSet s = c.ToIntervalSet();
  EXPECT_EQ(s.fragment_count(), 2u);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(10));
  EXPECT_TRUE(s.Contains(25));
}

TEST(TemporalConstraintTest, EmptyConjunctionIsTrue) {
  EXPECT_EQ(TC::And({}).ToIntervalSet(), IntervalSet::All());
  EXPECT_TRUE(TC::Or({}).ToIntervalSet().IsEmpty());
}

TEST(TemporalConstraintTest, UnsatisfiableConjunction) {
  TC c = TC::And({TC::Atom(CompareOp::kGt, 5), TC::Atom(CompareOp::kLt, 3)});
  EXPECT_FALSE(c.Satisfiable());
}

TEST(TemporalConstraintTest, EntailmentBasic) {
  TC narrow = TC::And({TC::Atom(CompareOp::kGt, 2), TC::Atom(CompareOp::kLt, 4)});
  TC wide = TC::And({TC::Atom(CompareOp::kGt, 0), TC::Atom(CompareOp::kLt, 10)});
  EXPECT_TRUE(narrow.Entails(wide));
  EXPECT_FALSE(wide.Entails(narrow));
  EXPECT_TRUE(narrow.Entails(narrow));
  EXPECT_TRUE(TC::False().Entails(narrow));  // ex falso
  EXPECT_TRUE(narrow.Entails(TC::True()));
}

TEST(TemporalConstraintTest, EntailmentOpenVsClosed) {
  EXPECT_TRUE(TC::And({TC::Atom(CompareOp::kGt, 0), TC::Atom(CompareOp::kLt, 5)})
                  .Entails(TC::ClosedInterval(0, 5)));
  EXPECT_FALSE(TC::ClosedInterval(0, 5).Entails(
      TC::And({TC::Atom(CompareOp::kGt, 0), TC::Atom(CompareOp::kLt, 5)})));
}

TEST(TemporalConstraintTest, FromIntervalSetRoundTrips) {
  IntervalSet s({TimeInterval::Closed(0, 5), TimeInterval::Open(9, 12),
                 TimeInterval::Point(20)});
  EXPECT_EQ(TC::FromIntervalSet(s).ToIntervalSet(), s);
}

TEST(TemporalConstraintTest, FromIntervalSetUnbounded) {
  IntervalSet s({TimeInterval::AtMost(3), TimeInterval::AtLeast(10, true)});
  EXPECT_EQ(TC::FromIntervalSet(s).ToIntervalSet(), s);
}

TEST(TemporalConstraintTest, NegationPushesToAtoms) {
  TC c = TC::And({TC::Atom(CompareOp::kGe, 0), TC::Atom(CompareOp::kLe, 5)});
  TC n = c.Negation();
  IntervalSet s = n.ToIntervalSet();
  EXPECT_FALSE(s.Contains(3));
  EXPECT_TRUE(s.Contains(-0.5));
  EXPECT_TRUE(s.Contains(5.5));
  EXPECT_EQ(s, c.ToIntervalSet().Complement());
}

TEST(TemporalConstraintTest, ToStringReadable) {
  TC c = TC::Or({TC::And({TC::Atom(CompareOp::kGt, 1), TC::Atom(CompareOp::kLt, 5)}),
                 TC::Atom(CompareOp::kEq, 7)});
  EXPECT_EQ(c.ToString(), "(t > 1 and t < 5) or t = 7");
}

TEST(TemporalConstraintTest, AtomCount) {
  TC c = TC::Or({TC::ClosedInterval(0, 1), TC::Atom(CompareOp::kEq, 9)});
  EXPECT_EQ(c.AtomCount(), 3u);
  EXPECT_EQ(TC::True().AtomCount(), 0u);
}

TEST(TemporalConstraintTest, EquivalenceIsSemantic) {
  TC a = TC::ClosedInterval(0, 5);
  TC b = TC::And({TC::Atom(CompareOp::kGe, 0), TC::Atom(CompareOp::kLe, 5)});
  EXPECT_TRUE(a.EquivalentTo(b));
  EXPECT_FALSE(a.EquivalentTo(TC::ClosedInterval(0, 6)));
}

// Random formula sweeps: negation is complement; entailment is reflexive
// and transitive.
class TemporalPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  TC RandomFormula(Rng* rng, int depth = 2) {
    if (depth == 0 || rng->Bernoulli(0.4)) {
      CompareOp ops[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kEq,
                         CompareOp::kNe, CompareOp::kGe, CompareOp::kGt};
      return TC::Atom(ops[rng->UniformU64(6)],
                      static_cast<double>(rng->UniformInt(0, 10)));
    }
    std::vector<TC> children;
    size_t n = 1 + rng->UniformU64(3);
    for (size_t i = 0; i < n; ++i) {
      children.push_back(RandomFormula(rng, depth - 1));
    }
    return rng->Bernoulli(0.5) ? TC::And(std::move(children))
                               : TC::Or(std::move(children));
  }
};

TEST_P(TemporalPropertyTest, NegationIsComplement) {
  Rng rng(GetParam());
  TC c = RandomFormula(&rng);
  EXPECT_EQ(c.Negation().ToIntervalSet(), c.ToIntervalSet().Complement())
      << c.ToString();
}

TEST_P(TemporalPropertyTest, EntailmentReflexiveAndTransitive) {
  Rng rng(GetParam() + 500);
  TC a = RandomFormula(&rng), b = RandomFormula(&rng), c = RandomFormula(&rng);
  EXPECT_TRUE(a.Entails(a));
  if (a.Entails(b) && b.Entails(c)) {
    EXPECT_TRUE(a.Entails(c));
  }
}

TEST_P(TemporalPropertyTest, FromToIntervalSetIsIdentityOnSemantics) {
  Rng rng(GetParam() + 900);
  TC c = RandomFormula(&rng);
  IntervalSet s = c.ToIntervalSet();
  EXPECT_EQ(TC::FromIntervalSet(s).ToIntervalSet(), s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace vqldb
