#include "src/constraint/interval.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vqldb {
namespace {

TEST(TimeIntervalTest, ClosedContainsEndpoints) {
  TimeInterval iv = TimeInterval::Closed(1, 5);
  EXPECT_TRUE(iv.Contains(1));
  EXPECT_TRUE(iv.Contains(3));
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_FALSE(iv.Contains(0.999));
  EXPECT_FALSE(iv.Contains(5.001));
}

TEST(TimeIntervalTest, OpenExcludesEndpoints) {
  TimeInterval iv = TimeInterval::Open(1, 5);
  EXPECT_FALSE(iv.Contains(1));
  EXPECT_TRUE(iv.Contains(1.001));
  EXPECT_FALSE(iv.Contains(5));
}

TEST(TimeIntervalTest, HalfOpenVariants) {
  EXPECT_TRUE(TimeInterval::ClosedOpen(1, 5).Contains(1));
  EXPECT_FALSE(TimeInterval::ClosedOpen(1, 5).Contains(5));
  EXPECT_FALSE(TimeInterval::OpenClosed(1, 5).Contains(1));
  EXPECT_TRUE(TimeInterval::OpenClosed(1, 5).Contains(5));
}

TEST(TimeIntervalTest, PointInterval) {
  TimeInterval p = TimeInterval::Point(4);
  EXPECT_FALSE(p.IsEmpty());
  EXPECT_TRUE(p.Contains(4));
  EXPECT_FALSE(p.Contains(4.0001));
  EXPECT_EQ(p.Measure(), 0);
}

TEST(TimeIntervalTest, EmptyIntervals) {
  EXPECT_TRUE(TimeInterval::Open(2, 2).IsEmpty());
  EXPECT_TRUE(TimeInterval::ClosedOpen(2, 2).IsEmpty());
  EXPECT_TRUE(TimeInterval::Closed(3, 2).IsEmpty());
  EXPECT_FALSE(TimeInterval::Closed(2, 2).IsEmpty());
}

TEST(TimeIntervalTest, UnboundedRays) {
  TimeInterval le = TimeInterval::AtMost(3);
  EXPECT_TRUE(le.Contains(-1e18));
  EXPECT_TRUE(le.Contains(3));
  EXPECT_FALSE(le.Contains(3.1));
  TimeInterval gt = TimeInterval::AtLeast(3, /*open=*/true);
  EXPECT_FALSE(gt.Contains(3));
  EXPECT_TRUE(gt.Contains(1e18));
  EXPECT_TRUE(TimeInterval::All().Contains(0));
}

TEST(TimeIntervalTest, OverlapCases) {
  TimeInterval a = TimeInterval::Closed(0, 5);
  EXPECT_TRUE(a.Overlaps(TimeInterval::Closed(5, 9)));   // touch at point
  EXPECT_TRUE(a.Overlaps(TimeInterval::Closed(3, 4)));   // nested
  EXPECT_FALSE(a.Overlaps(TimeInterval::Closed(6, 9)));  // disjoint
  EXPECT_FALSE(a.Overlaps(TimeInterval::Open(5, 9)));    // open excludes 5
}

TEST(TimeIntervalTest, MergeableTouching) {
  TimeInterval a = TimeInterval::ClosedOpen(0, 2);
  TimeInterval b = TimeInterval::Closed(2, 4);
  EXPECT_TRUE(a.Mergeable(b));
  EXPECT_TRUE(b.Mergeable(a));  // symmetric
  // (0,2) and (2,4) miss the point 2.
  EXPECT_FALSE(TimeInterval::Open(0, 2).Mergeable(TimeInterval::Open(2, 4)));
}

TEST(TimeIntervalTest, MergeWith) {
  TimeInterval m =
      TimeInterval::Closed(0, 2).MergeWith(TimeInterval::Closed(1, 5));
  EXPECT_EQ(m, TimeInterval::Closed(0, 5));
}

TEST(TimeIntervalTest, IntersectBasic) {
  TimeInterval i =
      TimeInterval::Closed(0, 5).Intersect(TimeInterval::Closed(3, 9));
  EXPECT_EQ(i, TimeInterval::Closed(3, 5));
}

TEST(TimeIntervalTest, IntersectRespectsOpenness) {
  TimeInterval i =
      TimeInterval::Open(0, 5).Intersect(TimeInterval::Closed(0, 5));
  EXPECT_EQ(i, TimeInterval::Open(0, 5));
}

TEST(TimeIntervalTest, IntersectDisjointIsEmpty) {
  EXPECT_TRUE(TimeInterval::Closed(0, 1)
                  .Intersect(TimeInterval::Closed(2, 3))
                  .IsEmpty());
}

TEST(TimeIntervalTest, SubsetOf) {
  EXPECT_TRUE(TimeInterval::Closed(1, 2).SubsetOf(TimeInterval::Closed(0, 5)));
  EXPECT_TRUE(TimeInterval::Open(0, 5).SubsetOf(TimeInterval::Closed(0, 5)));
  EXPECT_FALSE(TimeInterval::Closed(0, 5).SubsetOf(TimeInterval::Open(0, 5)));
  EXPECT_TRUE(TimeInterval::Closed(3, 2).SubsetOf(TimeInterval::Point(9)));
}

TEST(TimeIntervalTest, Measure) {
  EXPECT_EQ(TimeInterval::Closed(2, 7).Measure(), 5);
  EXPECT_EQ(TimeInterval::Open(3, 2).Measure(), 0);  // empty
  EXPECT_TRUE(std::isinf(TimeInterval::AtLeast(0).Measure()));
}

TEST(TimeIntervalTest, EqualityTreatsAllEmptiesEqual) {
  EXPECT_EQ(TimeInterval::Open(1, 1), TimeInterval::Closed(9, 2));
  EXPECT_NE(TimeInterval::Closed(0, 1), TimeInterval::ClosedOpen(0, 1));
}

TEST(TimeIntervalTest, ToString) {
  EXPECT_EQ(TimeInterval::Closed(1, 2).ToString(), "[1, 2]");
  EXPECT_EQ(TimeInterval::Open(1, 2).ToString(), "(1, 2)");
  EXPECT_EQ(TimeInterval::ClosedOpen(1, 2).ToString(), "[1, 2)");
  EXPECT_EQ(TimeInterval::Point(5).ToString(), "{5}");
  EXPECT_EQ(TimeInterval::AtMost(3).ToString(), "(-inf, 3]");
  EXPECT_EQ(TimeInterval::Open(2, 2).ToString(), "{}");
}

}  // namespace
}  // namespace vqldb
