// Columnar segment tests: Build/Merge determinism, EqualRange (including the
// first-column run directory), sealed-probe semantics over segments plus the
// unsealed tail, compaction behavior, wide-row (arity > 64) sorted probes,
// and the seal digest's independence from evaluation thread count.

#include "src/engine/columnar.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/engine/evaluator.h"
#include "src/engine/interpretation.h"
#include "src/lang/parser.h"
#include "src/model/database.h"
#include "src/model/term_dict.h"

namespace vqldb {
namespace {

Fact F(const std::string& pred, std::initializer_list<int64_t> args) {
  Fact f;
  f.relation = pred;
  for (int64_t a : args) f.args.push_back(Value::Int(a));
  return f;
}

uint32_t Id(int64_t v) { return TermDict::Global().IdOf(Value::Int(v)); }

// ---------------------------------------------------------------------------
// Segment primitives.

TEST(SegmentTest, BuildSortsRowsAndMapsSourcePositions) {
  // Rows in insertion order: (3,1) (1,2) (2,9) (1,1) — sorted lexicographic
  // order is (1,1) (1,2) (2,9) (3,1).
  const uint32_t ids[] = {3, 1, 1, 2, 2, 9, 1, 1};
  const uint32_t src[] = {0, 1, 2, 3};
  auto seg = Segment::Build(ids, src, 4, 2);
  ASSERT_EQ(seg->rows, 4u);
  EXPECT_EQ(seg->at(0, 0), 1u);
  EXPECT_EQ(seg->at(1, 0), 1u);
  EXPECT_EQ(seg->at(0, 3), 3u);
  // Source positions follow the rows through the sort.
  EXPECT_EQ(seg->src[0], 3u);  // (1,1) was inserted fourth
  EXPECT_EQ(seg->src[1], 1u);
  EXPECT_EQ(seg->src[2], 2u);
  EXPECT_EQ(seg->src[3], 0u);
}

TEST(SegmentTest, HeadDirectoryListsDistinctFirstColumnRuns) {
  const uint32_t ids[] = {5, 0, 2, 0, 2, 1, 2, 2, 9, 0};
  const uint32_t src[] = {0, 1, 2, 3, 4};
  auto seg = Segment::Build(ids, src, 5, 2);
  ASSERT_EQ(seg->head_vals, (std::vector<uint32_t>{2, 5, 9}));
  ASSERT_EQ(seg->head_starts, (std::vector<uint32_t>{0, 3, 4, 5}));
}

TEST(SegmentTest, EqualRangeFindsPrefixRuns) {
  const uint32_t ids[] = {5, 0, 2, 0, 2, 1, 2, 2, 9, 0};
  const uint32_t src[] = {0, 1, 2, 3, 4};
  auto seg = Segment::Build(ids, src, 5, 2);
  uint32_t k2[] = {2};
  auto [lo, hi] = seg->EqualRange(k2, 1);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 3u);
  uint32_t k21[] = {2, 1};
  auto [lo2, hi2] = seg->EqualRange(k21, 2);
  EXPECT_EQ(lo2, 1u);
  EXPECT_EQ(hi2, 2u);
  // Misses on either column produce empty ranges.
  uint32_t k7[] = {7};
  auto [mlo, mhi] = seg->EqualRange(k7, 1);
  EXPECT_EQ(mlo, mhi);
  uint32_t k23[] = {2, 3};
  auto [mlo2, mhi2] = seg->EqualRange(k23, 2);
  EXPECT_EQ(mlo2, mhi2);
}

TEST(SegmentTest, EqualRangeWithHintSkipsTheRunDirectory) {
  // The lo_hint path bypasses the head directory and binary-searches the
  // column slices directly; both formulations must agree.
  std::vector<uint32_t> ids;
  std::vector<uint32_t> src;
  for (uint32_t i = 0; i < 100; ++i) {
    ids.push_back(i / 10);
    ids.push_back(i % 10);
    src.push_back(i);
  }
  auto seg = Segment::Build(ids.data(), src.data(), 100, 2);
  for (uint32_t v = 0; v < 12; ++v) {
    uint32_t key[] = {v};
    auto with_dir = seg->EqualRange(key, 1);
    // Linear-scan oracle.
    uint32_t lo = 100, hi = 0;
    for (uint32_t r = 0; r < 100; ++r) {
      if (seg->at(0, r) == v) {
        lo = std::min(lo, r);
        hi = r + 1;
      }
    }
    if (hi == 0) {
      EXPECT_EQ(with_dir.first, with_dir.second) << "key " << v;
    } else {
      EXPECT_EQ(with_dir, std::make_pair(lo, hi)) << "key " << v;
      // A hint inside the run bypasses the directory and restricts the low
      // end only.
      auto hinted = seg->EqualRange(key, 1, with_dir.first + 1);
      EXPECT_EQ(hinted.first, with_dir.first + 1);
      EXPECT_EQ(hinted.second, with_dir.second);
    }
  }
}

TEST(SegmentTest, MergeEqualsBuildOfConcatenation) {
  // Split 60 distinct rows into three interleaved batches; merging the three
  // sorted runs must reproduce the segment built from all rows at once.
  std::vector<uint32_t> all_ids;
  std::vector<uint32_t> all_src;
  std::vector<std::vector<uint32_t>> batch_ids(3);
  std::vector<std::vector<uint32_t>> batch_src(3);
  for (uint32_t i = 0; i < 60; ++i) {
    uint32_t row[2] = {(i * 7) % 30, i};
    all_ids.insert(all_ids.end(), row, row + 2);
    all_src.push_back(i);
    batch_ids[i % 3].insert(batch_ids[i % 3].end(), row, row + 2);
    batch_src[i % 3].push_back(i);
  }
  std::vector<std::shared_ptr<const Segment>> runs;
  for (int b = 0; b < 3; ++b) {
    runs.push_back(Segment::Build(batch_ids[b].data(), batch_src[b].data(),
                                  batch_src[b].size(), 2));
  }
  auto merged = Segment::Merge(runs);
  auto oneshot = Segment::Build(all_ids.data(), all_src.data(), 60, 2);
  EXPECT_EQ(merged->cols, oneshot->cols);
  EXPECT_EQ(merged->src, oneshot->src);
  EXPECT_EQ(merged->head_vals, oneshot->head_vals);
  EXPECT_EQ(merged->head_starts, oneshot->head_starts);
}

// ---------------------------------------------------------------------------
// Interpretation-level sealed probes.

TEST(ColumnarProbeTest, ProbeSortedCoversSegmentsAndTail) {
  Interpretation interp;
  interp.Add(F("edge", {1, 2}));
  interp.Add(F("edge", {2, 3}));
  interp.Add(F("edge", {1, 3}));
  interp.SealSegments();
  interp.Add(F("edge", {1, 4}));  // unsealed tail

  uint32_t key[] = {Id(1)};
  std::vector<size_t> out;
  interp.ProbeSorted("edge", key, 1, 2, &out);
  // Ascending insertion-order positions, spanning sealed rows and the tail.
  EXPECT_EQ(out, (std::vector<size_t>{0, 2, 3}));

  uint32_t full[] = {Id(1), Id(3)};
  interp.ProbeSorted("edge", full, 2, 2, &out);
  EXPECT_EQ(out, (std::vector<size_t>{2}));

  uint32_t miss[] = {Id(9)};
  interp.ProbeSorted("edge", miss, 1, 2, &out);
  EXPECT_TRUE(out.empty());
}

TEST(ColumnarProbeTest, RepeatedSealsCompactAndStayCorrect) {
  // More batches than kMaxRunsPerArity forces at least one k-way compaction;
  // probe results must be identical to a never-sealed interpretation.
  Interpretation sealed;
  Interpretation plain;
  for (int64_t batch = 0; batch < 12; ++batch) {
    for (int64_t i = 0; i < 5; ++i) {
      Fact f = F("r", {(batch * 5 + i) % 7, batch, i});
      sealed.Add(f);
      plain.Add(f);
    }
    sealed.SealSegments();
  }
  for (int64_t v = 0; v < 8; ++v) {
    uint32_t key[] = {Id(v)};
    std::vector<size_t> a;
    std::vector<size_t> b;
    sealed.ProbeSorted("r", key, 1, 3, &a);
    plain.ProbeSorted("r", key, 1, 3, &b);
    EXPECT_EQ(a, b) << "key " << v;
  }
}

TEST(ColumnarProbeTest, MixedAritiesProbeIndependently) {
  Interpretation interp;
  interp.Add(F("p", {1, 2}));
  interp.Add(F("p", {1, 2, 3}));
  interp.SealSegments();
  uint32_t key[] = {Id(1)};
  std::vector<size_t> out;
  interp.ProbeSorted("p", key, 1, 2, &out);
  EXPECT_EQ(out, (std::vector<size_t>{0}));
  interp.ProbeSorted("p", key, 1, 3, &out);
  EXPECT_EQ(out, (std::vector<size_t>{1}));
}

// ---------------------------------------------------------------------------
// Wide rows: the arity > 64 LookupMulti fast path answers contiguous-prefix
// masks by sorted-segment binary search with the same reference-validity
// contract as the hash indexes.

Fact WideFact(int64_t head, int64_t second) {
  Fact f;
  f.relation = "wide";
  f.args.push_back(Value::Int(head));
  f.args.push_back(Value::Int(second));
  for (int i = 0; i < 68; ++i) f.args.push_back(Value::Int(1000 + i));
  return f;
}

TEST(ColumnarProbeTest, WideRowPrefixMasksUseSortedProbes) {
  Interpretation interp;
  interp.Add(WideFact(1, 10));
  interp.Add(WideFact(2, 20));
  interp.Add(WideFact(1, 30));
  interp.SealSegments();

  const auto& hits =
      interp.LookupMulti("wide", 0b1, {Value::Int(1)});
  EXPECT_EQ(hits, (std::vector<size_t>{0, 2}));
  const auto& both =
      interp.LookupMulti("wide", 0b11, {Value::Int(1), Value::Int(30)});
  EXPECT_EQ(both, (std::vector<size_t>{2}));
  EXPECT_TRUE(interp.LookupMulti("wide", 0b1, {Value::Int(9)}).empty());

  // Unsealed tail rows are part of the answer too.
  interp.Add(WideFact(1, 40));
  const auto& with_tail =
      interp.LookupMulti("wide", 0b1, {Value::Int(1)});
  EXPECT_EQ(with_tail, (std::vector<size_t>{0, 2, 3}));
}

TEST(ColumnarProbeDeathTest, AddWhileHoldingWideProbeReferenceDies) {
  Interpretation interp;
  interp.Add(WideFact(1, 10));
  const auto& ref = interp.LookupMulti("wide", 0b1, {Value::Int(1)});
  ASSERT_EQ(ref.size(), 1u);
  // Freeze turns an insert-while-iterating violation into a loud death at
  // the mutation site — identical contract to the hash-index path.
  interp.Freeze();
  EXPECT_DEATH(interp.Add(WideFact(3, 30)), "frozen");
}

// ---------------------------------------------------------------------------
// Seal digests: evaluating the same program at different thread counts must
// seal byte-identical segments (the determinism anchor for merge joins).

TEST(ColumnarDeterminismTest, SealedDigestsAgreeAcrossThreadCounts) {
  auto run = [](size_t num_threads) {
    VideoDatabase db;
    std::vector<ObjectId> nodes;
    for (int i = 0; i < 12; ++i) {
      nodes.push_back(*db.CreateEntity("n" + std::to_string(i)));
    }
    for (int i = 0; i < 12; ++i) {
      for (int d : {1, 3, 5}) {
        VQLDB_CHECK_OK(db.AssertFact("edge",
                                     {Value::Oid(nodes[i]),
                                      Value::Oid(nodes[(i + d) % 12])}));
      }
    }
    auto program = Parser::ParseProgram(R"(
      reach(X, Y) <- edge(X, Y).
      reach(X, Z) <- reach(X, Y), edge(Y, Z).
      tri(X, Y, Z) <- edge(X, Y), edge(Y, Z), edge(Z, X).
    )");
    VQLDB_CHECK(program.ok());
    std::vector<Rule> rules;
    for (const Rule* r : program->Rules()) rules.push_back(*r);
    EvalOptions options;
    options.num_threads = num_threads;
    options.merge_join = true;
    auto eval = Evaluator::Make(&db, rules, options);
    VQLDB_CHECK(eval.ok());
    auto fp = eval->Fixpoint();
    VQLDB_CHECK(fp.ok());
    fp->SealSegments();
    std::vector<uint64_t> digests;
    for (const std::string& pred : fp->Predicates()) {
      digests.push_back(fp->SealedDigest(pred));
    }
    return digests;
  };
  std::vector<uint64_t> base = run(1);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
}

}  // namespace
}  // namespace vqldb
