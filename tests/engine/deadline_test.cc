// Deadline and cancellation semantics: an expired deadline or a tripped
// CancelToken makes evaluation return a structured error (DeadlineExceeded /
// Cancelled) from the next round boundary — never an abort, never a hang —
// and the session/shell layers surface it as an ordinary query error.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "src/common/cancel.h"
#include "src/engine/evaluator.h"
#include "src/engine/query.h"
#include "src/lang/parser.h"
#include "src/obs/metrics.h"

namespace vqldb {
namespace {

using Clock = std::chrono::steady_clock;

// A chain EDB long enough that transitive closure takes several rounds.
void SeedChain(VideoDatabase* db, int n) {
  for (int i = 0; i <= n; ++i) {
    ASSERT_TRUE(db->CreateEntity("n" + std::to_string(i)).ok());
  }
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(db->AssertFact("edge",
                               {Value::Oid(*db->Resolve("n" + std::to_string(i))),
                                Value::Oid(*db->Resolve("n" + std::to_string(i + 1)))})
                    .ok());
  }
}

std::vector<Rule> ClosureRules() {
  std::vector<Rule> rules;
  for (const char* text : {"path(X, Y) <- edge(X, Y).",
                           "path(X, Z) <- path(X, Y), edge(Y, Z)."}) {
    auto r = Parser::ParseRule(text);
    EXPECT_TRUE(r.ok()) << r.status();
    rules.push_back(*r);
  }
  return rules;
}

TEST(DeadlineTest, ExpiredDeadlineFailsStructuredSerial) {
  VideoDatabase db;
  SeedChain(&db, 32);
  EvalOptions options;
  options.num_threads = 1;
  options.deadline = Clock::now() - std::chrono::seconds(1);
  auto eval = Evaluator::Make(&db, ClosureRules(), options);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_FALSE(fp.ok());
  EXPECT_TRUE(fp.status().IsDeadlineExceeded()) << fp.status();
}

TEST(DeadlineTest, ExpiredDeadlineFailsStructuredParallel) {
  VideoDatabase db;
  SeedChain(&db, 32);
  EvalOptions options;
  options.num_threads = 4;
  options.deadline = Clock::now() - std::chrono::seconds(1);
  auto eval = Evaluator::Make(&db, ClosureRules(), options);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_FALSE(fp.ok());
  EXPECT_TRUE(fp.status().IsDeadlineExceeded()) << fp.status();
}

TEST(DeadlineTest, FutureDeadlineDoesNotInterfere) {
  VideoDatabase db;
  SeedChain(&db, 16);
  EvalOptions options;
  options.deadline = Clock::now() + std::chrono::minutes(10);
  auto eval = Evaluator::Make(&db, ClosureRules(), options);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok()) << fp.status();
  // 16-node chain: 16*17/2 = 136 path facts.
  EXPECT_EQ(fp->FactsFor("path").size(), 136u);
}

TEST(DeadlineTest, PreCancelledTokenFailsCancelled) {
  VideoDatabase db;
  SeedChain(&db, 8);
  EvalOptions options;
  options.cancel = std::make_shared<CancelToken>();
  options.cancel->Cancel();
  auto eval = Evaluator::Make(&db, ClosureRules(), options);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_FALSE(fp.ok());
  EXPECT_TRUE(fp.status().IsCancelled()) << fp.status();
}

TEST(DeadlineTest, CancelTokenResetRestoresEvaluation) {
  VideoDatabase db;
  SeedChain(&db, 8);
  EvalOptions options;
  options.cancel = std::make_shared<CancelToken>();
  options.cancel->Cancel();
  options.cancel->Reset();
  auto eval = Evaluator::Make(&db, ClosureRules(), options);
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval->Fixpoint().ok());
}

TEST(DeadlineTest, QuerySessionSurfacesDeadlineExceeded) {
  VideoDatabase db;
  SeedChain(&db, 32);
  QuerySession session(&db);
  ASSERT_TRUE(session.AddRule("path(X, Y) <- edge(X, Y).").ok());
  ASSERT_TRUE(session.AddRule("path(X, Z) <- path(X, Y), edge(Y, Z).").ok());

  session.mutable_options()->deadline = Clock::now() - std::chrono::seconds(1);
  auto result = session.Query("?- path(X, Y).");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();

  // Clearing the deadline lets the same session answer the same query — the
  // failed attempt left no poisoned state behind.
  session.mutable_options()->deadline.reset();
  auto retry = session.Query("?- path(X, Y).");
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry->size(), 32u * 33u / 2u);
}

TEST(DeadlineTest, ExplainAnalyzeSurfacesDeadlineExceeded) {
  VideoDatabase db;
  SeedChain(&db, 32);
  QuerySession session(&db);
  ASSERT_TRUE(session.AddRule("path(X, Y) <- edge(X, Y).").ok());
  ASSERT_TRUE(session.AddRule("path(X, Z) <- path(X, Y), edge(Y, Z).").ok());
  session.mutable_options()->deadline = Clock::now() - std::chrono::seconds(1);
  auto explained = session.Explain("?- path(X, Y).", /*analyze=*/true);
  ASSERT_FALSE(explained.ok());
  EXPECT_TRUE(explained.status().IsDeadlineExceeded()) << explained.status();
}

TEST(DeadlineTest, DeadlineExceededCounterIncrements) {
  auto* counter = obs::MetricsRegistry::Global().GetCounter(
      "vqldb_queries_deadline_exceeded_total");
  uint64_t before = counter->value();

  VideoDatabase db;
  SeedChain(&db, 16);
  EvalOptions options;
  options.deadline = Clock::now() - std::chrono::seconds(1);
  auto eval = Evaluator::Make(&db, ClosureRules(), options);
  ASSERT_TRUE(eval.ok());
  ASSERT_FALSE(eval->Fixpoint().ok());
  EXPECT_GE(counter->value(), before + 1);
}

}  // namespace
}  // namespace vqldb
