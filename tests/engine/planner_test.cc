// The cost-based planner: cardinality estimates from stored EDB counts and
// collector sketches, strategy choice (bound goals go goal-directed, free
// goals with a cached fixpoint stay bottom-up), availability gating, and
// the sys_plan_choices accounting under EvalStrategy::kAuto.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/logging.h"
#include "src/engine/magic.h"
#include "src/engine/planner.h"
#include "src/engine/query.h"
#include "src/lang/parser.h"
#include "src/obs/stats.h"

namespace vqldb {
namespace {

std::vector<Rule> ParseRules(std::initializer_list<const char*> texts) {
  std::vector<Rule> rules;
  for (const char* text : texts) {
    auto r = Parser::ParseRule(text);
    EXPECT_TRUE(r.ok()) << r.status();
    rules.push_back(*r);
  }
  return rules;
}

// A chain c0 -> ... -> c(n-1) with edge facts.
std::unique_ptr<VideoDatabase> ChainDb(size_t n) {
  auto db = std::make_unique<VideoDatabase>();
  std::vector<ObjectId> nodes;
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(*db->CreateEntity("c" + std::to_string(i)));
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    VQLDB_CHECK_OK(db->AssertFact(
        "edge", {Value::Oid(nodes[i]), Value::Oid(nodes[i + 1])}));
  }
  return db;
}

TEST(PlannerTest, EstimateRowsUsesExactEdbCounts) {
  auto db = ChainDb(40);
  Planner planner(db.get(), obs::StatsSnapshot{});
  EXPECT_DOUBLE_EQ(planner.EstimateRows("edge"), 39.0);
  // Unknown predicate with no sketches: cold-start default.
  EXPECT_DOUBLE_EQ(planner.EstimateRows("nosuch"), Planner::kDefaultRows);
}

TEST(PlannerTest, EstimateCandidatesShrinksWithBoundColumns) {
  auto db = ChainDb(40);
  Planner planner(db.get(), obs::StatsSnapshot{});
  double all_free = planner.EstimateCandidates("edge", 0, 2);
  double bound_first = planner.EstimateCandidates("edge", 1, 2);
  EXPECT_GT(all_free, bound_first);
  EXPECT_GE(bound_first, 1.0 / 64);
}

TEST(PlannerTest, ObservedSelectivityOverridesDerivedEstimate) {
  auto db = ChainDb(10);
  obs::StatsSnapshot snapshot;
  snapshot.selectivity.push_back(obs::SelectivityView{
      "edge", "bf", /*probes=*/100, /*candidates=*/50, /*ewma=*/0.5});
  Planner planner(db.get(), std::move(snapshot));
  // 9 rows * 0.5 observed selectivity.
  EXPECT_NEAR(planner.EstimateCandidates("edge", 1, 2), 4.5, 1e-9);
}

TEST(PlannerTest, BoundGoalPrefersGoalDirected) {
  auto db = ChainDb(40);
  auto rules = ParseRules({"path(X, Y) <- edge(X, Y).",
                           "path(X, Z) <- path(X, Y), edge(Y, Z)."});
  Planner planner(db.get(), obs::StatsSnapshot{});
  PlanInputs inputs;
  inputs.goal_predicate = "path";
  inputs.goal_bound_mask = 1;
  inputs.goal_arity = 2;
  inputs.all_rules = &rules;
  inputs.cone_rules = &rules;
  PlanChoice choice = planner.Choose(inputs);
  EXPECT_NE(choice.strategy, EvalStrategy::kFixpoint);
  EXPECT_LT(choice.cost_qsqr, choice.cost_fixpoint);
  EXPECT_NE(choice.reason.find("bound goal"), std::string::npos);
}

TEST(PlannerTest, CachedFixpointWinsForFreeGoals) {
  auto db = ChainDb(40);
  auto rules = ParseRules({"path(X, Y) <- edge(X, Y).",
                           "path(X, Z) <- path(X, Y), edge(Y, Z)."});
  Planner planner(db.get(), obs::StatsSnapshot{});
  PlanInputs inputs;
  inputs.goal_predicate = "path";
  inputs.goal_bound_mask = 0;
  inputs.goal_arity = 2;
  inputs.all_rules = &rules;
  inputs.cone_rules = &rules;
  inputs.fixpoint_cached = true;
  PlanChoice choice = planner.Choose(inputs);
  EXPECT_EQ(choice.strategy, EvalStrategy::kFixpoint);
  EXPECT_NE(choice.reason.find("fixpoint cached"), std::string::npos);
}

TEST(PlannerTest, FreeGoalWithWholeProgramConeGoesBottomUp) {
  // No goal constants and a cone spanning every rule: demand guards and
  // top-down recursion cannot prune anything, so the planner must not pay
  // their overhead even when the coarse cost estimates would favor them.
  auto db = ChainDb(40);
  auto rules = ParseRules({"path(X, Y) <- edge(X, Y).",
                           "path(X, Z) <- path(X, Y), edge(Y, Z)."});
  Planner planner(db.get(), obs::StatsSnapshot{});
  PlanInputs inputs;
  inputs.goal_predicate = "path";
  inputs.goal_bound_mask = 0;
  inputs.goal_arity = 2;
  inputs.all_rules = &rules;
  inputs.cone_rules = &rules;
  PlanChoice choice = planner.Choose(inputs);
  EXPECT_EQ(choice.strategy, EvalStrategy::kFixpoint);
  EXPECT_NE(choice.reason.find("nothing to prune"), std::string::npos);
}

TEST(PlannerTest, UnavailableStrategiesAreNeverChosen) {
  auto db = ChainDb(10);
  auto rules = ParseRules({"path(X, Y) <- edge(X, Y)."});
  Planner planner(db.get(), obs::StatsSnapshot{});
  PlanInputs inputs;
  inputs.goal_predicate = "path";
  inputs.goal_bound_mask = 1;
  inputs.goal_arity = 2;
  inputs.all_rules = &rules;
  inputs.cone_rules = &rules;
  inputs.magic_available = false;
  inputs.qsqr_available = false;
  PlanChoice choice = planner.Choose(inputs);
  EXPECT_EQ(choice.strategy, EvalStrategy::kFixpoint);
}

TEST(PlannerTest, AutoPicksGoalDirectedForBoundGoalEndToEnd) {
  auto db = ChainDb(60);
  QuerySession session(db.get());
  session.set_cache_enabled(false);
  ASSERT_TRUE(session
                  .Load("path(X, Y) <- edge(X, Y).\n"
                        "path(X, Z) <- path(X, Y), edge(Y, Z).\n")
                  .ok());
  ASSERT_EQ(session.options().strategy, EvalStrategy::kAuto);
  auto bound = session.Query("?- path(c50, Y).");
  ASSERT_TRUE(bound.ok()) << bound.status();
  const QueryExecInfo& info = session.last_exec_info();
  EXPECT_TRUE(info.used_qsqr || info.used_magic)
      << "auto chose " << info.strategy;
  EXPECT_FALSE(info.plan_reason.empty());
  EXPECT_EQ(bound->rows.size(), 9u);
}

TEST(PlannerTest, AutoRecordsPlanChoicesIntoSysRelation) {
  auto db = ChainDb(20);
  QuerySession session(db.get());
  session.set_cache_enabled(false);
  ASSERT_TRUE(session.Load("path(X, Y) <- edge(X, Y).\n").ok());
  obs::StatsCollector::Global().Reset();
  ASSERT_TRUE(session.Query("?- path(c3, Y).").ok());
  auto snap = obs::StatsCollector::Global().Snapshot();
  bool saw = false;
  for (const auto& pc : snap.plan_choices) {
    if (pc.fingerprint == "path(?, $0)") {
      saw = true;
      EXPECT_GE(pc.count, 1u);
      EXPECT_FALSE(pc.strategy.empty());
    }
  }
  EXPECT_TRUE(saw);
  // And the sys_plan_choices relation surfaces the same rows.
  auto rows = session.Query("?- sys_plan_choices(F, S, C, L).");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_FALSE(rows->rows.empty());
}

TEST(PlannerTest, ExplainShowsAutoChoiceWithCosts) {
  auto db = ChainDb(20);
  QuerySession session(db.get());
  ASSERT_TRUE(session.Load("path(X, Y) <- edge(X, Y).\n").ok());
  auto text = session.Explain("?- path(c3, Y).", /*analyze=*/false);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("strategy: "), std::string::npos) << *text;
  EXPECT_NE(text->find("est. cost"), std::string::npos) << *text;
  // Forcing a strategy still explains the planner's view, marked forced.
  session.mutable_options()->strategy = EvalStrategy::kFixpoint;
  auto forced = session.Explain("?- path(c3, Y).", /*analyze=*/false);
  ASSERT_TRUE(forced.ok()) << forced.status();
  EXPECT_NE(forced->find("strategy: fixpoint (forced"), std::string::npos)
      << *forced;
}

TEST(PlannerTest, OrderBodyPutsSelectiveLiteralFirst) {
  // tagged/1 has one fact, edge/2 has many: the selectivity order starts
  // from tagged even though it is written last.
  auto db = ChainDb(50);
  VQLDB_CHECK_OK(db->AssertFact("tagged", {Value::Oid(*db->Resolve("c7"))}));
  Planner planner(db.get(), obs::StatsSnapshot{});
  EvalOptions options;
  options.reorder_body = true;
  options.body_orderer = &planner;
  auto eval = Evaluator::Make(
      db.get(), ParseRules({"hit(X, Y) <- edge(X, Y), tagged(Y)."}),
      options);
  ASSERT_TRUE(eval.ok()) << eval.status();
  const CompiledRule& compiled = eval->compiled_rules()[0];
  ASSERT_EQ(compiled.steps.size(), 2u);
  EXPECT_EQ(compiled.steps[0].literal.predicate, "tagged");
  EXPECT_EQ(compiled.steps[1].literal.predicate, "edge");
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("hit").size(), 1u);
}

}  // namespace
}  // namespace vqldb
