#include "src/engine/aggregates.h"

#include <gtest/gtest.h>

#include "src/common/logging.h"

namespace vqldb {
namespace {

class AggregatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<QuerySession>(&db_);
    ASSERT_TRUE(session_->Load(R"(
      object anchor1 { role: "anchor", salary: 100 }.
      object anchor2 { role: "anchor", salary: 120 }.
      object guest1 { role: "guest", salary: 10 }.
      interval g1 { duration: (t >= 0 and t <= 10),
                    entities: {anchor1, guest1} }.
      interval g2 { duration: (t >= 5 and t <= 20),
                    entities: {anchor1, anchor2} }.
      interval g3 { duration: (t >= 30 and t <= 35),
                    entities: {guest1} }.
      role(anchor1, "anchor").
      role(anchor2, "anchor").
      role(guest1, "guest").
      salary(anchor1, 100).
      salary(anchor2, 120).
      salary(guest1, 10).
    )")
                    .ok());
    VQLDB_CHECK_OK(session_->AddRule(
        "appearance(O, R, G) <- Interval(G), Object(O), O in G.entities, "
        "role(O, R)."));
    auto r = session_->Query("?- appearance(O, R, G).");
    VQLDB_CHECK_OK(r.status());
    result_ = *r;
  }

  VideoDatabase db_;
  std::unique_ptr<QuerySession> session_;
  QueryResult result_;
};

TEST_F(AggregatesTest, CountRows) {
  // anchor1 in g1,g2; anchor2 in g2; guest1 in g1,g3 = 5 rows.
  EXPECT_EQ(aggregates::Count(result_), 5u);
}

TEST_F(AggregatesTest, CountDistinct) {
  auto objects = aggregates::CountDistinct(result_, 0);
  ASSERT_TRUE(objects.ok());
  EXPECT_EQ(*objects, 3u);
  auto roles = aggregates::CountDistinct(result_, 1);
  ASSERT_TRUE(roles.ok());
  EXPECT_EQ(*roles, 2u);
  EXPECT_TRUE(aggregates::CountDistinct(result_, 9).status().IsOutOfRange());
}

TEST_F(AggregatesTest, GroupCountByRole) {
  auto groups = aggregates::GroupCount(result_, 1);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->at(Value::String("anchor")), 3u);
  EXPECT_EQ(groups->at(Value::String("guest")), 2u);
}

TEST_F(AggregatesTest, SumNumericColumn) {
  ASSERT_TRUE(session_->AddRule("pay(O, S) <- salary(O, S).").ok());
  auto pay = session_->Query("?- pay(O, S).");
  ASSERT_TRUE(pay.ok());
  auto total = aggregates::Sum(*pay, 1);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 230);
  // Non-numeric column errors.
  EXPECT_TRUE(aggregates::Sum(result_, 1).status().IsTypeError());
}

TEST_F(AggregatesTest, MinMax) {
  ASSERT_TRUE(session_->AddRule("pay(O, S) <- salary(O, S).").ok());
  auto pay = session_->Query("?- pay(O, S).");
  ASSERT_TRUE(pay.ok());
  EXPECT_EQ(*aggregates::Min(*pay, 1), Value::Int(10));
  EXPECT_EQ(*aggregates::Max(*pay, 1), Value::Int(120));
  QueryResult empty;
  empty.columns = {"X"};
  EXPECT_TRUE(aggregates::Min(empty, 0).status().IsNotFound());
}

TEST_F(AggregatesTest, TotalDurationCountsOverlapOnce) {
  // guest1 appears in g1 [0,10] and g3 [30,35]: 15s total.
  ASSERT_TRUE(session_
                  ->AddRule("guest_time(G) <- Interval(G), Object(O), "
                            "O in G.entities, O.role = \"guest\".")
                  .ok());
  auto guest = session_->Query("?- guest_time(G).");
  ASSERT_TRUE(guest.ok());
  EXPECT_EQ(*aggregates::TotalDuration(db_, *guest, 0), 15);

  // anchor1 appears in g1 [0,10] and g2 [5,20]: overlap counted once = 20s.
  ASSERT_TRUE(session_
                  ->AddRule("anchor1_time(G) <- Interval(G), Object(O), "
                            "O in G.entities, O.salary = 100.")
                  .ok());
  auto anchor = session_->Query("?- anchor1_time(G).");
  ASSERT_TRUE(anchor.ok());
  EXPECT_EQ(*aggregates::TotalDuration(db_, *anchor, 0), 20);
}

TEST_F(AggregatesTest, TotalDurationRejectsNonIntervals) {
  EXPECT_TRUE(
      aggregates::TotalDuration(db_, result_, 1).status().IsTypeError());
}

TEST_F(AggregatesTest, ColumnIndexByName) {
  EXPECT_EQ(*aggregates::ColumnIndex(result_, "O"), 0u);
  EXPECT_EQ(*aggregates::ColumnIndex(result_, "G"), 2u);
  EXPECT_TRUE(aggregates::ColumnIndex(result_, "Z").status().IsNotFound());
}

}  // namespace
}  // namespace vqldb
