// THM-3: termination and semantics of constructive rules (Section 6.1) —
// the idempotent concatenation I (+) I == I and the extended active domain
// (Defs. 19-21).

#include <gtest/gtest.h>

#include "src/engine/query.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

Rule R(const char* text) {
  auto r = Parser::ParseRule(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

void SeedIntervals(VideoDatabase* db, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    double begin = 10.0 * static_cast<double>(i);
    ASSERT_TRUE(db->CreateInterval("g" + std::to_string(i),
                                   GeneralizedInterval::Single(begin, begin + 5))
                    .ok());
  }
}

TEST(ConstructiveRulesTest, AllPairsConcatenationTerminates) {
  // The worst-case constructive program: concatenate every pair of
  // intervals, recursively. Termination follows from id canonicalization
  // (subset closure of the 3 base intervals: at most 2^3 - 1 = 7 objects).
  VideoDatabase db;
  SeedIntervals(&db, 3);
  auto eval = Evaluator::Make(
      &db, {R("cat(G1 ++ G2) <- Interval(G1), Interval(G2).")});
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok()) << fp.status();
  // Every subset of {g0, g1, g2} of size >= 1 is reachable by pairwise
  // concatenation: 3 singletons + 3 pairs + 1 triple = 7.
  EXPECT_EQ(db.AllIntervals().size(), 7u);
  EXPECT_EQ(db.derived_interval_count(), 4u);
  EXPECT_EQ(fp->FactsFor("cat").size(), 7u);
}

TEST(ConstructiveRulesTest, FixpointStableUnderReapplication) {
  VideoDatabase db;
  SeedIntervals(&db, 3);
  auto eval = Evaluator::Make(
      &db, {R("cat(G1 ++ G2) <- Interval(G1), Interval(G2).")});
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  auto again = eval->ApplyOnce(*fp);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*again == *fp);
  EXPECT_EQ(db.derived_interval_count(), 4u);  // no new objects either
}

TEST(ConstructiveRulesTest, DerivedObjectCarriesMergedStructure) {
  VideoDatabase db;
  ObjectId o = *db.CreateEntity("o");
  ObjectId a = *db.CreateInterval("a", GeneralizedInterval::Single(0, 5));
  ObjectId b = *db.CreateInterval("b", GeneralizedInterval::Single(20, 30));
  ASSERT_TRUE(db.AddEntityToInterval(a, o).ok());
  ASSERT_TRUE(db.AddEntityToInterval(b, o).ok());
  auto eval = Evaluator::Make(
      &db, {R("joined(G1 ++ G2) <- Interval(G1), Interval(G2), Object(o), "
              "o in G1.entities, o in G2.entities, G1.duration => (t < 10).")});
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  // joined(a (+) a) = joined(a) and joined(a (+) b).
  EXPECT_EQ(fp->FactsFor("joined").size(), 2u);
  ASSERT_EQ(db.derived_interval_count(), 1u);
  ObjectId ab = db.DerivedIntervals()[0];
  IntervalSet duration = *db.DurationOf(ab);
  EXPECT_TRUE(duration.Contains(3));
  EXPECT_TRUE(duration.Contains(25));
  EXPECT_FALSE(duration.Contains(10));
  EXPECT_EQ(db.EntitiesOf(ab)->size(), 1u);
}

TEST(ConstructiveRulesTest, DerivedIntervalsVisibleToLaterRules) {
  // A derived interval created by one rule participates in Interval()
  // literals of other rules in later rounds (the dynamic extended domain of
  // Section 6: new objects join the domain as they are created).
  VideoDatabase db;
  SeedIntervals(&db, 2);
  auto eval = Evaluator::Make(
      &db, {R("cat(G1 ++ G2) <- Interval(G1), Interval(G2)."),
            R("wide(G) <- Interval(G), G.duration => (t >= 0 and t <= 15), "
              "gap(G).") ,
            R("gap(G) <- Interval(G).")});
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  // g0 = [0,5], g1 = [10,15], g0 (+) g1 = [0,5] u [10,15]; all three entail
  // (t in [0,15]) and appear in `wide`.
  EXPECT_EQ(fp->FactsFor("wide").size(), 3u);
}

TEST(ConstructiveRulesTest, ChainedConcatInHead) {
  VideoDatabase db;
  SeedIntervals(&db, 3);
  auto eval = Evaluator::Make(
      &db,
      {R("all(G1 ++ G2 ++ G3) <- Interval(G1), Interval(G2), Interval(G3), "
         "G1.duration => (t < 6), G2.duration => (t >= 10 and t < 16), "
         "G3.duration => (t >= 20).")});
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  ASSERT_EQ(fp->FactsFor("all").size(), 1u);
  ObjectId abc = fp->FactsFor("all")[0].args[0].oid_value();
  EXPECT_EQ(db.BaseIdsOf(abc)->size(), 3u);
}

TEST(ConstructiveRulesTest, ConstantConcatOperands) {
  VideoDatabase db;
  SeedIntervals(&db, 2);
  auto eval = Evaluator::Make(
      &db, {R("merged(g0 ++ g1) <- Interval(g0), Interval(g1).")});
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  ASSERT_EQ(fp->FactsFor("merged").size(), 1u);
  EXPECT_TRUE(db.IsInterval(fp->FactsFor("merged")[0].args[0].oid_value()));
}

TEST(ConstructiveRulesTest, ExtendedActiveDomainMode) {
  // Def. 21 mode: Interval(G) ranges over pairwise concatenations even when
  // no constructive rule creates them.
  VideoDatabase db;
  SeedIntervals(&db, 2);
  EvalOptions options;
  options.extended_active_domain = true;
  auto eval = Evaluator::Make(
      &db, {R("wide(G) <- Interval(G), G.duration => (t >= 0 and t <= 15), "
              "G.duration => (t >= 0).")},
      options);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  // Without the extension only g0 and g1 qualify; with it, g0 (+) g1 also
  // answers — three facts.
  EXPECT_EQ(fp->FactsFor("wide").size(), 3u);

  // The default mode yields two.
  VideoDatabase db2;
  SeedIntervals(&db2, 2);
  auto eval2 = Evaluator::Make(
      &db2, {R("wide(G) <- Interval(G), G.duration => (t >= 0 and t <= 15), "
               "G.duration => (t >= 0).")});
  ASSERT_TRUE(eval2.ok());
  auto fp2 = eval2->Fixpoint();
  ASSERT_TRUE(fp2.ok());
  EXPECT_EQ(fp2->FactsFor("wide").size(), 2u);
}

TEST(ConstructiveRulesTest, MaxFactsGuardStopsRunaway) {
  VideoDatabase db;
  SeedIntervals(&db, 8);
  EvalOptions options;
  options.max_facts = 50;
  auto eval = Evaluator::Make(
      &db, {R("cat(G1 ++ G2) <- Interval(G1), Interval(G2).")}, options);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  // Subset closure of 8 intervals = 255 objects > 50 facts: the guard trips.
  EXPECT_TRUE(fp.status().IsResourceExhausted());
}

TEST(ConstructiveRulesTest, NonIntervalConcatOperandSkipsValuation) {
  VideoDatabase db;
  ASSERT_TRUE(db.CreateEntity("e").ok());
  SeedIntervals(&db, 1);
  auto eval = Evaluator::Make(
      &db, {R("cat(X ++ Y) <- Anyobject(X), Anyobject(Y).")});
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok()) << fp.status();
  // Only the interval-interval pair produces a head.
  EXPECT_EQ(fp->FactsFor("cat").size(), 1u);
}

}  // namespace
}  // namespace vqldb
