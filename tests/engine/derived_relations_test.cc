// EX-3: the derived relations of Section 6.2 (contains, same_object_in,
// concatenate_Gintervals) plus the bundled standard rule library.

#include <gtest/gtest.h>

#include "src/engine/query.h"
#include "src/storage/catalog.h"

namespace vqldb {
namespace {

constexpr const char* kArchive = R"(
  object reporter { name: "Reporter" }.
  object minister { name: "Minister" }.
  object reporter2 { name: "2nd Reporter" }.
  // Fig. 3's tv-news scenario: one generalized interval per object of
  // interest; the reporter's presence is non-continuous.
  interval occ_reporter { duration: (t >= 0 and t <= 10) or
                                    (t >= 30 and t <= 45),
                          entities: {reporter} }.
  interval occ_minister { duration: (t >= 5 and t <= 40),
                          entities: {minister} }.
  interval occ_reporter2 { duration: (t >= 32 and t <= 44),
                           entities: {reporter2} }.
  // A scene covering the whole broadcast.
  interval broadcast { duration: (t >= 0 and t <= 60),
                       entities: {reporter, minister, reporter2} }.
)";

class DerivedRelationsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<QuerySession>(&db_);
    ASSERT_TRUE(session_->Load(kArchive).ok());
  }

  std::vector<std::pair<std::string, std::string>> Pairs(
      const QueryResult& result) {
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& row : result.rows) {
      out.emplace_back(db_.DisplayName(row[0].oid_value()),
                       db_.DisplayName(row[1].oid_value()));
    }
    return out;
  }

  VideoDatabase db_;
  std::unique_ptr<QuerySession> session_;
};

TEST_F(DerivedRelationsTest, ContainsViaDurationEntailment) {
  // Section 6.2: contains(G1, G2) <- Interval(G1), Interval(G2),
  //                                  G2.duration => G1.duration.
  ASSERT_TRUE(session_
                  ->AddRule("contains(G1, G2) <- Interval(G1), Interval(G2), "
                            "G2.duration => G1.duration.")
                  .ok());
  auto r = session_->Query("?- contains(broadcast, G).");
  ASSERT_TRUE(r.ok());
  // The broadcast covers every occurrence interval (and itself).
  EXPECT_EQ(r->rows.size(), 4u);

  auto narrow = session_->Query("?- contains(occ_minister, G).");
  ASSERT_TRUE(narrow.ok());
  // occ_minister [5,40] contains occ_reporter2 [32,44]? No (44 > 40).
  // It contains only itself.
  EXPECT_EQ(narrow->rows.size(), 1u);
}

TEST_F(DerivedRelationsTest, ContainsHandlesNonContinuousIntervals) {
  ASSERT_TRUE(session_
                  ->AddRule("contains(G1, G2) <- Interval(G1), Interval(G2), "
                            "G2.duration => G1.duration.")
                  .ok());
  // occ_reporter's extent is [0,10] u [30,45]; a sub-fragment entails it.
  ASSERT_TRUE(session_->Load(R"(
    interval clip { duration: (t >= 2 and t <= 8) or (t >= 31 and t <= 33) }.
  )")
                  .ok());
  auto r = session_->Query("?- contains(occ_reporter, clip).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
  // But a fragment bridging the gap does not.
  ASSERT_TRUE(session_->Load(R"(
    interval bridge { duration: (t >= 8 and t <= 31) }.
  )")
                  .ok());
  auto none = session_->Query("?- contains(occ_reporter, bridge).");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->rows.empty());
}

TEST_F(DerivedRelationsTest, SameObjectIn) {
  ASSERT_TRUE(
      session_
          ->AddRule("same_object_in(G1, G2, O) <- Interval(G1), Interval(G2), "
                    "Object(O), O in G1.entities, O in G2.entities.")
          .ok());
  auto r = session_->Query("?- same_object_in(occ_reporter, broadcast, O).");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(db_.DisplayName(r->rows[0][0].oid_value()), "reporter");
}

TEST_F(DerivedRelationsTest, ConcatenateGintervalsConstructiveRule) {
  // Section 6.2's constructive rule, specialized to the minister.
  ASSERT_TRUE(session_
                  ->AddRule("concatenate_gintervals(G1 ++ G2) <- "
                            "Interval(G1), Interval(G2), Object(minister), "
                            "minister in G1.entities, "
                            "minister in G2.entities.")
                  .ok());
  auto r = session_->Query("?- concatenate_gintervals(G).");
  ASSERT_TRUE(r.ok());
  // G1, G2 range over {occ_minister, broadcast}: the derived objects are
  // occ_minister (self), broadcast (self) and the true concatenation.
  EXPECT_EQ(r->rows.size(), 3u);
  size_t derived = 0;
  for (const auto& row : r->rows) {
    auto kind = db_.KindOf(row[0].oid_value());
    ASSERT_TRUE(kind.ok());
    if (*kind == ObjectKind::kDerivedInterval) ++derived;
  }
  EXPECT_EQ(derived, 1u);
}

TEST_F(DerivedRelationsTest, StandardRuleLibraryLoads) {
  ASSERT_TRUE(session_->Load(StandardRuleLibrary()).ok());
  EXPECT_GE(session_->rules().size(), 6u);

  auto cooccur = session_->Query("?- cooccur(reporter, minister, G).");
  ASSERT_TRUE(cooccur.ok());
  // Only the broadcast scene lists both.
  ASSERT_EQ(cooccur->rows.size(), 1u);
  EXPECT_EQ(db_.DisplayName(cooccur->rows[0][0].oid_value()), "broadcast");

  auto equal_dur = session_->Query("?- equal_duration(G1, G2).");
  ASSERT_TRUE(equal_dur.ok());
  // Only reflexive pairs (all four intervals have distinct durations).
  EXPECT_EQ(equal_dur->rows.size(), 4u);

  auto appears = session_->Query("?- appears(reporter2, G).");
  ASSERT_TRUE(appears.ok());
  EXPECT_EQ(appears->rows.size(), 2u);  // occ_reporter2 and broadcast
}

TEST_F(DerivedRelationsTest, CoveredByIsConverseOfContains) {
  ASSERT_TRUE(session_->Load(StandardRuleLibrary()).ok());
  auto covered = session_->Query("?- covered_by(occ_reporter2, G).");
  ASSERT_TRUE(covered.ok());
  // [32,44] is covered by itself, by the broadcast [0,60] and by the
  // reporter's second fragment [30,45]; not by the minister's [5,40].
  EXPECT_EQ(covered->rows.size(), 3u);
}

TEST_F(DerivedRelationsTest, RulesComposeAcrossDefinitions) {
  // The paper: "the query language presents a facility that allows a user
  // to construct queries based on previous queries".
  ASSERT_TRUE(session_->Load(StandardRuleLibrary()).ok());
  ASSERT_TRUE(session_
                  ->AddRule("shared_scene(O1, O2) <- cooccur(O1, O2, G), "
                            "contains(G, G2), appears(O1, G2).")
                  .ok());
  auto r = session_->Query("?- shared_scene(reporter, minister).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);  // an answer exists (empty tuple row)
}

}  // namespace
}  // namespace vqldb
