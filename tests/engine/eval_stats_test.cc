// EvalStats: the MergeFrom folding contract (per-task blocks into the
// coordinator's totals) and the aggregate-stats invariance of the parallel
// engine — serial and parallel runs of the Rope program must report
// identical counter totals, not just identical fixpoints.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/engine/query.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

// The Section 5.2 database extract plus the recursive containment program
// (same shape as parallel_determinism_test).
constexpr const char* kRopeProgram = R"(
  object o1 { name: "David", role: "Victim" }.
  object o2 { name: "Philip", role: "Murderer" }.
  object o3 { name: "Brandon", role: "Murderer" }.
  object o9 { name: "Rupert Cadell" }.
  interval gi1 { duration: (t > 0 and t < 10),
                 entities: {o1, o2, o3},
                 subject: "murder" }.
  interval gi2 { duration: (t > 15 and t < 40),
                 entities: {o1, o2, o3, o9},
                 subject: "Giving a party" }.
  interval gi3 { duration: (t > 2 and t < 8),
                 entities: {o2, o3} }.
)";

constexpr const char* kRopeRules = R"(
  appears(O, G) <- Interval(G), Object(O), O in G.entities.
  contains(G1, G2) <- Interval(G1), Interval(G2),
                      G2.duration => G1.duration, G1 != G2.
  nested(G1, G2) <- contains(G1, G2).
  nested(G1, G3) <- nested(G1, G2), contains(G2, G3).
  together(O1, O2, G) <- appears(O1, G), appears(O2, G), O1 != O2.
)";

TEST(EvalStatsTest, MergeFromFoldsTaskCountersOnly) {
  EvalStats total;
  total.iterations = 3;
  total.delta_tuples = 11;
  total.derived_facts = 10;

  EvalStats task;
  task.iterations = 99;     // tasks cannot see round boundaries; not merged
  task.delta_tuples = 99;   // coordinator-only; not merged
  task.derived_facts = 5;
  task.rule_firings = 7;
  task.constraint_checks = 13;
  task.intervals_created = 2;
  task.parallel_tasks = 1;
  task.join_probes = 17;
  task.join_probe_hits = 11;

  total.MergeFrom(task);
  EXPECT_EQ(total.iterations, 3u);
  EXPECT_EQ(total.delta_tuples, 11u);
  EXPECT_EQ(total.derived_facts, 15u);
  EXPECT_EQ(total.rule_firings, 7u);
  EXPECT_EQ(total.constraint_checks, 13u);
  EXPECT_EQ(total.intervals_created, 2u);
  EXPECT_EQ(total.parallel_tasks, 1u);
  EXPECT_EQ(total.join_probes, 17u);
  EXPECT_EQ(total.join_probe_hits, 11u);
}

TEST(EvalStatsTest, MergeFromIsAdditiveOverManyBlocks) {
  EvalStats total;
  for (size_t i = 0; i < 10; ++i) {
    EvalStats block;
    block.derived_facts = i;
    block.join_probes = 2 * i;
    total.MergeFrom(block);
  }
  EXPECT_EQ(total.derived_facts, 45u);
  EXPECT_EQ(total.join_probes, 90u);
}

EvalStats RunRope(size_t num_threads) {
  auto db = std::make_unique<VideoDatabase>();
  QuerySession loader(db.get());
  EXPECT_TRUE(loader.Load(kRopeProgram).ok());
  auto program = Parser::ParseProgram(kRopeRules);
  EXPECT_TRUE(program.ok()) << program.status();
  std::vector<Rule> rules;
  for (const Rule* r : program->Rules()) rules.push_back(*r);

  EvalOptions options;
  options.num_threads = num_threads;
  auto eval = Evaluator::Make(db.get(), rules, options);
  EXPECT_TRUE(eval.ok()) << eval.status();
  auto fp = eval->Fixpoint();
  EXPECT_TRUE(fp.ok()) << fp.status();
  return eval->stats();
}

TEST(EvalStatsTest, ParallelRunsReportSerialAggregateStats) {
  EvalStats serial = RunRope(1);
  EXPECT_EQ(serial.parallel_tasks, 0u);
  EXPECT_GT(serial.derived_facts, 0u);
  EXPECT_GT(serial.join_probes, 0u);
  EXPECT_GE(serial.join_probes, serial.join_probe_hits);

  for (size_t threads : {size_t{2}, size_t{8}}) {
    EvalStats parallel = RunRope(threads);
    EXPECT_GT(parallel.parallel_tasks, 0u)
        << "parallel path not exercised at num_threads=" << threads;
    EXPECT_EQ(parallel.iterations, serial.iterations);
    EXPECT_EQ(parallel.derived_facts, serial.derived_facts);
    EXPECT_EQ(parallel.rule_firings, serial.rule_firings);
    EXPECT_EQ(parallel.constraint_checks, serial.constraint_checks);
    EXPECT_EQ(parallel.intervals_created, serial.intervals_created);
    EXPECT_EQ(parallel.join_probes, serial.join_probes);
    EXPECT_EQ(parallel.join_probe_hits, serial.join_probe_hits);
    EXPECT_EQ(parallel.delta_tuples, serial.delta_tuples);
  }
}

}  // namespace
}  // namespace vqldb
