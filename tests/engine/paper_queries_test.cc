// EX-2: the six example queries of Section 6.1, asked in the query language
// against the paper's Rope database, with the answers the paper's semantics
// prescribes.

#include <gtest/gtest.h>

#include "src/engine/query.h"

namespace vqldb {
namespace {

// The Section 5.2 database extract in the language's own syntax
// (a1=0, b1=10, a2=15, b2=40 so that a1 < b1 < a2 < b2).
constexpr const char* kRopeProgram = R"(
  object o1 { name: "David", role: "Victim" }.
  object o2 { name: "Philip", realname: "Farley Granger", role: "Murderer" }.
  object o3 { name: "Brandon", realname: "John Dall", role: "Murderer" }.
  object o4 { identification: "Chest" }.
  object o5 { name: "Janet", realname: "Joan Chandler" }.
  object o6 { name: "Kenneth", realname: "Douglas Dick" }.
  object o7 { name: "Mr.Kentley", realname: "Cedric Hardwicke" }.
  object o8 { name: "Mrs.Atwater", realname: "Constance Collier" }.
  object o9 { name: "Rupert Cadell", realname: "James Stewart" }.
  interval gi1 { duration: (t > 0 and t < 10),
                 entities: {o1, o2, o3, o4},
                 subject: "murder", victim: o1, murderer: {o2, o3} }.
  interval gi2 { duration: (t > 15 and t < 40),
                 entities: {o1, o2, o3, o4, o5, o6, o7, o8, o9},
                 subject: "Giving a party", host: {o2, o3},
                 guest: {o5, o6, o7, o8, o9} }.
  in(o1, o4, gi1).
  in(o1, o4, gi2).
)";

class PaperQueriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<QuerySession>(&db_);
    ASSERT_TRUE(session_->Load(kRopeProgram).ok());
  }

  std::vector<std::string> Names(const QueryResult& result) {
    std::vector<std::string> out;
    for (const auto& row : result.rows) {
      out.push_back(db_.DisplayName(row[0].oid_value()));
    }
    return out;
  }

  VideoDatabase db_;
  std::unique_ptr<QuerySession> session_;
};

TEST_F(PaperQueriesTest, Q1ObjectsInDomainOfGivenSequence) {
  // "list the objects appearing in the domain of a given sequence g":
  // q(O) <- Interval(g), Object(O), O in g.entities.   (g = gi1)
  ASSERT_TRUE(session_
                  ->AddRule("q1(O) <- Interval(gi1), Object(O), "
                            "O in gi1.entities.")
                  .ok());
  auto r = session_->Query("?- q1(O).");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(Names(*r), (std::vector<std::string>{"o1", "o2", "o3", "o4"}));
}

TEST_F(PaperQueriesTest, Q2IntervalsWhereObjectAppears) {
  // "list all generalized Intervals where the object o appears":
  // q(G) <- Interval(G), Object(o), o in G.entities.   (o = o9)
  ASSERT_TRUE(session_
                  ->AddRule("q2(G) <- Interval(G), Object(o9), "
                            "o9 in G.entities.")
                  .ok());
  auto r = session_->Query("?- q2(G).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(*r), (std::vector<std::string>{"gi2"}));
}

TEST_F(PaperQueriesTest, Q3ObjectWithinTemporalFrame) {
  // "does the object o appear in the domain of a given temporal frame
  // [a, b]": q(o) <- Interval(G), Object(o), o in G.entities,
  //                  G.duration => (t > a and t < b).
  ASSERT_TRUE(session_
                  ->AddRule("q3(G) <- Interval(G), Object(o1), "
                            "o1 in G.entities, "
                            "G.duration => (t > 0 and t < 12).")
                  .ok());
  auto r = session_->Query("?- q3(G).");
  ASSERT_TRUE(r.ok());
  // Only gi1's duration (0,10) entails (0,12); gi2's (15,40) does not.
  EXPECT_EQ(Names(*r), (std::vector<std::string>{"gi1"}));
}

TEST_F(PaperQueriesTest, Q4CoOccurrenceMembershipForm) {
  // "list all generalized intervals where the objects o1 and o2 appear
  // together" — membership form.
  ASSERT_TRUE(session_
                  ->AddRule("q4(G) <- Interval(G), Object(o1), Object(o5), "
                            "o1 in G.entities, o5 in G.entities.")
                  .ok());
  auto r = session_->Query("?- q4(G).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(*r), (std::vector<std::string>{"gi2"}));
}

TEST_F(PaperQueriesTest, Q4bCoOccurrenceSubsetForm) {
  // "... or equivalently by" the set-order subset form.
  ASSERT_TRUE(session_
                  ->AddRule("q4b(G) <- Interval(G), "
                            "{o1, o5} subset G.entities.")
                  .ok());
  auto membership = session_->Query("?- q4b(G).");
  ASSERT_TRUE(membership.ok());
  EXPECT_EQ(Names(*membership), (std::vector<std::string>{"gi2"}));

  // And the equivalence holds for every pair: {o2, o3} appear in both.
  ASSERT_TRUE(session_
                  ->AddRule("q4c(G) <- Interval(G), "
                            "{o2, o3} subset G.entities.")
                  .ok());
  auto both = session_->Query("?- q4c(G).");
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(Names(*both), (std::vector<std::string>{"gi1", "gi2"}));
}

TEST_F(PaperQueriesTest, Q5PairsInRelationWithinInterval) {
  // "list all pairs of objects, together with their corresponding
  // generalized interval, such that the two objects are in the relation
  // Rel within the generalized interval":
  // q(O1, O2, G) <- Interval(G), Object(O1), Object(O2), O1 in G.entities,
  //                 O2 in G.entities, Rel(O1, O2, G).
  ASSERT_TRUE(session_
                  ->AddRule("q5(O1, O2, G) <- Interval(G), Object(O1), "
                            "Object(O2), O1 in G.entities, O2 in G.entities, "
                            "in(O1, O2, G).")
                  .ok());
  auto r = session_->Query("?- q5(O1, O2, G).");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);  // (o1, o4) in both gi1 and gi2
  for (const auto& row : r->rows) {
    EXPECT_EQ(db_.DisplayName(row[0].oid_value()), "o1");
    EXPECT_EQ(db_.DisplayName(row[1].oid_value()), "o4");
  }
}

TEST_F(PaperQueriesTest, Q6IntervalsByAttributeValue) {
  // "find the generalized intervals containing an object O whose value for
  // the attribute A is val":
  // q(G) <- Interval(G), Object(O), O in G.entities, O.A = val.
  ASSERT_TRUE(session_
                  ->AddRule("q6(G) <- Interval(G), Object(O), "
                            "O in G.entities, O.name = \"Rupert Cadell\".")
                  .ok());
  auto r = session_->Query("?- q6(G).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(*r), (std::vector<std::string>{"gi2"}));

  ASSERT_TRUE(session_
                  ->AddRule("q6b(G, O) <- Interval(G), Object(O), "
                            "O in G.entities, O.role = \"Murderer\".")
                  .ok());
  auto murder_scenes = session_->Query("?- q6b(G, O).");
  ASSERT_TRUE(murder_scenes.ok());
  EXPECT_EQ(murder_scenes->rows.size(), 4u);  // {gi1, gi2} x {o2, o3}
}

TEST_F(PaperQueriesTest, QueryWithConstantFilter) {
  ASSERT_TRUE(session_
                  ->AddRule("appears(O, G) <- Interval(G), Object(O), "
                            "O in G.entities.")
                  .ok());
  auto r = session_->Query("?- appears(O, gi1).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns, (std::vector<std::string>{"O"}));
  EXPECT_EQ(r->rows.size(), 4u);
}

TEST_F(PaperQueriesTest, BuiltinGoalEnumerates) {
  auto intervals = session_->Query("?- Interval(G).");
  ASSERT_TRUE(intervals.ok());
  EXPECT_EQ(intervals->rows.size(), 2u);
  auto objects = session_->Query("?- Object(O).");
  ASSERT_TRUE(objects.ok());
  EXPECT_EQ(objects->rows.size(), 9u);
}

TEST_F(PaperQueriesTest, RepeatedQueryVariableFilters) {
  ASSERT_TRUE(session_->AddRule("pair(O, O2) <- in(O, O2, gi1).").ok());
  auto r = session_->Query("?- pair(X, X).");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());  // o1 != o4
}

}  // namespace
}  // namespace vqldb
