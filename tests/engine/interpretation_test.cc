#include "src/engine/interpretation.h"

#include <gtest/gtest.h>

namespace vqldb {
namespace {

Fact F(const std::string& pred, std::initializer_list<int64_t> args) {
  Fact f;
  f.relation = pred;
  for (int64_t a : args) f.args.push_back(Value::Int(a));
  return f;
}

TEST(InterpretationTest, AddAndContains) {
  Interpretation interp;
  EXPECT_TRUE(interp.Add(F("p", {1})));
  EXPECT_FALSE(interp.Add(F("p", {1})));  // dedup
  EXPECT_TRUE(interp.Contains(F("p", {1})));
  EXPECT_FALSE(interp.Contains(F("p", {2})));
  EXPECT_EQ(interp.size(), 1u);
}

TEST(InterpretationTest, FactsForPreservesInsertionOrder) {
  Interpretation interp;
  interp.Add(F("p", {3}));
  interp.Add(F("p", {1}));
  interp.Add(F("p", {2}));
  const auto& facts = interp.FactsFor("p");
  ASSERT_EQ(facts.size(), 3u);
  EXPECT_EQ(facts[0].args[0].int_value(), 3);
  EXPECT_EQ(facts[2].args[0].int_value(), 2);
}

TEST(InterpretationTest, UnknownPredicateEmpty) {
  Interpretation interp;
  EXPECT_TRUE(interp.FactsFor("nope").empty());
  EXPECT_TRUE(interp.Lookup("nope", 0, Value::Int(1)).empty());
}

TEST(InterpretationTest, LookupIndexesByPosition) {
  Interpretation interp;
  interp.Add(F("edge", {1, 2}));
  interp.Add(F("edge", {1, 3}));
  interp.Add(F("edge", {2, 3}));
  EXPECT_EQ(interp.Lookup("edge", 0, Value::Int(1)).size(), 2u);
  EXPECT_EQ(interp.Lookup("edge", 1, Value::Int(3)).size(), 2u);
  EXPECT_TRUE(interp.Lookup("edge", 0, Value::Int(9)).empty());
}

TEST(InterpretationTest, LookupIndexExtendsIncrementally) {
  Interpretation interp;
  interp.Add(F("p", {1}));
  EXPECT_EQ(interp.Lookup("p", 0, Value::Int(1)).size(), 1u);
  interp.Add(F("q", {1}));
  Fact another = F("p", {1});
  another.args.push_back(Value::Int(9));  // p(1, 9)
  interp.Add(another);
  // The index extends over facts added after the first lookup.
  EXPECT_EQ(interp.Lookup("p", 0, Value::Int(1)).size(), 2u);
}

TEST(InterpretationTest, NumericCrossKindLookup) {
  Interpretation interp;
  interp.Add(F("p", {2}));
  // Int(2) and Double(2.0) are Compare-equal and hash-equal.
  EXPECT_EQ(interp.Lookup("p", 0, Value::Double(2.0)).size(), 1u);
}

TEST(InterpretationTest, PredicatesSorted) {
  Interpretation interp;
  interp.Add(F("zeta", {1}));
  interp.Add(F("alpha", {1}));
  EXPECT_EQ(interp.Predicates(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(InterpretationTest, SubsetAndEquality) {
  Interpretation a, b;
  a.Add(F("p", {1}));
  b.Add(F("p", {1}));
  b.Add(F("q", {2}));
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_FALSE(b.SubsetOf(a));
  EXPECT_FALSE(a == b);
  a.Add(F("q", {2}));
  EXPECT_TRUE(a == b);
}

TEST(InterpretationTest, AllFactsCountsEverything) {
  Interpretation interp;
  interp.Add(F("p", {1}));
  interp.Add(F("q", {1}));
  interp.Add(F("q", {2}));
  EXPECT_EQ(interp.AllFacts().size(), 3u);
}

TEST(InterpretationTest, ToStringListsFacts) {
  Interpretation interp;
  interp.Add(F("p", {1}));
  EXPECT_EQ(interp.ToString(), "{p(1)}");
}

TEST(InterpretationTest, LookupMultiProbesBoundPositions) {
  Interpretation interp;
  interp.Add(F("edge", {1, 2}));
  interp.Add(F("edge", {1, 3}));
  interp.Add(F("edge", {2, 3}));
  const auto& facts = interp.FactsFor("edge");
  // Mask 0b11: both positions bound — exact-tuple probe.
  auto hits = interp.LookupMulti("edge", 0b11, {Value::Int(1), Value::Int(3)});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(facts[hits[0]], F("edge", {1, 3}));
  // Mask 0b10: only position 1 bound.
  EXPECT_EQ(interp.LookupMulti("edge", 0b10, {Value::Int(3)}).size(), 2u);
  EXPECT_TRUE(interp.LookupMulti("edge", 0b11,
                                 {Value::Int(9), Value::Int(9)})
                  .empty());
  EXPECT_TRUE(interp.LookupMulti("nope", 0b1, {Value::Int(1)}).empty());
}

TEST(InterpretationTest, LookupMultiTracksLaterInsertions) {
  Interpretation interp;
  interp.Add(F("edge", {1, 2}));
  EXPECT_EQ(interp.LookupMulti("edge", 0b01, {Value::Int(1)}).size(), 1u);
  // The index extends from its watermark when the relation grows.
  interp.Add(F("edge", {1, 5}));
  EXPECT_EQ(interp.LookupMulti("edge", 0b01, {Value::Int(1)}).size(), 2u);
}

TEST(InterpretationTest, PrepareIndexMatchesLazyLookups) {
  Interpretation interp;
  for (int64_t i = 0; i < 20; ++i) interp.Add(F("r", {i % 4, i}));
  interp.PrepareIndex("r", 0b01);
  EXPECT_EQ(interp.LookupMulti("r", 0b01, {Value::Int(2)}).size(), 5u);
  // Facts shorter than the mask's highest bound position never match.
  interp.Add(F("short", {7}));
  EXPECT_TRUE(interp.LookupMulti("short", 0b10, {Value::Int(7)}).empty());
}

TEST(InterpretationTest, LookupMultiMaskZeroIsFullScan) {
  Interpretation interp;
  for (int64_t i = 0; i < 6; ++i) interp.Add(F("p", {i, i * 10}));
  // Nothing bound: every fact matches, whatever key the caller passed.
  EXPECT_EQ(interp.LookupMulti("p", 0, {}).size(), 6u);
  EXPECT_EQ(interp.LookupMulti("p", 0, {Value::Int(3)}).size(), 6u);
  // The mask-0 index extends like any other as the relation grows.
  interp.Add(F("p", {6, 60}));
  EXPECT_EQ(interp.LookupMulti("p", 0, {}).size(), 7u);
  // Unknown predicates still return the canonical empty index.
  EXPECT_TRUE(interp.LookupMulti("nope", 0, {}).empty());
}

TEST(InterpretationTest, ArityBeyondSixtyFourIsStructured) {
  // Facts wider than the 64-bit position bitmap index by their first 64
  // positions; probes at representable positions stay exact and shifting
  // never strays into undefined behavior.
  auto wide = [](int64_t tag, int64_t tail) {
    Fact f;
    f.relation = "wide";
    for (int i = 0; i < 70; ++i) f.args.push_back(Value::Int(0));
    f.args[0] = Value::Int(tag);
    f.args[63] = Value::Int(tag * 100);
    f.args[69] = Value::Int(tail);
    return f;
  };
  Interpretation interp;
  interp.Add(wide(1, 7));
  interp.Add(wide(2, 8));
  interp.Add(wide(2, 9));  // differs from the previous only beyond bit 63

  EXPECT_EQ(interp.LookupMulti("wide", 0b1, {Value::Int(2)}).size(), 2u);
  // Highest representable position (bit 63) probes exactly.
  uint64_t mask = (1ULL << 0) | (1ULL << 63);
  EXPECT_EQ(
      interp.LookupMulti("wide", mask, {Value::Int(1), Value::Int(100)})
          .size(),
      1u);
  // Facts differing only at positions >= 64 share an index cell; the probe
  // returns both candidates and the caller's residual checks distinguish
  // them — a full-scan-style superset, never a silent miss.
  const auto& both =
      interp.LookupMulti("wide", mask, {Value::Int(2), Value::Int(200)});
  EXPECT_EQ(both.size(), 2u);
  // Mask 0 over wide facts degrades to the full scan as well.
  EXPECT_EQ(interp.LookupMulti("wide", 0, {}).size(), 3u);
}

TEST(InterpretationTest, GenerationAdvancesOnlyOnRealInsertions) {
  Interpretation interp;
  uint64_t g0 = interp.generation();
  interp.Add(F("p", {1}));
  EXPECT_EQ(interp.generation(), g0 + 1);
  interp.Add(F("p", {1}));  // duplicate: no mutation
  EXPECT_EQ(interp.generation(), g0 + 1);
  interp.Add(F("p", {2}));
  EXPECT_EQ(interp.generation(), g0 + 2);
}

TEST(InterpretationTest, ReprobeAfterAddSeesCompleteCandidateSet) {
  // The documented contract for holding index references across Add: copy
  // or re-probe. A re-probe (fresh Lookup call) always returns the full,
  // current candidate list.
  Interpretation interp;
  interp.Add(F("e", {1, 2}));
  EXPECT_EQ(interp.Lookup("e", 0, Value::Int(1)).size(), 1u);
  uint64_t gen = interp.generation();
  interp.Add(F("e", {1, 3}));
  EXPECT_NE(interp.generation(), gen);  // the staleness signal
  EXPECT_EQ(interp.Lookup("e", 0, Value::Int(1)).size(), 2u);
}

TEST(InterpretationDeathTest, AddWhileFrozenDies) {
  Interpretation interp;
  interp.Add(F("p", {1}));
  interp.Freeze();
  EXPECT_TRUE(interp.frozen());
  EXPECT_DEATH(interp.Add(F("p", {2})), "frozen");
  interp.Thaw();
  EXPECT_FALSE(interp.frozen());
  EXPECT_TRUE(interp.Add(F("p", {2})));
}

}  // namespace
}  // namespace vqldb
