#include "src/engine/interpretation.h"

#include <gtest/gtest.h>

namespace vqldb {
namespace {

Fact F(const std::string& pred, std::initializer_list<int64_t> args) {
  Fact f;
  f.relation = pred;
  for (int64_t a : args) f.args.push_back(Value::Int(a));
  return f;
}

TEST(InterpretationTest, AddAndContains) {
  Interpretation interp;
  EXPECT_TRUE(interp.Add(F("p", {1})));
  EXPECT_FALSE(interp.Add(F("p", {1})));  // dedup
  EXPECT_TRUE(interp.Contains(F("p", {1})));
  EXPECT_FALSE(interp.Contains(F("p", {2})));
  EXPECT_EQ(interp.size(), 1u);
}

TEST(InterpretationTest, FactsForPreservesInsertionOrder) {
  Interpretation interp;
  interp.Add(F("p", {3}));
  interp.Add(F("p", {1}));
  interp.Add(F("p", {2}));
  const auto& facts = interp.FactsFor("p");
  ASSERT_EQ(facts.size(), 3u);
  EXPECT_EQ(facts[0].args[0].int_value(), 3);
  EXPECT_EQ(facts[2].args[0].int_value(), 2);
}

TEST(InterpretationTest, UnknownPredicateEmpty) {
  Interpretation interp;
  EXPECT_TRUE(interp.FactsFor("nope").empty());
  EXPECT_TRUE(interp.Lookup("nope", 0, Value::Int(1)).empty());
}

TEST(InterpretationTest, LookupIndexesByPosition) {
  Interpretation interp;
  interp.Add(F("edge", {1, 2}));
  interp.Add(F("edge", {1, 3}));
  interp.Add(F("edge", {2, 3}));
  EXPECT_EQ(interp.Lookup("edge", 0, Value::Int(1)).size(), 2u);
  EXPECT_EQ(interp.Lookup("edge", 1, Value::Int(3)).size(), 2u);
  EXPECT_TRUE(interp.Lookup("edge", 0, Value::Int(9)).empty());
}

TEST(InterpretationTest, LookupIndexExtendsIncrementally) {
  Interpretation interp;
  interp.Add(F("p", {1}));
  EXPECT_EQ(interp.Lookup("p", 0, Value::Int(1)).size(), 1u);
  interp.Add(F("q", {1}));
  Fact another = F("p", {1});
  another.args.push_back(Value::Int(9));  // p(1, 9)
  interp.Add(another);
  // The index extends over facts added after the first lookup.
  EXPECT_EQ(interp.Lookup("p", 0, Value::Int(1)).size(), 2u);
}

TEST(InterpretationTest, NumericCrossKindLookup) {
  Interpretation interp;
  interp.Add(F("p", {2}));
  // Int(2) and Double(2.0) are Compare-equal and hash-equal.
  EXPECT_EQ(interp.Lookup("p", 0, Value::Double(2.0)).size(), 1u);
}

TEST(InterpretationTest, PredicatesSorted) {
  Interpretation interp;
  interp.Add(F("zeta", {1}));
  interp.Add(F("alpha", {1}));
  EXPECT_EQ(interp.Predicates(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(InterpretationTest, SubsetAndEquality) {
  Interpretation a, b;
  a.Add(F("p", {1}));
  b.Add(F("p", {1}));
  b.Add(F("q", {2}));
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_FALSE(b.SubsetOf(a));
  EXPECT_FALSE(a == b);
  a.Add(F("q", {2}));
  EXPECT_TRUE(a == b);
}

TEST(InterpretationTest, AllFactsCountsEverything) {
  Interpretation interp;
  interp.Add(F("p", {1}));
  interp.Add(F("q", {1}));
  interp.Add(F("q", {2}));
  EXPECT_EQ(interp.AllFacts().size(), 3u);
}

TEST(InterpretationTest, ToStringListsFacts) {
  Interpretation interp;
  interp.Add(F("p", {1}));
  EXPECT_EQ(interp.ToString(), "{p(1)}");
}

}  // namespace
}  // namespace vqldb
