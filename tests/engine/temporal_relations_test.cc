// The interval-operator constraints (before / meets / overlaps) — the
// temporal operators the paper's related work (Hjelsvold & Midtstraum's
// SQL-like language) offers, lifted here to generalized intervals and usable
// as constraint atoms.

#include <gtest/gtest.h>

#include "src/engine/query.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

class TemporalRelationsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<QuerySession>(&db_);
    ASSERT_TRUE(session_->Load(R"(
      interval a { duration: (t >= 0 and t <= 10) }.
      interval b { duration: (t >= 10 and t <= 20) }.
      interval c { duration: (t >= 15 and t <= 30) }.
      interval d { duration: (t >= 40 and t <= 45) or (t >= 50 and t <= 55) }.
    )")
                    .ok());
  }

  std::vector<std::string> Names(const QueryResult& r) {
    std::vector<std::string> out;
    for (const auto& row : r.rows) {
      out.push_back(db_.DisplayName(row[0].oid_value()));
    }
    return out;
  }

  VideoDatabase db_;
  std::unique_ptr<QuerySession> session_;
};

TEST_F(TemporalRelationsTest, BeforeIsStrict) {
  ASSERT_TRUE(session_
                  ->AddRule("precedes(G1, G2) <- Interval(G1), Interval(G2), "
                            "G1.duration before G2.duration.")
                  .ok());
  auto r = session_->Query("?- precedes(a, G).");
  ASSERT_TRUE(r.ok());
  // a [0,10] ends exactly where b begins (shared instant -> not before);
  // a before c? c begins at 15 > 10: yes. a before d: yes.
  EXPECT_EQ(Names(*r), (std::vector<std::string>{"c", "d"}));
}

TEST_F(TemporalRelationsTest, MeetsAtSharedEndpoint) {
  ASSERT_TRUE(session_
                  ->AddRule("adjacent(G1, G2) <- Interval(G1), Interval(G2), "
                            "G1.duration meets G2.duration.")
                  .ok());
  auto r = session_->Query("?- adjacent(a, G).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(*r), (std::vector<std::string>{"b"}));
}

TEST_F(TemporalRelationsTest, OverlapsSharesInstant) {
  ASSERT_TRUE(session_
                  ->AddRule("touches(G1, G2) <- Interval(G1), Interval(G2), "
                            "G1.duration overlaps G2.duration, G1 != G2.")
                  .ok());
  auto r = session_->Query("?- touches(b, G).");
  ASSERT_TRUE(r.ok());
  // b [10,20] shares 10 with a, and [15,20] with c.
  EXPECT_EQ(Names(*r), (std::vector<std::string>{"a", "c"}));
}

TEST_F(TemporalRelationsTest, WorksWithTemporalLiterals) {
  ASSERT_TRUE(session_
                  ->AddRule("early(G) <- Interval(G), "
                            "G.duration before (t >= 35 and t <= 60).")
                  .ok());
  auto r = session_->Query("?- early(G).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(*r), (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(TemporalRelationsTest, NonContinuousExtentUsesHullEnds) {
  // d = [40,45] u [50,55]: before means after 55, overlaps catches the gap
  // correctly (nothing inside (45,50) overlaps d).
  ASSERT_TRUE(session_->Load(R"(
    interval gap_probe { duration: (t >= 46 and t <= 49) }.
  )")
                  .ok());
  ASSERT_TRUE(session_
                  ->AddRule("hits_d(G) <- Interval(G), "
                            "G.duration overlaps d.duration.")
                  .ok());
  auto r = session_->Query("?- hits_d(G).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(*r), (std::vector<std::string>{"d"}));  // only d itself
}

TEST_F(TemporalRelationsTest, OpenBoundaryDoesNotMeet) {
  // (0,10) before (t > 10 ...) style: shared *open* boundary counts as
  // before (no shared instant).
  ASSERT_TRUE(session_->Load(R"(
    interval open_a { duration: (t > 100 and t < 110) }.
    interval open_b { duration: (t > 110 and t < 120) }.
  )")
                  .ok());
  ASSERT_TRUE(session_
                  ->AddRule("strictly_prior(G1, G2) <- Interval(G1), "
                            "Interval(G2), G1.duration before G2.duration.")
                  .ok());
  auto r = session_->Query("?- strictly_prior(open_a, open_b).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
  // But the closed pair a/b does not qualify (they share instant 10).
  auto closed = session_->Query("?- strictly_prior(a, b).");
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed->rows.empty());
}

TEST_F(TemporalRelationsTest, TypeMismatchFailsConstraint) {
  ASSERT_TRUE(session_->Load("object o1 { name: \"x\" }.").ok());
  ASSERT_TRUE(session_
                  ->AddRule("bad(O) <- Object(O), "
                            "O.name before (t > 0 and t < 1).")
                  .ok());
  auto r = session_->Query("?- bad(O).");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(TemporalRelationsTest, RoundTripsThroughToString) {
  auto rule = Parser::ParseRule(
      "p(G1, G2) <- Interval(G1), Interval(G2), "
      "G1.duration before G2.duration, G1.duration overlaps G2.duration, "
      "G1.duration meets G2.duration.");
  ASSERT_TRUE(rule.ok());
  auto reparsed = Parser::ParseRule(rule->ToString());
  ASSERT_TRUE(reparsed.ok()) << rule->ToString();
  EXPECT_EQ(reparsed->ToString(), rule->ToString());
}

}  // namespace
}  // namespace vqldb
