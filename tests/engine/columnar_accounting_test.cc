// Pins the governor accounting of dictionary-encoded rows. A stored row of
// arity a reserves exactly 16 + 8*a bytes (both id copies, offset,
// membership slots at design load, sorted-run source entry), plus — only for
// the Add() that first interned a term — the dictionary bytes that term
// newly allocated. These constants are a contract: EXPLAIN's storage line,
// the bench gates, and budget sizing all assume them.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/budget.h"
#include "src/engine/interpretation.h"
#include "src/model/term_dict.h"
#include "src/model/value.h"

namespace vqldb {
namespace {

Fact F(const std::string& pred, std::initializer_list<Value> args) {
  Fact f;
  f.relation = pred;
  f.args = args;
  return f;
}

// A value interned before the test body runs charges no dictionary bytes
// when a row stores it again — isolating the pure row formula.
Value Pre(const std::string& s) {
  Value v = Value::String(s);
  TermDict::Global().Intern(v);
  return v;
}

TEST(ColumnarAccountingTest, RowChargesSixteenPlusEightPerColumn) {
  auto budget = std::make_shared<ResourceBudget>();
  Interpretation interp;
  interp.set_budget(budget);

  ASSERT_TRUE(interp.Add(F("p", {Pre("acc-a"), Pre("acc-b")})));
  EXPECT_EQ(budget->bytes_reserved(), 16u + 8u * 2);
  EXPECT_EQ(interp.accounted_bytes(), 16u + 8u * 2);
  EXPECT_EQ(budget->tuples(), 1u);

  ASSERT_TRUE(interp.Add(F("q", {Pre("acc-a")})));
  EXPECT_EQ(budget->bytes_reserved(), (16u + 16u) + (16u + 8u));

  // Duplicate rows charge nothing.
  ASSERT_FALSE(interp.Add(F("p", {Pre("acc-a"), Pre("acc-b")})));
  EXPECT_EQ(budget->bytes_reserved(), (16u + 16u) + (16u + 8u));
  EXPECT_EQ(budget->tuples(), 2u);
}

TEST(ColumnarAccountingTest, FirstInternOfATermChargesItsDictionaryBytes) {
  auto budget = std::make_shared<ResourceBudget>();
  Interpretation interp;
  interp.set_budget(budget);

  TermDict& dict = TermDict::Global();
  size_t dict_before = dict.ApproxBytes();
  // A value this process has never interned: the row that introduces it
  // pays for the dictionary entry (amortization), exactly once.
  Value fresh = Value::String("columnar-accounting-unique-term-xyzzy");
  ASSERT_EQ(dict.IdOf(fresh), kNoTermId);
  ASSERT_TRUE(interp.Add(F("p", {fresh})));
  size_t dict_added = dict.ApproxBytes() - dict_before;
  EXPECT_GT(dict_added, 0u);
  EXPECT_EQ(budget->bytes_reserved(), (16u + 8u) + dict_added);

  // A second row mentioning the same term pays only the row formula.
  ASSERT_TRUE(interp.Add(F("q", {fresh})));
  EXPECT_EQ(budget->bytes_reserved(), 2 * (16u + 8u) + dict_added);
}

TEST(ColumnarAccountingTest, LateBudgetAttachRewalksRowsExactly) {
  Interpretation interp;
  ASSERT_TRUE(interp.Add(F("p", {Pre("late-a"), Pre("late-b")})));
  ASSERT_TRUE(interp.Add(F("p", {Pre("late-a")})));
  ASSERT_TRUE(interp.Add(F("r", {Pre("late-c"), Pre("late-a"), Pre("late-b")})));

  auto budget = std::make_shared<ResourceBudget>();
  interp.set_budget(budget);
  // 3 rows, 6 stored ids: 16*3 + 8*6. Dictionary amortization is charged
  // only by the Add() that interned a term, never by a late attach.
  EXPECT_EQ(budget->bytes_reserved(), 16u * 3 + 8u * 6);
  EXPECT_EQ(interp.accounted_bytes(), 16u * 3 + 8u * 6);

  // Detach releases the reservation in full.
  interp.set_budget(nullptr);
  EXPECT_EQ(budget->bytes_reserved(), 0u);
}

TEST(ColumnarAccountingTest, DestructionReleasesTheReservation) {
  auto budget = std::make_shared<ResourceBudget>();
  {
    Interpretation interp;
    interp.set_budget(budget);
    ASSERT_TRUE(interp.Add(F("p", {Pre("rel-a"), Pre("rel-b")})));
    EXPECT_GT(budget->bytes_reserved(), 0u);
  }
  EXPECT_EQ(budget->bytes_reserved(), 0u);
}

TEST(ColumnarAccountingTest, CopyRechargesAndMoveTransfers) {
  auto budget = std::make_shared<ResourceBudget>();
  Interpretation a;
  a.set_budget(budget);
  ASSERT_TRUE(a.Add(F("p", {Pre("cp-a"), Pre("cp-b")})));
  size_t one = budget->bytes_reserved();
  ASSERT_EQ(one, 16u + 16u);

  Interpretation b(a);  // copy re-charges its own bytes
  EXPECT_EQ(budget->bytes_reserved(), 2 * one);

  Interpretation c(std::move(b));  // move transfers the reservation
  EXPECT_EQ(budget->bytes_reserved(), 2 * one);
}

TEST(ColumnarAccountingTest, ApproxRowsBytesTracksColumnarResidency) {
  Interpretation interp;
  size_t empty = interp.ApproxRowsBytes();
  for (int i = 0; i < 100; ++i) {
    interp.Add(F("p", {Value::Int(i), Value::Int(i + 1)}));
  }
  size_t loaded = interp.ApproxRowsBytes();
  EXPECT_GT(loaded, empty);
  // Sealing adds segment storage (sorted columns + src map) on top of the
  // insertion-order rows; the estimate must see it.
  interp.SealSegments();
  EXPECT_GT(interp.ApproxRowsBytes(), loaded);
  // And it stays far below the boxed row-store estimate.
  auto stats = interp.ComputeStorageStats();
  EXPECT_EQ(stats.rows, 100u);
  EXPECT_EQ(stats.sealed_rows, 100u);
  EXPECT_LT(stats.columnar_bytes, stats.row_store_bytes);
}

}  // namespace
}  // namespace vqldb
