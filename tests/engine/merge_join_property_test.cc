// Property suite: merge joins are a pure access-path change. For seeded
// random programs and goals, evaluation with merge joins enabled must return
// exactly the rows of the hash-index evaluation — serially, in parallel, and
// with the magic-set rewrite on or off. 30 seeds x 4 configurations = 120
// equivalence cases, each checking full row content, not just counts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/engine/query.h"
#include "src/lang/parser.h"
#include "src/model/database.h"

namespace vqldb {
namespace {

struct Scenario {
  std::unique_ptr<VideoDatabase> db;
  std::vector<Rule> rules;
  size_t entity_count = 0;
};

// Random positive programs over EDB relations e/2, f/2 and a ternary g/3
// (whose joins bind non-prefix positions, forcing the evaluator to mix merge
// probes with hash-index fallbacks within one program).
Scenario RandomScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.db = std::make_unique<VideoDatabase>();
  size_t n = 3 + rng.UniformU64(4);
  s.entity_count = n;
  std::vector<ObjectId> entities;
  for (size_t i = 0; i < n; ++i) {
    entities.push_back(*s.db->CreateEntity("c" + std::to_string(i)));
  }
  auto ent = [&] { return Value::Oid(entities[rng.UniformU64(n)]); };
  for (size_t i = 0; i < 2 * n; ++i) {
    VQLDB_CHECK_OK(
        s.db->AssertFact(rng.Bernoulli(0.5) ? "e" : "f", {ent(), ent()}));
  }
  for (size_t i = 0; i < n; ++i) {
    VQLDB_CHECK_OK(s.db->AssertFact("g", {ent(), ent(), ent()}));
  }

  const char* templates[] = {
      "d0(X, Y) <- e(X, Y).",
      "d0(X, Y) <- f(Y, X).",
      "d0(X, Z) <- d0(X, Y), e(Y, Z).",
      "d1(X, Y) <- e(X, Y), f(X, Y).",
      "d1(X, Y) <- d0(X, Y), X != Y.",
      "d0(X, Y) <- d1(X, Y), d1(Y, X).",
      "d1(X, X) <- e(X, Y), Object(X).",
      "d0(X, Y) <- d1(X, Z), f(Z, Y).",
      // Non-prefix bound positions: g's second/third arguments join against
      // earlier bindings, so these literals are not merge-eligible and must
      // fall back to hash probes mid-rule.
      "d1(X, Y) <- e(X, Z), g(X, Y, Z).",
      "d0(X, Y) <- g(Y, X, X).",
      "d1(X, Z) <- g(X, Y, Z), e(Y, Y).",
  };
  size_t num_rules = 2 + rng.UniformU64(6);
  for (size_t i = 0; i < num_rules; ++i) {
    auto rule = Parser::ParseRule(templates[rng.UniformU64(11)]);
    VQLDB_CHECK(rule.ok());
    s.rules.push_back(*rule);
  }
  return s;
}

std::vector<std::string> GoalsFor(const Scenario& s, uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  auto c = [&] { return "c" + std::to_string(rng.UniformU64(s.entity_count)); };
  std::vector<std::string> goals;
  for (const char* pred : {"d0", "d1"}) {
    std::string p(pred);
    goals.push_back("?- " + p + "(X, Y).");
    goals.push_back("?- " + p + "(" + c() + ", Y).");
    goals.push_back("?- " + p + "(X, X).");
  }
  return goals;
}

// Rendered rows in result order — merge joins must preserve row order too
// (the candidate streams are identical), so plain vector equality applies.
std::vector<std::string> RenderRows(const QueryResult& result) {
  std::vector<std::string> out;
  for (const auto& row : result.rows) {
    std::string line;
    for (const Value& v : row) line += v.ToString() + "|";
    out.push_back(std::move(line));
  }
  return out;
}

void CheckEquivalence(uint64_t seed, size_t num_threads, bool magic) {
  Scenario s = RandomScenario(seed);
  EvalOptions options;
  options.num_threads = num_threads;
  QuerySession session(s.db.get(), options);
  session.set_cache_enabled(false);
  session.set_magic_enabled(magic);
  for (const Rule& rule : s.rules) ASSERT_TRUE(session.AddRule(rule).ok());

  for (const std::string& goal : GoalsFor(s, seed)) {
    session.mutable_options()->merge_join = true;
    session.Invalidate();
    auto merge = session.Query(goal);
    ASSERT_TRUE(merge.ok()) << "seed " << seed << " goal " << goal << ": "
                            << merge.status();

    session.mutable_options()->merge_join = false;
    session.Invalidate();
    auto hash = session.Query(goal);
    ASSERT_TRUE(hash.ok()) << "seed " << seed << " goal " << goal << ": "
                           << hash.status();

    EXPECT_EQ(merge->columns, hash->columns)
        << "seed " << seed << " goal " << goal;
    EXPECT_EQ(RenderRows(*merge), RenderRows(*hash))
        << "seed " << seed << " goal " << goal;
  }
}

class MergeJoinEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeJoinEquivalenceTest, SerialMatchesHashJoins) {
  CheckEquivalence(GetParam(), /*num_threads=*/1, /*magic=*/false);
}

TEST_P(MergeJoinEquivalenceTest, ParallelMatchesHashJoins) {
  CheckEquivalence(GetParam() + 3000, /*num_threads=*/8, /*magic=*/false);
}

TEST_P(MergeJoinEquivalenceTest, MagicSerialMatchesHashJoins) {
  CheckEquivalence(GetParam() + 6000, /*num_threads=*/1, /*magic=*/true);
}

TEST_P(MergeJoinEquivalenceTest, MagicParallelMatchesHashJoins) {
  CheckEquivalence(GetParam() + 9000, /*num_threads=*/8, /*magic=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeJoinEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace vqldb
