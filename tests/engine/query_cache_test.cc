// The memoizing query cache: hits without re-evaluation, epoch-based
// invalidation on database mutation (direct and via journal replay),
// canonical variable renaming, the LRU capacity bound, and the epoch
// subtlety of constructive evaluation.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/engine/query.h"
#include "src/obs/metrics.h"
#include "src/storage/journal.h"

namespace vqldb {
namespace {

uint64_t CounterValue(const char* name) {
  auto* c = obs::MetricsRegistry::Global().GetCounter(name, "");
  return c->value();
}

class QueryCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<QuerySession>(&db_);
    ASSERT_TRUE(session_
                    ->Load("object a {}. object b {}. object c {}.\n"
                           "edge(a, b). edge(b, c).\n"
                           "path(X, Y) <- edge(X, Y).\n"
                           "path(X, Z) <- path(X, Y), edge(Y, Z).\n")
                    .ok());
  }

  VideoDatabase db_;
  std::unique_ptr<QuerySession> session_;
};

TEST_F(QueryCacheTest, SecondIdenticalQueryHitsWithoutEvaluation) {
  uint64_t hits0 = CounterValue("vqldb_query_cache_hits_total");
  auto first = session_->Query("?- path(a, Y).");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(session_->last_exec_info().cache_hit);
  EXPECT_EQ(session_->query_cache_size(), 1u);

  size_t iterations_before = session_->last_stats().iterations;
  auto second = session_->Query("?- path(a, Y).");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(session_->last_exec_info().cache_hit);
  // A hit performs no evaluation: last_stats is untouched.
  EXPECT_EQ(session_->last_stats().iterations, iterations_before);
  EXPECT_EQ(first->rows, second->rows);
  EXPECT_EQ(CounterValue("vqldb_query_cache_hits_total"), hits0 + 1);
}

TEST_F(QueryCacheTest, HitAcrossVariableRenaming) {
  auto first = session_->Query("?- path(a, Y).");
  ASSERT_TRUE(first.ok());
  auto renamed = session_->Query("?- path(a, Answer).");
  ASSERT_TRUE(renamed.ok());
  EXPECT_TRUE(session_->last_exec_info().cache_hit);
  EXPECT_EQ(renamed->rows, first->rows);
  // Columns carry the new query's variable names.
  ASSERT_EQ(renamed->columns.size(), 1u);
  EXPECT_EQ(renamed->columns[0], "Answer");
}

TEST_F(QueryCacheTest, DistinctPatternsDoNotCollide) {
  ASSERT_TRUE(session_->Query("?- path(X, Y).").ok());
  auto repeated = session_->Query("?- path(X, X).");
  ASSERT_TRUE(repeated.ok());
  // p(X, X) canonicalizes differently from p(X, Y): never a false hit.
  EXPECT_FALSE(session_->last_exec_info().cache_hit);
  EXPECT_TRUE(repeated->rows.empty());
}

TEST_F(QueryCacheTest, DirectDatabaseMutationInvalidatesViaEpoch) {
  auto before = session_->Query("?- path(a, Y).");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows.size(), 2u);  // b, c

  // Mutate the database directly — no Invalidate() call. The epoch in the
  // cache key changes, so the next query misses and sees the new fact.
  ObjectId d = *db_.CreateEntity("d");
  ASSERT_TRUE(db_.AssertFact("edge", {Value::Oid(*db_.Resolve("c")),
                                      Value::Oid(d)})
                  .ok());
  auto after = session_->Query("?- path(a, Y).");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(session_->last_exec_info().cache_hit);
  EXPECT_EQ(after->rows.size(), 3u);  // b, c, d
}

TEST_F(QueryCacheTest, JournalReplayInvalidatesViaEpoch) {
  auto before = session_->Query("?- path(a, Y).");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows.size(), 2u);

  // Write a journal carrying a new object + edge fact, then replay it into
  // the live database. Replay goes through the ordinary mutators, so the
  // epoch advances and the cached entry can no longer be reached.
  std::string path = ::testing::TempDir() + "/query_cache_journal.vqlog";
  std::remove(path.c_str());
  {
    auto journal = Journal::Open(path, {});
    ASSERT_TRUE(journal.ok()) << journal.status();
    ASSERT_TRUE(journal->Append("object d {}.").ok());
    ASSERT_TRUE(journal->Append("edge(c, d).").ok());
    ASSERT_TRUE(journal->Sync().ok());
  }
  auto report = Journal::Replay(path, &db_);
  ASSERT_TRUE(report.ok()) << report.status();

  auto after = session_->Query("?- path(a, Y).");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(session_->last_exec_info().cache_hit);
  EXPECT_EQ(after->rows.size(), 3u);
  std::remove(path.c_str());
}

TEST_F(QueryCacheTest, AddRuleInvalidates) {
  ASSERT_TRUE(session_->Query("?- path(a, Y).").ok());
  ASSERT_TRUE(session_->AddRule("path(X, Y) <- edge(Y, X).").ok());
  auto after = session_->Query("?- path(a, Y).");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(session_->last_exec_info().cache_hit);
  EXPECT_EQ(after->rows.size(), 2u);  // still b, c (reverse adds none from a)
}

TEST_F(QueryCacheTest, CapacityBoundEvictsLru) {
  uint64_t evictions0 = CounterValue("vqldb_query_cache_evictions_total");
  // Distinct integer-bound goals produce distinct keys; the store is
  // bounded, so well past capacity the size plateaus and evictions rise.
  ASSERT_TRUE(session_->AddRule("num(1, 2).").ok());
  ASSERT_TRUE(session_->AddRule("succ(X, Y) <- num(X, Y).").ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        session_->Query("?- succ(" + std::to_string(i) + ", Y).").ok());
  }
  EXPECT_LE(session_->query_cache_size(), 256u);
  EXPECT_GT(CounterValue("vqldb_query_cache_evictions_total"), evictions0);
}

TEST_F(QueryCacheTest, DisabledCacheNeverHitsOrStores) {
  session_->set_cache_enabled(false);
  ASSERT_TRUE(session_->Query("?- path(a, Y).").ok());
  EXPECT_EQ(session_->query_cache_size(), 0u);
  ASSERT_TRUE(session_->Query("?- path(a, Y).").ok());
  EXPECT_FALSE(session_->last_exec_info().cache_hit);
}

TEST_F(QueryCacheTest, ClearQueryCacheForcesReevaluation) {
  ASSERT_TRUE(session_->Query("?- path(a, Y).").ok());
  session_->ClearQueryCache();
  EXPECT_EQ(session_->query_cache_size(), 0u);
  ASSERT_TRUE(session_->Query("?- path(a, Y).").ok());
  EXPECT_FALSE(session_->last_exec_info().cache_hit);
}

TEST_F(QueryCacheTest, ByteBudgetEvictsLruBeforeEntryCap) {
  // Entries are accounted in bytes: a tight byte budget evicts LRU entries
  // long before the 256-entry secondary cap is reached, and the accounted
  // total never exceeds the budget.
  uint64_t bytes_evicted0 = CounterValue("vqldb_cache_bytes_evicted_total");
  ASSERT_TRUE(session_->Query("?- path(a, Y).").ok());
  ASSERT_GT(session_->query_cache_bytes(), 0u);
  // Room for only a couple of answers of this size.
  session_->set_cache_max_bytes(session_->query_cache_bytes() * 2 + 1);

  ASSERT_TRUE(session_->Query("?- path(b, Y).").ok());
  ASSERT_TRUE(session_->Query("?- path(X, c).").ok());
  ASSERT_TRUE(session_->Query("?- path(X, b).").ok());
  EXPECT_LE(session_->query_cache_bytes(), session_->cache_max_bytes());
  EXPECT_LT(session_->query_cache_size(), 4u);  // something was evicted
  EXPECT_GT(CounterValue("vqldb_cache_bytes_evicted_total"), bytes_evicted0);

  // The surviving (most recent) entry still hits.
  ASSERT_TRUE(session_->Query("?- path(X, b).").ok());
  EXPECT_TRUE(session_->last_exec_info().cache_hit);
}

TEST_F(QueryCacheTest, AnswerLargerThanByteBudgetIsNotCached) {
  session_->set_cache_max_bytes(1);
  auto result = session_->Query("?- path(X, Y).");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);  // the answer itself is unaffected
  EXPECT_EQ(session_->query_cache_size(), 0u);
  EXPECT_EQ(session_->query_cache_bytes(), 0u);
}

TEST_F(QueryCacheTest, ByteAccountingTracksStoresAndClear) {
  ASSERT_TRUE(session_->Query("?- path(a, Y).").ok());
  size_t one = session_->query_cache_bytes();
  ASSERT_GT(one, 0u);
  ASSERT_TRUE(session_->Query("?- path(X, c).").ok());
  EXPECT_GT(session_->query_cache_bytes(), one);
  session_->ClearQueryCache();
  EXPECT_EQ(session_->query_cache_bytes(), 0u);
}

TEST_F(QueryCacheTest, DomainRebuiltAtRecycledAddressDoesNotReviveAnswers) {
  // Regression: OptionsFingerprint used to hash options_.concrete_domain by
  // pointer, so a domain rebuilt at a recycled address silently revived
  // answers computed against the old predicate table. Force the recycled
  // address with placement new and require a miss plus the new semantics.
  ASSERT_TRUE(session_->AddRule("num(1, 0).").ok());
  ASSERT_TRUE(session_->AddRule("num(5, 0).").ok());
  ASSERT_TRUE(session_->AddRule("tiny(X) <- num(X, Y), small(X).").ok());

  alignas(ConcreteDomain) unsigned char buf[sizeof(ConcreteDomain)];
  auto* v1 = new (buf) ConcreteDomain("v1");
  v1->RegisterPredicate("small", 1, [](const std::vector<DomainValue>& a) {
    return a[0].sort == DomainValue::Sort::kNumber && a[0].number < 3;
  });
  session_->mutable_options()->concrete_domain = v1;
  auto first = session_->Query("?- tiny(X).");
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->rows.size(), 1u);  // only num 1 is small

  v1->~ConcreteDomain();
  auto* v2 = new (buf) ConcreteDomain("v2");
  ASSERT_EQ(static_cast<void*>(v2), static_cast<void*>(v1));
  v2->RegisterPredicate("small", 1, [](const std::vector<DomainValue>& a) {
    return a[0].sort == DomainValue::Sort::kNumber && a[0].number > 3;
  });
  session_->mutable_options()->concrete_domain = v2;
  auto second = session_->Query("?- tiny(X).");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(session_->last_exec_info().cache_hit);
  ASSERT_EQ(second->rows.size(), 1u);  // now only num 5 qualifies
  EXPECT_NE(first->rows, second->rows);

  session_->mutable_options()->concrete_domain = nullptr;
  session_->ClearQueryCache();
  v2->~ConcreteDomain();
}

TEST_F(QueryCacheTest, ConstructiveEvaluationStoresPostEpoch) {
  // Answering the first query materializes derived intervals, advancing the
  // database epoch mid-query. The entry must be stored under the
  // post-evaluation epoch so the identical follow-up query still hits.
  ASSERT_TRUE(session_
                  ->Load("interval gi1 { duration: (t > 0 and t < 5) }.\n"
                         "interval gi2 { duration: (t > 5 and t < 9) }.\n"
                         "seg(gi1). seg(gi2).\n"
                         "combo(G1 ++ G2) <- seg(G1), seg(G2).\n")
                  .ok());
  auto first = session_->Query("?- combo(G).");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(session_->last_exec_info().cache_hit);
  auto second = session_->Query("?- combo(G).");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(session_->last_exec_info().cache_hit);
  EXPECT_EQ(first->rows, second->rows);
}

}  // namespace
}  // namespace vqldb
