// THM-2: Lemma 2 (monotonicity of T_P) and Theorem 2 (continuity) over
// randomly generated programs, plus the inflationary character of the
// implemented operator (Def. 21: A in I is an immediate consequence).

#include <gtest/gtest.h>

#include "src/common/logging.h"

#include "src/common/rng.h"
#include "src/engine/evaluator.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

struct Scenario {
  std::unique_ptr<VideoDatabase> db;
  std::vector<Rule> rules;
  std::vector<ObjectId> entities;
};

Scenario RandomSetup(uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.db = std::make_unique<VideoDatabase>();
  size_t n = 3 + rng.UniformU64(3);
  for (size_t i = 0; i < n; ++i) {
    s.entities.push_back(*s.db->CreateEntity("c" + std::to_string(i)));
  }
  for (size_t i = 0; i < n; ++i) {
    ObjectId a = s.entities[rng.UniformU64(n)];
    ObjectId b = s.entities[rng.UniformU64(n)];
    VQLDB_CHECK_OK(s.db->AssertFact("e", {Value::Oid(a), Value::Oid(b)}));
  }
  const char* templates[] = {
      "d0(X) <- e(X, Y).",
      "d0(Y) <- e(X, Y), d0(X).",
      "d1(X, Z) <- e(X, Y), e(Y, Z).",
      "d1(X, Y) <- d1(Y, X).",
      "d0(X) <- d1(X, X).",
  };
  size_t num_rules = 1 + rng.UniformU64(4);
  for (size_t i = 0; i < num_rules; ++i) {
    auto rule = Parser::ParseRule(templates[rng.UniformU64(5)]);
    VQLDB_CHECK(rule.ok());
    s.rules.push_back(*rule);
  }
  return s;
}

// A random interpretation over the setup's constants.
Interpretation RandomInterpretation(const Scenario& s, Rng* rng, int extra) {
  Interpretation out;
  for (int i = 0; i < extra; ++i) {
    Fact f;
    size_t n = s.entities.size();
    switch (rng->UniformU64(3)) {
      case 0:
        f.relation = "e";
        f.args = {Value::Oid(s.entities[rng->UniformU64(n)]),
                  Value::Oid(s.entities[rng->UniformU64(n)])};
        break;
      case 1:
        f.relation = "d0";
        f.args = {Value::Oid(s.entities[rng->UniformU64(n)])};
        break;
      default:
        f.relation = "d1";
        f.args = {Value::Oid(s.entities[rng->UniformU64(n)]),
                  Value::Oid(s.entities[rng->UniformU64(n)])};
    }
    out.Add(f);
  }
  return out;
}

class TpPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TpPropertyTest, Monotonicity) {
  // Lemma 2: I1 subset-of I2 implies TP(I1) subset-of TP(I2).
  Scenario s = RandomSetup(GetParam());
  auto eval = Evaluator::Make(s.db.get(), s.rules);
  ASSERT_TRUE(eval.ok());
  Rng rng(GetParam() + 99);
  Interpretation i1 = RandomInterpretation(s, &rng, 4);
  Interpretation i2 = RandomInterpretation(s, &rng, 4);
  for (const Fact& f : i1.AllFacts()) i2.Add(f);  // force i1 subset i2
  ASSERT_TRUE(i1.SubsetOf(i2));

  auto t1 = eval->ApplyOnce(i1);
  auto t2 = eval->ApplyOnce(i2);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(t1->SubsetOf(*t2));
}

TEST_P(TpPropertyTest, Inflationary) {
  // Def. 21: every A in I is an immediate consequence, so I <= TP(I).
  Scenario s = RandomSetup(GetParam() + 1000);
  auto eval = Evaluator::Make(s.db.get(), s.rules);
  ASSERT_TRUE(eval.ok());
  Rng rng(GetParam() + 42);
  Interpretation i = RandomInterpretation(s, &rng, 6);
  auto t = eval->ApplyOnce(i);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(i.SubsetOf(*t));
}

TEST_P(TpPropertyTest, ContinuityOnChains) {
  // Theorem 2: for an increasing chain I1 <= I2 <= ..., TP(U Ii) = U TP(Ii)
  // (finite chains suffice here since everything is finite).
  Scenario s = RandomSetup(GetParam() + 2000);
  auto eval = Evaluator::Make(s.db.get(), s.rules);
  ASSERT_TRUE(eval.ok());
  Rng rng(GetParam() + 7);

  // Build an increasing chain of 4 interpretations.
  std::vector<Interpretation> chain;
  Interpretation acc;
  for (int k = 0; k < 4; ++k) {
    Interpretation add = RandomInterpretation(s, &rng, 2);
    for (const Fact& f : add.AllFacts()) acc.Add(f);
    Interpretation copy;
    for (const Fact& f : acc.AllFacts()) copy.Add(f);
    chain.push_back(std::move(copy));
  }
  // Union of the chain is its last element.
  auto tp_union = eval->ApplyOnce(chain.back());
  ASSERT_TRUE(tp_union.ok());

  Interpretation union_of_tps;
  for (const Interpretation& i : chain) {
    auto t = eval->ApplyOnce(i);
    ASSERT_TRUE(t.ok());
    for (const Fact& f : t->AllFacts()) union_of_tps.Add(f);
  }
  // TP(U Ii) <= U TP(Ii) is the direction proven in Theorem 2; with finite
  // chains and monotonicity the two coincide.
  EXPECT_TRUE(tp_union->SubsetOf(union_of_tps));
  EXPECT_TRUE(union_of_tps.SubsetOf(*tp_union));
}

TEST_P(TpPropertyTest, IteratedTpReachesFixpointFromBelow) {
  Scenario s = RandomSetup(GetParam() + 3000);
  auto eval = Evaluator::Make(s.db.get(), s.rules);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());

  // Kleene iteration from the empty interpretation converges to the same
  // least fixpoint.
  Interpretation i;
  for (int k = 0; k < 64; ++k) {
    auto next = eval->ApplyOnce(i);
    ASSERT_TRUE(next.ok());
    if (*next == i) break;
    i = std::move(*next);
    EXPECT_TRUE(i.SubsetOf(*fp));  // every iterate stays below the lfp
  }
  EXPECT_TRUE(i == *fp);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TpPropertyTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace vqldb
