// Goal-directed evaluation: QuerySession::QueryGoalDirected evaluates only
// the goal's dependency cone — same answers, fewer rules fired.

#include <gtest/gtest.h>

#include "src/engine/query.h"

namespace vqldb {
namespace {

class GoalDirectedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<QuerySession>(&db_);
    ASSERT_TRUE(session_->Load(R"(
      object a {}.
      object b {}.
      object c {}.
      edge(a, b).
      edge(b, c).

      // Cone of `reach`.
      reach(X, Y) <- edge(X, Y).
      reach(X, Z) <- reach(X, Y), edge(Y, Z).

      // Expensive unrelated cone (cross product chains).
      noise0(X, Y) <- edge(X, Y).
      noise1(X, Y) <- noise0(X, Z), noise0(W, Y).
      noise2(X, Y) <- noise1(X, Z), noise1(W, Y).

      // A cone that depends on reach.
      sym(X, Y) <- reach(Y, X).
    )")
                    .ok());
  }

  VideoDatabase db_;
  std::unique_ptr<QuerySession> session_;
};

TEST_F(GoalDirectedTest, SameAnswersAsFullMaterialization) {
  auto full = session_->Query("?- reach(X, Y).");
  ASSERT_TRUE(full.ok());
  auto directed = session_->QueryGoalDirected("?- reach(X, Y).");
  ASSERT_TRUE(directed.ok());
  EXPECT_EQ(full->rows, directed->rows);
  EXPECT_EQ(full->columns, directed->columns);
}

TEST_F(GoalDirectedTest, PrunesUnrelatedCones) {
  auto relevant = session_->RelevantRules("reach");
  // Only the two reach rules (edge facts live in the EDB).
  EXPECT_EQ(relevant.size(), 2u);
  for (const Rule& rule : relevant) {
    EXPECT_EQ(rule.head.predicate, "reach");
  }
  auto directed = session_->QueryGoalDirected("?- reach(X, Y).");
  ASSERT_TRUE(directed.ok());
  size_t directed_firings = session_->last_stats().rule_firings;
  session_->Invalidate();
  // Force the legacy full-materialization path for the comparison: with
  // magic sets on, Query() itself prunes and fires even fewer rules.
  session_->set_magic_enabled(false);
  session_->set_cache_enabled(false);
  auto full = session_->Query("?- reach(X, Y).");
  ASSERT_TRUE(full.ok());
  size_t full_firings = session_->last_stats().rule_firings;
  EXPECT_LT(directed_firings, full_firings);
}

TEST_F(GoalDirectedTest, TransitiveConeIncluded) {
  auto relevant = session_->RelevantRules("sym");
  // sym depends on reach: 1 + 2 rules.
  EXPECT_EQ(relevant.size(), 3u);
  auto directed = session_->QueryGoalDirected("?- sym(X, Y).");
  ASSERT_TRUE(directed.ok());
  EXPECT_EQ(directed->rows.size(), 3u);  // ba, ca, cb
}

TEST_F(GoalDirectedTest, EdbGoalNeedsNoRules) {
  auto relevant = session_->RelevantRules("edge");
  EXPECT_TRUE(relevant.empty());
  auto directed = session_->QueryGoalDirected("?- edge(X, Y).");
  ASSERT_TRUE(directed.ok());
  EXPECT_EQ(directed->rows.size(), 2u);
}

TEST_F(GoalDirectedTest, ConstantFiltersStillApply) {
  ObjectId a = *db_.Resolve("a");
  auto directed = session_->QueryGoalDirected("?- reach(a, Y).");
  ASSERT_TRUE(directed.ok());
  EXPECT_EQ(directed->rows.size(), 2u);  // b and c
  for (const auto& row : directed->rows) {
    EXPECT_NE(row[0].oid_value(), a);
  }
}

TEST_F(GoalDirectedTest, UnknownPredicateYieldsEmpty) {
  auto directed = session_->QueryGoalDirected("?- nothing(X).");
  ASSERT_TRUE(directed.ok());
  EXPECT_TRUE(directed->rows.empty());
}

}  // namespace
}  // namespace vqldb
