// The session-level resource governor: a query that exceeds its memory,
// tuple, or solver-step budget fails with a structured ResourceExhausted,
// the degradation order (shed caches -> retry -> fail) runs, the database
// is never mutated by a governed failure, and the same session keeps
// answering afterwards. Mirrors deadline_test.cc for the space dimension.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/engine/query.h"
#include "src/obs/metrics.h"

namespace vqldb {
namespace {

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name, "")->value();
}

// A recursive constructive program over `n` pairwise-disjoint interval
// segments: the closure of `grow` under ++ ranges over all 2^n - 1
// non-empty subsets, each a distinct derived interval whose canonicalized
// duration has one fragment per constituent segment.
std::string GrowProgram(int segments) {
  std::string program;
  for (int i = 0; i < segments; ++i) {
    std::string lo = std::to_string(10 * i);
    std::string hi = std::to_string(10 * i + 5);
    program += "interval gi" + std::to_string(i) + " { duration: (t > " + lo +
               " and t < " + hi + ") }.\n";
    program += "seg(gi" + std::to_string(i) + ").\n";
  }
  program +=
      "grow(G) <- seg(G).\n"
      "grow(G1 ++ G2) <- grow(G1), seg(G2).\n";
  return program;
}

// A chain EDB whose transitive closure is far heavier than any selective
// query: n(n+1)/2 path facts at ~10^2 bytes each.
void LoadChain(QuerySession* session, int n) {
  std::string program;
  for (int i = 0; i <= n; ++i) {
    program += "object n" + std::to_string(i) + " { }.\n";
  }
  for (int i = 0; i < n; ++i) {
    program +=
        "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
  }
  program +=
      "path(X, Y) <- edge(X, Y).\n"
      "path(X, Z) <- path(X, Y), edge(Y, Z).\n";
  ASSERT_TRUE(session->Load(program).ok());
}

TEST(ResourceGovernorTest, HeavyQueryTripsGovernorAndSessionRecovers) {
  VideoDatabase db;
  QuerySession session(&db);
  LoadChain(&session, 64);
  session.EnableMemoryGovernor(60'000);

  auto heavy = session.Query("?- path(X, Y).");
  ASSERT_FALSE(heavy.ok());
  EXPECT_TRUE(heavy.status().IsResourceExhausted()) << heavy.status();

  // The failed query released its reservations and cleared the trip: the
  // same session still answers a selective query within the same limit.
  auto small = session.Query("?- edge(n0, Y).");
  ASSERT_TRUE(small.ok()) << small.status();
  EXPECT_EQ(small->size(), 1u);
}

TEST(ResourceGovernorTest, PerQueryTupleLimitFailsStructured) {
  VideoDatabase db;
  QuerySession session(&db);
  LoadChain(&session, 32);
  session.set_per_query_limits({0, /*max_tuples=*/100, 0});

  auto result = session.Query("?- path(X, Y).");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
  EXPECT_NE(result.status().message().find("tuple budget"), std::string::npos)
      << result.status();

  session.set_per_query_limits({});
  auto retry = session.Query("?- path(X, Y).");
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry->size(), 32u * 33u / 2u);
}

TEST(ResourceGovernorTest, RecursiveConstructiveProgramIsBoundedAndRolledBack) {
  // The paper's own termination caveat: a recursive constructive rule can
  // derive unboundedly many generalized intervals. The tuple budget turns
  // that into a clean per-query failure, and the rollback anchor guarantees
  // none of the intervals materialized before the trip survive it.
  {
    // Control: unlimited, the same program really does materialize derived
    // intervals (2^7 - 1 subset unions minus the 7 base segments).
    VideoDatabase control_db;
    QuerySession control(&control_db);
    ASSERT_TRUE(control.Load(GrowProgram(7)).ok());
    auto full = control.Query("?- grow(G).");
    ASSERT_TRUE(full.ok()) << full.status();
    EXPECT_EQ(full->size(), 127u);
    EXPECT_GT(control_db.derived_interval_count(), 0u);
  }

  VideoDatabase db;
  QuerySession session(&db);
  ASSERT_TRUE(session.Load(GrowProgram(7)).ok());
  session.set_per_query_limits({0, /*max_tuples=*/60, 0});

  size_t derived_before = db.derived_interval_count();
  uint64_t exhausted_before =
      CounterValue("vqldb_queries_resource_exhausted_total");
  auto result = session.Query("?- grow(G).");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
  EXPECT_GT(CounterValue("vqldb_queries_resource_exhausted_total"),
            exhausted_before);

  // A governed failure never mutates the database.
  EXPECT_EQ(db.derived_interval_count(), derived_before);
  EXPECT_TRUE(db.Validate().ok());

  session.set_per_query_limits({});
  auto follow_up = session.Query("?- seg(G).");
  ASSERT_TRUE(follow_up.ok()) << follow_up.status();
  EXPECT_EQ(follow_up->size(), 7u);
}

TEST(ResourceGovernorTest, FailedGovernedQueryShedsCachesFirst) {
  VideoDatabase db;
  QuerySession session(&db);
  LoadChain(&session, 24);
  session.EnableMemoryGovernor(1u << 30);  // governed, but roomy

  ASSERT_TRUE(session.Query("?- path(n0, Y).").ok());
  ASSERT_EQ(session.query_cache_size(), 1u);
  ASSERT_GT(session.query_cache_bytes(), 0u);
  uint64_t evicted_before = CounterValue("vqldb_cache_bytes_evicted_total");

  // Force a trip: the degradation order sheds every retained cache before
  // the query is allowed to fail.
  session.set_per_query_limits({0, /*max_tuples=*/10, 0});
  auto result = session.Query("?- path(X, Y).");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_EQ(session.query_cache_size(), 0u);
  EXPECT_EQ(session.query_cache_bytes(), 0u);
  EXPECT_GT(CounterValue("vqldb_cache_bytes_evicted_total"), evicted_before);

  session.set_per_query_limits({});
  auto again = session.Query("?- path(n0, Y).");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->size(), 24u);
}

TEST(ResourceGovernorTest, SolverHeavyProgramTripsSolverStepLimit) {
  // Satellite regression: the trip must come from inside the constraint
  // layer, proving the inner-loop cancellation plumbing end to end. Every
  // ++ concatenation canonicalizes the unioned duration (an IntervalSet
  // construction that charges one solver step per fragment), so the subset
  // closure charges far more than 150 steps before it can complete.
  VideoDatabase db;
  QuerySession session(&db);
  ASSERT_TRUE(session.Load(GrowProgram(7)).ok());

  session.set_per_query_limits({0, 0, /*max_solver_steps=*/150});
  auto result = session.Query("?- grow(G).");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
  EXPECT_NE(result.status().message().find("solver-step"), std::string::npos)
      << result.status();
  EXPECT_TRUE(db.Validate().ok());

  session.set_per_query_limits({});
  auto retry = session.Query("?- grow(G).");
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry->size(), 127u);
}

TEST(ResourceGovernorTest, ExplainAnalyzeShowsGovernorAndBudgetLines) {
  VideoDatabase db;
  QuerySession session(&db);
  LoadChain(&session, 8);
  session.EnableMemoryGovernor(1u << 30);

  auto explained = session.Explain("?- path(n0, Y).", /*analyze=*/true);
  ASSERT_TRUE(explained.ok()) << explained.status();
  EXPECT_NE(explained->find("governor: on"), std::string::npos) << *explained;
  EXPECT_NE(explained->find("\nbudget: "), std::string::npos) << *explained;
  EXPECT_NE(explained->find("bytes reserved"), std::string::npos);

  session.set_governor(nullptr);
  auto ungoverned = session.Explain("?- path(n0, Y).", /*analyze=*/true);
  ASSERT_TRUE(ungoverned.ok());
  EXPECT_NE(ungoverned->find("governor: off"), std::string::npos);
  EXPECT_EQ(ungoverned->find("\nbudget: "), std::string::npos);
}

TEST(ResourceGovernorTest, GovernorGaugesTrackReservations) {
  VideoDatabase db;
  QuerySession session(&db);
  LoadChain(&session, 16);
  session.EnableMemoryGovernor(1u << 30);

  ASSERT_TRUE(session.Query("?- path(n0, Y).").ok());
  auto& registry = obs::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetGauge("vqldb_governor_bytes_reserved")->value(),
            static_cast<int64_t>(session.governor()->bytes_reserved()));
  EXPECT_GT(session.governor()->bytes_peak(), 0u);
  // Retained state (the cached answer) is the only live reservation.
  EXPECT_EQ(session.governor()->bytes_reserved(), session.query_cache_bytes());
}

TEST(ResourceGovernorTest, PartialStatsSurviveGovernedAbort) {
  VideoDatabase db;
  QuerySession session(&db);
  LoadChain(&session, 32);
  session.set_per_query_limits({0, /*max_tuples=*/100, 0});
  ASSERT_FALSE(session.Query("?- path(X, Y).").ok());
  // The aborted evaluation folded its progress into last_stats, mirroring
  // the DeadlineExceeded contract.
  EXPECT_GE(session.last_stats().iterations, 1u);
  EXPECT_GT(session.last_stats().derived_facts, 0u);
}

TEST(ResourceGovernorTest, InjectedBudgetFaultsSurfaceCleanly) {
  VideoDatabase db;
  QuerySession session(&db);
  LoadChain(&session, 16);
  session.EnableMemoryGovernor(1u << 30);
  session.governor()->ArmFaults({/*seed=*/99, /*trip_p=*/1.0});

  auto result = session.Query("?- path(X, Y).");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
  EXPECT_GT(session.governor()->injected_trips(), 0u);
  EXPECT_TRUE(db.Validate().ok());

  session.governor()->ArmFaults({0, 0.0});
  auto retry = session.Query("?- path(X, Y).");
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry->size(), 16u * 17u / 2u);
}

TEST(ResourceGovernorTest, UninstallingGovernorRestoresUnlimited) {
  VideoDatabase db;
  QuerySession session(&db);
  LoadChain(&session, 32);
  session.EnableMemoryGovernor(10'000);
  ASSERT_FALSE(session.Query("?- path(X, Y).").ok());
  session.EnableMemoryGovernor(0);  // off
  EXPECT_EQ(session.governor(), nullptr);
  auto result = session.Query("?- path(X, Y).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 32u * 33u / 2u);
}

}  // namespace
}  // namespace vqldb
