// The bound-first join-order heuristic (EvalOptions::reorder_body): same
// answers as written order, fewer intermediate bindings on adversarial
// orderings.

#include <gtest/gtest.h>

#include <numeric>

#include "src/common/logging.h"
#include "src/constraint/concrete_domain.h"
#include "src/engine/planner.h"
#include "src/engine/query.h"
#include "src/lang/parser.h"
#include "src/obs/stats.h"

namespace vqldb {
namespace {

std::vector<Rule> ParseRules(std::initializer_list<const char*> texts) {
  std::vector<Rule> rules;
  for (const char* text : texts) {
    auto r = Parser::ParseRule(text);
    EXPECT_TRUE(r.ok()) << r.status();
    rules.push_back(*r);
  }
  return rules;
}

// A star graph: hub connected to n leaves, plus one tagged leaf.
std::unique_ptr<VideoDatabase> StarGraph(size_t leaves) {
  auto db = std::make_unique<VideoDatabase>();
  ObjectId hub = *db->CreateEntity("hub");
  for (size_t i = 0; i < leaves; ++i) {
    ObjectId leaf = *db->CreateEntity("leaf" + std::to_string(i));
    VQLDB_CHECK_OK(db->AssertFact("edge", {Value::Oid(hub), Value::Oid(leaf)}));
  }
  VQLDB_CHECK_OK(
      db->AssertFact("tagged", {Value::Oid(*db->Resolve("leaf0"))}));
  return db;
}

TEST(ReorderTest, SameAnswersEitherWay) {
  for (bool reorder : {false, true}) {
    auto db = StarGraph(30);
    EvalOptions options;
    options.reorder_body = reorder;
    // Adversarial order: the big relation first, the selective one last.
    auto eval = Evaluator::Make(
        db.get(),
        ParseRules({"hit(X, Y) <- edge(X, Y), tagged(Y)."}), options);
    ASSERT_TRUE(eval.ok());
    auto fp = eval->Fixpoint();
    ASSERT_TRUE(fp.ok());
    EXPECT_EQ(fp->FactsFor("hit").size(), 1u) << "reorder=" << reorder;
  }
}

TEST(ReorderTest, ReorderingReducesConstraintWork) {
  auto run = [](bool reorder) {
    auto db = StarGraph(200);
    EvalOptions options;
    options.reorder_body = reorder;
    // Written order forces 200 edge bindings each probing `tagged`; the
    // heuristic starts from `tagged` (1 fact) and probes edges by index.
    auto eval = Evaluator::Make(
        db.get(),
        ParseRules({"hit(X, Y) <- edge(X, Y), tagged(Y), X != Y."}), options);
    VQLDB_CHECK(eval.ok());
    auto fp = eval->Fixpoint();
    VQLDB_CHECK(fp.ok());
    VQLDB_CHECK(fp->FactsFor("hit").size() == 1);
    return eval->stats().constraint_checks;
  };
  size_t written_order = run(false);
  size_t reordered = run(true);
  EXPECT_LE(reordered, written_order);
}

TEST(ReorderTest, UnboundBuiltinsMoveAfterRelations) {
  // Interval(G) first would enumerate the whole domain; after reorder it
  // follows the selective relational literal that binds G.
  auto db = std::make_unique<VideoDatabase>();
  for (int i = 0; i < 50; ++i) {
    double begin = 10.0 * i;
    VQLDB_CHECK_OK(db->CreateInterval("g" + std::to_string(i),
                                      GeneralizedInterval::Single(begin,
                                                                  begin + 5))
                       .status());
  }
  VQLDB_CHECK_OK(db->AssertFact(
      "featured", {Value::Oid(*db->Resolve("g7"))}));

  EvalOptions options;
  options.reorder_body = true;
  auto eval = Evaluator::Make(
      db.get(),
      ParseRules({"pick(G) <- Interval(G), featured(G)."}), options);
  ASSERT_TRUE(eval.ok());
  const CompiledRule& compiled = eval->compiled_rules()[0];
  ASSERT_EQ(compiled.steps.size(), 2u);
  EXPECT_EQ(compiled.steps[0].literal.predicate, "featured");
  EXPECT_EQ(compiled.steps[1].literal.predicate, "Interval");
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("pick").size(), 1u);
}

TEST(ReorderTest, RecursiveProgramStillCorrect) {
  auto db = std::make_unique<VideoDatabase>();
  std::vector<ObjectId> nodes;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(*db->CreateEntity("n" + std::to_string(i)));
  }
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    VQLDB_CHECK_OK(db->AssertFact(
        "edge", {Value::Oid(nodes[i]), Value::Oid(nodes[i + 1])}));
  }
  for (bool reorder : {false, true}) {
    EvalOptions options;
    options.reorder_body = reorder;
    auto eval = Evaluator::Make(
        db.get(),
        ParseRules({"reach(X, Y) <- edge(X, Y).",
                    "reach(X, Z) <- edge(Y, Z), reach(X, Y)."}),
        options);
    ASSERT_TRUE(eval.ok());
    auto fp = eval->Fixpoint();
    ASSERT_TRUE(fp.ok());
    EXPECT_EQ(fp->FactsFor("reach").size(), 15u) << "reorder=" << reorder;
  }
}

// ------------------------------------------------------------------------
// Negative tests: orderings that would hoist a computable (concrete-domain)
// literal past the literal producing its variables. A computable literal
// cannot bind variables, so such an order is a runtime EvaluationError; the
// greedy heuristic, the planner policy, and the policy validator must all
// refuse to produce it.

ConcreteDomain NumericDomain() {
  ConcreteDomain d("numeric");
  d.RegisterPredicate("small", 1, [](const std::vector<DomainValue>& a) {
    return a[0].number < 10;
  });
  return d;
}

TEST(ReorderTest, GreedyNeverHoistsComputablePastProducer) {
  // small(X) scores as nearly-bound (one argument, no constants needed) —
  // the old greedy hoisted it ahead of at(O, X), the literal that binds X,
  // turning a valid written order into an unbound-argument error.
  auto db = std::make_unique<VideoDatabase>();
  for (auto [name, x] : std::initializer_list<std::pair<const char*, int>>{
           {"a", 3}, {"b", 7}, {"c", 50}}) {
    ObjectId id = *db->CreateEntity(name);
    VQLDB_CHECK_OK(db->AssertFact("at", {Value::Oid(id), Value::Int(x)}));
  }
  ConcreteDomain domain = NumericDomain();
  EvalOptions options;
  options.reorder_body = true;
  options.concrete_domain = &domain;
  auto eval = Evaluator::Make(
      db.get(), ParseRules({"tiny(O) <- at(O, X), small(X)."}), options);
  ASSERT_TRUE(eval.ok()) << eval.status();
  const CompiledRule& compiled = eval->compiled_rules()[0];
  ASSERT_EQ(compiled.steps.size(), 2u);
  EXPECT_EQ(compiled.steps[0].literal.predicate, "at");
  EXPECT_EQ(compiled.steps[1].literal.predicate, "small");
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok()) << fp.status();
  EXPECT_EQ(fp->FactsFor("tiny").size(), 2u);  // a, b
}

TEST(ReorderTest, GreedyRepairsComputableWrittenBeforeProducer) {
  // Written with the computable literal first — unrunnable as written; the
  // legality-aware greedy moves the producing literal ahead of it.
  auto db = std::make_unique<VideoDatabase>();
  ObjectId id = *db->CreateEntity("a");
  VQLDB_CHECK_OK(db->AssertFact("at", {Value::Oid(id), Value::Int(3)}));
  ConcreteDomain domain = NumericDomain();
  EvalOptions options;
  options.concrete_domain = &domain;

  auto rules = ParseRules({"tiny(O) <- small(X), at(O, X)."});
  {
    // Written order: unbound computable argument is a runtime error.
    auto eval = Evaluator::Make(db.get(), rules, options);
    ASSERT_TRUE(eval.ok()) << eval.status();
    EXPECT_TRUE(eval->Fixpoint().status().IsEvaluationError());
  }
  options.reorder_body = true;
  auto eval = Evaluator::Make(db.get(), rules, options);
  ASSERT_TRUE(eval.ok()) << eval.status();
  const CompiledRule& compiled = eval->compiled_rules()[0];
  EXPECT_EQ(compiled.steps[0].literal.predicate, "at");
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok()) << fp.status();
  EXPECT_EQ(fp->FactsFor("tiny").size(), 1u);
}

// An adversarial policy that strands the computable literal first; the
// compiler must reject the permutation and keep the written order.
class StrandingOrderer : public LiteralOrderer {
 public:
  std::vector<size_t> OrderBody(
      const std::vector<CompiledLiteral>& literals,
      const std::vector<bool>& computable) const override {
    std::vector<size_t> perm(literals.size());
    std::iota(perm.begin(), perm.end(), 0);
    // Move the computable literal to the front, shifting the rest right.
    for (size_t i = 0; i < computable.size(); ++i) {
      if (computable[i]) {
        perm.erase(perm.begin() + static_cast<ptrdiff_t>(i));
        perm.insert(perm.begin(), i);
        break;
      }
    }
    return perm;
  }
};

// A policy returning a malformed (duplicated-index) permutation.
class MalformedOrderer : public LiteralOrderer {
 public:
  std::vector<size_t> OrderBody(
      const std::vector<CompiledLiteral>& literals,
      const std::vector<bool>&) const override {
    return std::vector<size_t>(literals.size(), 0);
  }
};

TEST(ReorderTest, IllegalPolicyPermutationFallsBackToWrittenOrder) {
  VideoDatabase db;
  ObjectId id = *db.CreateEntity("a");
  VQLDB_CHECK_OK(db.AssertFact("at", {Value::Oid(id), Value::Int(3)}));
  ConcreteDomain domain = NumericDomain();
  auto rule = Parser::ParseRule("tiny(O) <- at(O, X), small(X).");
  ASSERT_TRUE(rule.ok());

  for (const LiteralOrderer* orderer :
       std::initializer_list<const LiteralOrderer*>{
           new StrandingOrderer(), new MalformedOrderer()}) {
    CompileOptions copts;
    copts.concrete_domain = &domain;
    copts.orderer = orderer;
    auto compiled = RuleCompiler::Compile(*rule, db, copts);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    // The written order survives: producer first, computable check second.
    ASSERT_EQ(compiled->steps.size(), 2u);
    EXPECT_EQ(compiled->steps[0].literal.predicate, "at");
    EXPECT_EQ(compiled->steps[1].literal.predicate, "small");
    delete orderer;
  }
}

TEST(ReorderTest, PlannerOrderingPreservesComputableLegality) {
  // The planner's selectivity ordering faces the same trap: small(X) has
  // the fewest estimated candidates, but must still wait for at(O, X).
  auto db = std::make_unique<VideoDatabase>();
  for (int i = 0; i < 40; ++i) {
    ObjectId id = *db->CreateEntity("e" + std::to_string(i));
    VQLDB_CHECK_OK(db->AssertFact("at", {Value::Oid(id), Value::Int(i)}));
  }
  ConcreteDomain domain = NumericDomain();
  Planner planner(db.get(), obs::StatsSnapshot{});
  EvalOptions options;
  options.reorder_body = true;
  options.body_orderer = &planner;
  options.concrete_domain = &domain;
  auto eval = Evaluator::Make(
      db.get(), ParseRules({"tiny(O) <- small(X), at(O, X)."}), options);
  ASSERT_TRUE(eval.ok()) << eval.status();
  const CompiledRule& compiled = eval->compiled_rules()[0];
  ASSERT_EQ(compiled.steps.size(), 2u);
  EXPECT_EQ(compiled.steps[0].literal.predicate, "at");
  EXPECT_EQ(compiled.steps[1].literal.predicate, "small");
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok()) << fp.status();
  EXPECT_EQ(fp->FactsFor("tiny").size(), 10u);  // x in [0, 10)
}

}  // namespace
}  // namespace vqldb
