// The bound-first join-order heuristic (EvalOptions::reorder_body): same
// answers as written order, fewer intermediate bindings on adversarial
// orderings.

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/engine/query.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

std::vector<Rule> ParseRules(std::initializer_list<const char*> texts) {
  std::vector<Rule> rules;
  for (const char* text : texts) {
    auto r = Parser::ParseRule(text);
    EXPECT_TRUE(r.ok()) << r.status();
    rules.push_back(*r);
  }
  return rules;
}

// A star graph: hub connected to n leaves, plus one tagged leaf.
std::unique_ptr<VideoDatabase> StarGraph(size_t leaves) {
  auto db = std::make_unique<VideoDatabase>();
  ObjectId hub = *db->CreateEntity("hub");
  for (size_t i = 0; i < leaves; ++i) {
    ObjectId leaf = *db->CreateEntity("leaf" + std::to_string(i));
    VQLDB_CHECK_OK(db->AssertFact("edge", {Value::Oid(hub), Value::Oid(leaf)}));
  }
  VQLDB_CHECK_OK(
      db->AssertFact("tagged", {Value::Oid(*db->Resolve("leaf0"))}));
  return db;
}

TEST(ReorderTest, SameAnswersEitherWay) {
  for (bool reorder : {false, true}) {
    auto db = StarGraph(30);
    EvalOptions options;
    options.reorder_body = reorder;
    // Adversarial order: the big relation first, the selective one last.
    auto eval = Evaluator::Make(
        db.get(),
        ParseRules({"hit(X, Y) <- edge(X, Y), tagged(Y)."}), options);
    ASSERT_TRUE(eval.ok());
    auto fp = eval->Fixpoint();
    ASSERT_TRUE(fp.ok());
    EXPECT_EQ(fp->FactsFor("hit").size(), 1u) << "reorder=" << reorder;
  }
}

TEST(ReorderTest, ReorderingReducesConstraintWork) {
  auto run = [](bool reorder) {
    auto db = StarGraph(200);
    EvalOptions options;
    options.reorder_body = reorder;
    // Written order forces 200 edge bindings each probing `tagged`; the
    // heuristic starts from `tagged` (1 fact) and probes edges by index.
    auto eval = Evaluator::Make(
        db.get(),
        ParseRules({"hit(X, Y) <- edge(X, Y), tagged(Y), X != Y."}), options);
    VQLDB_CHECK(eval.ok());
    auto fp = eval->Fixpoint();
    VQLDB_CHECK(fp.ok());
    VQLDB_CHECK(fp->FactsFor("hit").size() == 1);
    return eval->stats().constraint_checks;
  };
  size_t written_order = run(false);
  size_t reordered = run(true);
  EXPECT_LE(reordered, written_order);
}

TEST(ReorderTest, UnboundBuiltinsMoveAfterRelations) {
  // Interval(G) first would enumerate the whole domain; after reorder it
  // follows the selective relational literal that binds G.
  auto db = std::make_unique<VideoDatabase>();
  for (int i = 0; i < 50; ++i) {
    double begin = 10.0 * i;
    VQLDB_CHECK_OK(db->CreateInterval("g" + std::to_string(i),
                                      GeneralizedInterval::Single(begin,
                                                                  begin + 5))
                       .status());
  }
  VQLDB_CHECK_OK(db->AssertFact(
      "featured", {Value::Oid(*db->Resolve("g7"))}));

  EvalOptions options;
  options.reorder_body = true;
  auto eval = Evaluator::Make(
      db.get(),
      ParseRules({"pick(G) <- Interval(G), featured(G)."}), options);
  ASSERT_TRUE(eval.ok());
  const CompiledRule& compiled = eval->compiled_rules()[0];
  ASSERT_EQ(compiled.steps.size(), 2u);
  EXPECT_EQ(compiled.steps[0].literal.predicate, "featured");
  EXPECT_EQ(compiled.steps[1].literal.predicate, "Interval");
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("pick").size(), 1u);
}

TEST(ReorderTest, RecursiveProgramStillCorrect) {
  auto db = std::make_unique<VideoDatabase>();
  std::vector<ObjectId> nodes;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(*db->CreateEntity("n" + std::to_string(i)));
  }
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    VQLDB_CHECK_OK(db->AssertFact(
        "edge", {Value::Oid(nodes[i]), Value::Oid(nodes[i + 1])}));
  }
  for (bool reorder : {false, true}) {
    EvalOptions options;
    options.reorder_body = reorder;
    auto eval = Evaluator::Make(
        db.get(),
        ParseRules({"reach(X, Y) <- edge(X, Y).",
                    "reach(X, Z) <- edge(Y, Z), reach(X, Y)."}),
        options);
    ASSERT_TRUE(eval.ok());
    auto fp = eval->Fixpoint();
    ASSERT_TRUE(fp.ok());
    EXPECT_EQ(fp->FactsFor("reach").size(), 15u) << "reorder=" << reorder;
  }
}

}  // namespace
}  // namespace vqldb
