#include "src/engine/evaluator.h"

#include <gtest/gtest.h>

#include "src/common/logging.h"

#include "src/engine/query.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

// Builds a small graph EDB: edge(a,b), edge(b,c), edge(c,d).
void SeedGraph(VideoDatabase* db) {
  for (const char* s : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(db->CreateEntity(s).ok());
  }
  auto edge = [&](const char* x, const char* y) {
    ASSERT_TRUE(db->AssertFact("edge", {Value::Oid(*db->Resolve(x)),
                                        Value::Oid(*db->Resolve(y))})
                    .ok());
  };
  edge("a", "b");
  edge("b", "c");
  edge("c", "d");
}

std::vector<Rule> ParseRules(std::initializer_list<const char*> texts) {
  std::vector<Rule> rules;
  for (const char* text : texts) {
    auto r = Parser::ParseRule(text);
    EXPECT_TRUE(r.ok()) << text << ": " << r.status();
    rules.push_back(*r);
  }
  return rules;
}

TEST(EvaluatorTest, EdbSeedsDatabaseFacts) {
  VideoDatabase db;
  SeedGraph(&db);
  auto eval = Evaluator::Make(&db, {});
  ASSERT_TRUE(eval.ok());
  auto edb = eval->Edb();
  ASSERT_TRUE(edb.ok());
  EXPECT_EQ(edb->FactsFor("edge").size(), 3u);
}

TEST(EvaluatorTest, EmptyProgramFixpointIsEdb) {
  VideoDatabase db;
  SeedGraph(&db);
  auto eval = Evaluator::Make(&db, {});
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->size(), 3u);
}

TEST(EvaluatorTest, SingleJoinRule) {
  VideoDatabase db;
  SeedGraph(&db);
  auto eval = Evaluator::Make(
      &db, ParseRules({"two_hop(X, Z) <- edge(X, Y), edge(Y, Z)."}));
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("two_hop").size(), 2u);  // a->c, b->d
}

TEST(EvaluatorTest, TransitiveClosureRecursion) {
  VideoDatabase db;
  SeedGraph(&db);
  auto eval = Evaluator::Make(
      &db, ParseRules({"reach(X, Y) <- edge(X, Y).",
                       "reach(X, Z) <- reach(X, Y), edge(Y, Z)."}));
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("reach").size(), 6u);  // ab ac ad bc bd cd
}

TEST(EvaluatorTest, NaiveAndSemiNaiveAgree) {
  for (bool semi : {false, true}) {
    VideoDatabase db;
    SeedGraph(&db);
    EvalOptions options;
    options.semi_naive = semi;
    auto eval = Evaluator::Make(
        &db,
        ParseRules({"reach(X, Y) <- edge(X, Y).",
                    "reach(X, Z) <- reach(X, Y), edge(Y, Z).",
                    "sym(X, Y) <- reach(Y, X)."}),
        options);
    ASSERT_TRUE(eval.ok());
    auto fp = eval->Fixpoint();
    ASSERT_TRUE(fp.ok());
    EXPECT_EQ(fp->FactsFor("reach").size(), 6u) << "semi=" << semi;
    EXPECT_EQ(fp->FactsFor("sym").size(), 6u) << "semi=" << semi;
  }
}

TEST(EvaluatorTest, SemiNaiveUsesFewerFirings) {
  auto run = [](bool semi) {
    VideoDatabase db;
    // Longer chain to make the difference visible.
    std::vector<ObjectId> nodes;
    for (int i = 0; i < 12; ++i) {
      nodes.push_back(*db.CreateEntity("n" + std::to_string(i)));
    }
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      VQLDB_CHECK_OK(db.AssertFact(
          "edge", {Value::Oid(nodes[i]), Value::Oid(nodes[i + 1])}));
    }
    EvalOptions options;
    options.semi_naive = semi;
    auto eval = Evaluator::Make(
        &db, ParseRules({"reach(X, Y) <- edge(X, Y).",
                         "reach(X, Z) <- reach(X, Y), edge(Y, Z)."}),
        options);
    VQLDB_CHECK(eval.ok());
    auto fp = eval->Fixpoint();
    VQLDB_CHECK(fp.ok());
    return std::make_pair(fp->FactsFor("reach").size(),
                          eval->stats().rule_firings);
  };
  auto [naive_size, naive_firings] = run(false);
  auto [semi_size, semi_firings] = run(true);
  EXPECT_EQ(naive_size, semi_size);
  EXPECT_LT(semi_firings, naive_firings);
}

TEST(EvaluatorTest, BuiltinObjectEnumeration) {
  VideoDatabase db;
  SeedGraph(&db);
  ASSERT_TRUE(db.CreateInterval("gi", GeneralizedInterval::Single(0, 1)).ok());
  auto eval =
      Evaluator::Make(&db, ParseRules({"is_obj(X) <- Object(X).",
                                       "is_int(X) <- Interval(X).",
                                       "is_any(X) <- Anyobject(X)."}));
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("is_obj").size(), 4u);
  EXPECT_EQ(fp->FactsFor("is_int").size(), 1u);
  EXPECT_EQ(fp->FactsFor("is_any").size(), 5u);
}

TEST(EvaluatorTest, ComparisonConstraints) {
  VideoDatabase db;
  ASSERT_TRUE(db.AssertFact("n", {Value::Int(1)}).ok());
  ASSERT_TRUE(db.AssertFact("n", {Value::Int(5)}).ok());
  ASSERT_TRUE(db.AssertFact("n", {Value::Int(9)}).ok());
  auto eval = Evaluator::Make(
      &db, ParseRules({"small(X) <- n(X), X < 6.",
                       "pairs(X, Y) <- n(X), n(Y), X < Y.",
                       "diff(X, Y) <- n(X), n(Y), X != Y."}));
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("small").size(), 2u);
  EXPECT_EQ(fp->FactsFor("pairs").size(), 3u);
  EXPECT_EQ(fp->FactsFor("diff").size(), 6u);
}

TEST(EvaluatorTest, AttributeAccessConstraints) {
  VideoDatabase db;
  ObjectId o1 = *db.CreateEntity("o1");
  ObjectId o2 = *db.CreateEntity("o2");
  ASSERT_TRUE(db.SetAttribute(o1, "age", Value::Int(30)).ok());
  ASSERT_TRUE(db.SetAttribute(o2, "age", Value::Int(40)).ok());
  auto eval = Evaluator::Make(
      &db, ParseRules({"older(X, Y) <- Object(X), Object(Y), X.age > Y.age.",
                       "aged(X) <- Object(X), X.age >= 40."}));
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  ASSERT_EQ(fp->FactsFor("older").size(), 1u);
  EXPECT_EQ(fp->FactsFor("older")[0].args[0], Value::Oid(o2));
  EXPECT_EQ(fp->FactsFor("aged").size(), 1u);
}

TEST(EvaluatorTest, UndefinedAttributeFailsConstraintSilently) {
  VideoDatabase db;
  ObjectId o1 = *db.CreateEntity("o1");
  ASSERT_TRUE(db.SetAttribute(o1, "age", Value::Int(30)).ok());
  ASSERT_TRUE(db.CreateEntity("o2").ok());  // no age
  auto eval = Evaluator::Make(
      &db, ParseRules({"aged(X) <- Object(X), X.age >= 0."}));
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("aged").size(), 1u);
}

TEST(EvaluatorTest, StrictTypesTurnsMismatchIntoError) {
  VideoDatabase db;
  ASSERT_TRUE(db.AssertFact("n", {Value::String("x")}).ok());
  ASSERT_TRUE(db.AssertFact("n", {Value::Int(1)}).ok());
  EvalOptions options;
  options.strict_types = true;
  auto eval = Evaluator::Make(
      &db, ParseRules({"bad(X, Y) <- n(X), n(Y), X < Y."}), options);
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval->Fixpoint().status().IsTypeError());
}

TEST(EvaluatorTest, GroundConstraintsPruneRule) {
  VideoDatabase db;
  ASSERT_TRUE(db.AssertFact("p", {Value::Int(1)}).ok());
  auto eval = Evaluator::Make(
      &db, ParseRules({"never(X) <- p(X), 1 > 2.", "always(X) <- p(X), 1 < 2."}));
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_TRUE(fp->FactsFor("never").empty());
  EXPECT_EQ(fp->FactsFor("always").size(), 1u);
}

TEST(EvaluatorTest, TemporalMembershipConstraint) {
  VideoDatabase db;
  ASSERT_TRUE(
      db.CreateInterval("gi", GeneralizedInterval::Single(10, 20)).ok());
  ASSERT_TRUE(db.AssertFact("probe", {Value::Int(15)}).ok());
  ASSERT_TRUE(db.AssertFact("probe", {Value::Int(25)}).ok());
  auto eval = Evaluator::Make(
      &db,
      ParseRules({"inside(T, G) <- probe(T), Interval(G), T in G.duration."}));
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  ASSERT_EQ(fp->FactsFor("inside").size(), 1u);
  EXPECT_EQ(fp->FactsFor("inside")[0].args[0], Value::Int(15));
}

TEST(EvaluatorTest, IterationCapReported) {
  VideoDatabase db;
  ASSERT_TRUE(db.AssertFact("p", {Value::Int(0)}).ok());
  // This program is finite, but cap iterations at 1 to exercise the guard
  // with a program that needs two rounds.
  EvalOptions options;
  options.max_iterations = 1;
  auto eval = Evaluator::Make(
      &db, ParseRules({"q(X) <- p(X).", "r(X) <- q(X)."}), options);
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval->Fixpoint().status().IsEvaluationError());
}

TEST(EvaluatorTest, ApplyOnceIsInflationary) {
  VideoDatabase db;
  SeedGraph(&db);
  auto eval = Evaluator::Make(
      &db, ParseRules({"reach(X, Y) <- edge(X, Y).",
                       "reach(X, Z) <- reach(X, Y), edge(Y, Z)."}));
  ASSERT_TRUE(eval.ok());
  Interpretation empty;
  auto step1 = eval->ApplyOnce(empty);
  ASSERT_TRUE(step1.ok());
  // One application: EDB facts + first-level reach.
  EXPECT_EQ(step1->FactsFor("edge").size(), 3u);
  EXPECT_EQ(step1->FactsFor("reach").size(), 0u);  // edge not yet in input
  auto step2 = eval->ApplyOnce(*step1);
  ASSERT_TRUE(step2.ok());
  EXPECT_EQ(step2->FactsFor("reach").size(), 3u);
  EXPECT_TRUE(step1->SubsetOf(*step2));
}

TEST(EvaluatorTest, FixpointIsFixedUnderApplyOnce) {
  VideoDatabase db;
  SeedGraph(&db);
  auto eval = Evaluator::Make(
      &db, ParseRules({"reach(X, Y) <- edge(X, Y).",
                       "reach(X, Z) <- reach(X, Y), edge(Y, Z)."}));
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  auto again = eval->ApplyOnce(*fp);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*again == *fp);  // Lemma 3: a model satisfies TP(I) <= I
}

TEST(EvaluatorTest, ConstantInRuleBodyFiltersViaIndex) {
  VideoDatabase db;
  SeedGraph(&db);
  auto eval = Evaluator::Make(
      &db, ParseRules({"from_a(Y) <- edge(a, Y)."}));
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  ASSERT_EQ(fp->FactsFor("from_a").size(), 1u);
  EXPECT_EQ(fp->FactsFor("from_a")[0].args[0],
            Value::Oid(*db.Resolve("b")));
}

TEST(EvaluatorTest, RepeatedVariableInLiteral) {
  VideoDatabase db;
  ObjectId a = *db.CreateEntity("a");
  ASSERT_TRUE(db.AssertFact("pair", {Value::Oid(a), Value::Oid(a)}).ok());
  ObjectId b = *db.CreateEntity("b");
  ASSERT_TRUE(db.AssertFact("pair", {Value::Oid(a), Value::Oid(b)}).ok());
  auto eval = Evaluator::Make(&db, ParseRules({"loop(X) <- pair(X, X)."}));
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("loop").size(), 1u);
}

}  // namespace
}  // namespace vqldb
