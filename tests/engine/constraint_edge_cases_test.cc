// Edge cases of constraint evaluation inside valuations: cross-kind
// comparisons, membership corner cases, mixed set/temporal operands, and
// the permissive-vs-strict type policies.

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/engine/query.h"

namespace vqldb {
namespace {

class ConstraintEdgeCasesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<QuerySession>(&db_);
    ASSERT_TRUE(session_->Load(R"(
      object o1 { score: 5, name: "alpha", tags: {1, 2, "x"} }.
      object o2 { score: 5.0, name: "beta" }.
      object o3 { name: "alpha" }.
      interval g { duration: (t >= 0 and t <= 10), entities: {o1, o2, o3} }.
      val(o1, 5).
      val(o2, "five").
    )")
                    .ok());
  }

  VideoDatabase db_;
  std::unique_ptr<QuerySession> session_;
};

TEST_F(ConstraintEdgeCasesTest, IntAndDoubleCompareEqual) {
  // o1.score is Int(5), o2.score is Double(5.0): numerically equal.
  ASSERT_TRUE(session_
                  ->AddRule("same_score(X, Y) <- Object(X), Object(Y), "
                            "X.score = Y.score, X != Y.")
                  .ok());
  auto r = session_->Query("?- same_score(X, Y).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);  // (o1,o2) and (o2,o1)
}

TEST_F(ConstraintEdgeCasesTest, OrderBetweenIncomparableKindsFails) {
  // val holds an int for o1 and a string for o2: the `<` pair mixing them
  // fails silently, the homogeneous pairs evaluate.
  ASSERT_TRUE(session_
                  ->AddRule("lt(X, Y) <- val(O1, X), val(O2, Y), X < Y.")
                  .ok());
  auto r = session_->Query("?- lt(X, Y).");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());  // 5<5 false; "five"<"five" false; mixed fail
}

TEST_F(ConstraintEdgeCasesTest, EqualityAcrossKindsIsJustFalse) {
  ASSERT_TRUE(session_
                  ->AddRule("eq(X, Y) <- val(O1, X), val(O2, Y), X = Y, "
                            "O1 != O2.")
                  .ok());
  auto r = session_->Query("?- eq(X, Y).");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());  // Int(5) != String("five"), no error
}

TEST_F(ConstraintEdgeCasesTest, MembershipInHeterogeneousSet) {
  ASSERT_TRUE(session_
                  ->AddRule("tagged(V) <- val(O, V), V in o1.tags.")
                  .ok());
  // val values are 5 and "five"; o1.tags = {1, 2, "x"}: no member.
  auto r = session_->Query("?- tagged(V).");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());

  ASSERT_TRUE(session_->AddRule("two_tag(O) <- Object(O), 2 in O.tags.").ok());
  auto two = session_->Query("?- two_tag(O).");
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->rows.size(), 1u);
}

TEST_F(ConstraintEdgeCasesTest, MembershipInNonSetFailsSilently) {
  ASSERT_TRUE(
      session_->AddRule("weird(O) <- Object(O), 1 in O.name.").ok());
  auto r = session_->Query("?- weird(O).");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(ConstraintEdgeCasesTest, InstantMembershipInDuration) {
  ASSERT_TRUE(
      session_->AddRule("covers(T) <- val(O, T), T in g.duration.").ok());
  auto r = session_->Query("?- covers(T).");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);  // 5 lies in [0,10]; "five" fails
  EXPECT_EQ(r->rows[0][0], Value::Int(5));
}

TEST_F(ConstraintEdgeCasesTest, SubsetBetweenSetAndTemporalFails) {
  ASSERT_TRUE(session_
                  ->AddRule("odd(O) <- Object(O), O.tags subset g.duration.")
                  .ok());
  auto r = session_->Query("?- odd(O).");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(ConstraintEdgeCasesTest, AccessOnNonOidFailsSilently) {
  ASSERT_TRUE(session_
                  ->AddRule("deep(X) <- val(O, X), X.anything = 1.")
                  .ok());
  auto r = session_->Query("?- deep(X).");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(ConstraintEdgeCasesTest, StrictTypesUpgradesAccessOnNonOid) {
  EvalOptions options;
  options.strict_types = true;
  QuerySession strict(&db_, options);
  ASSERT_TRUE(
      strict.AddRule("deep(X) <- val(O, X), X.anything = 1.").ok());
  EXPECT_TRUE(strict.Query("?- deep(X).").status().IsTypeError());
}

TEST_F(ConstraintEdgeCasesTest, EntailmentTrivialities) {
  // Empty durations entail everything; everything entails `true`-like wide
  // windows.
  ASSERT_TRUE(session_->Load(R"(
    interval nothing { duration: (false) }.
  )")
                  .ok());
  ASSERT_TRUE(session_
                  ->AddRule("sub(G1, G2) <- Interval(G1), Interval(G2), "
                            "G1.duration => G2.duration.")
                  .ok());
  auto r = session_->Query("?- sub(nothing, G).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);  // the empty extent entails both durations
  auto wide = session_->Query("?- sub(G, g).");
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->rows.size(), 2u);  // g itself and `nothing`
}

TEST_F(ConstraintEdgeCasesTest, SymbolBaseAccessInConstraint) {
  // Access on a constant symbol base (the paper's `g.entities` with g a
  // constant) rather than a variable.
  ASSERT_TRUE(session_
                  ->AddRule("named_alpha(O) <- Object(O), O in g.entities, "
                            "O.name = \"alpha\".")
                  .ok());
  auto r = session_->Query("?- named_alpha(O).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);  // o1 and o3
}

}  // namespace
}  // namespace vqldb
