// Property test: for seeded random programs and every goal binding pattern,
// the three execution strategies — QSQR top-down, magic-set rewrite, and the
// full bottom-up fixpoint — produce exactly the same answer sets, serially,
// in parallel, under a (far-future) deadline, and under a memory governor.
// Three coexisting strategies is where answer-divergence bugs breed; this
// suite is the correctness bar for EvalStrategy::kAuto being free to pick
// any of them.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/engine/query.h"
#include "src/lang/parser.h"
#include "src/model/database.h"

namespace vqldb {
namespace {

struct Scenario {
  std::unique_ptr<VideoDatabase> db;
  std::vector<Rule> rules;
  size_t entity_count = 0;
};

// Random positive programs over two EDB relations e/2 and f/2 and two IDB
// predicates d0/2 and d1/2 (the same fragment the magic-set property suite
// uses: joins, recursion, mutual recursion, Object(), (dis)equality).
Scenario RandomScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.db = std::make_unique<VideoDatabase>();
  size_t n = 3 + rng.UniformU64(4);
  s.entity_count = n;
  std::vector<ObjectId> entities;
  for (size_t i = 0; i < n; ++i) {
    entities.push_back(*s.db->CreateEntity("c" + std::to_string(i)));
  }
  for (size_t i = 0; i < 2 * n; ++i) {
    VQLDB_CHECK_OK(s.db->AssertFact(
        rng.Bernoulli(0.5) ? "e" : "f",
        {Value::Oid(entities[rng.UniformU64(n)]),
         Value::Oid(entities[rng.UniformU64(n)])}));
  }

  const char* templates[] = {
      "d0(X, Y) <- e(X, Y).",
      "d0(X, Y) <- f(Y, X).",
      "d0(X, Z) <- d0(X, Y), e(Y, Z).",
      "d1(X, Y) <- e(X, Y), f(X, Y).",
      "d1(X, Y) <- d0(X, Y), X != Y.",
      "d0(X, Y) <- d1(X, Y), d1(Y, X).",
      "d1(X, X) <- e(X, Y), Object(X).",
      "d0(X, Y) <- d1(X, Z), f(Z, Y).",
  };
  size_t num_rules = 2 + rng.UniformU64(5);
  for (size_t i = 0; i < num_rules; ++i) {
    auto rule = Parser::ParseRule(templates[rng.UniformU64(8)]);
    VQLDB_CHECK(rule.ok());
    s.rules.push_back(*rule);
  }
  return s;
}

// Every goal shape per scenario: both IDB predicates under all four binding
// patterns plus a repeated-variable goal.
std::vector<std::string> GoalsFor(const Scenario& s, uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  auto c = [&] { return "c" + std::to_string(rng.UniformU64(s.entity_count)); };
  std::vector<std::string> goals;
  for (const char* pred : {"d0", "d1"}) {
    std::string p(pred);
    goals.push_back("?- " + p + "(" + c() + ", Y).");
    goals.push_back("?- " + p + "(X, " + c() + ").");
    goals.push_back("?- " + p + "(" + c() + ", " + c() + ").");
    goals.push_back("?- " + p + "(X, Y).");
    goals.push_back("?- " + p + "(X, X).");
  }
  return goals;
}

void CheckEquivalence(uint64_t seed, size_t num_threads, bool with_deadline,
                      bool governed) {
  Scenario s = RandomScenario(seed);
  EvalOptions options;
  options.num_threads = num_threads;
  if (with_deadline) {
    options.deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(10);
  }
  QuerySession session(s.db.get(), options);
  session.set_cache_enabled(false);
  if (governed) session.EnableMemoryGovernor(256ull << 20);
  for (const Rule& rule : s.rules) ASSERT_TRUE(session.AddRule(rule).ok());

  for (const std::string& goal : GoalsFor(s, seed)) {
    // Baseline: the full bottom-up fixpoint, no goal direction.
    session.mutable_options()->strategy = EvalStrategy::kFixpoint;
    session.Invalidate();
    auto full = session.Query(goal);
    ASSERT_TRUE(full.ok()) << "seed " << seed << " goal " << goal << ": "
                           << full.status();

    session.mutable_options()->strategy = EvalStrategy::kQsqr;
    auto qsqr = session.Query(goal);
    ASSERT_TRUE(qsqr.ok()) << "seed " << seed << " goal " << goal << ": "
                           << qsqr.status();
    // This fragment has no decline condition: QSQR must actually run.
    EXPECT_TRUE(session.last_exec_info().used_qsqr)
        << "seed " << seed << " goal " << goal << " fell back: "
        << session.last_exec_info().magic_reason;
    EXPECT_EQ(qsqr->rows, full->rows) << "seed " << seed << " goal " << goal;
    EXPECT_EQ(qsqr->columns, full->columns)
        << "seed " << seed << " goal " << goal;

    session.mutable_options()->strategy = EvalStrategy::kMagic;
    auto magic = session.Query(goal);
    ASSERT_TRUE(magic.ok()) << "seed " << seed << " goal " << goal << ": "
                            << magic.status();
    EXPECT_TRUE(session.last_exec_info().used_magic)
        << "seed " << seed << " goal " << goal;
    EXPECT_EQ(magic->rows, full->rows) << "seed " << seed << " goal " << goal;
    EXPECT_EQ(magic->columns, full->columns)
        << "seed " << seed << " goal " << goal;

    // Auto may pick any of the three; whatever it picks must agree too.
    session.mutable_options()->strategy = EvalStrategy::kAuto;
    auto automatic = session.Query(goal);
    ASSERT_TRUE(automatic.ok()) << "seed " << seed << " goal " << goal << ": "
                                << automatic.status();
    EXPECT_EQ(automatic->rows, full->rows)
        << "seed " << seed << " goal " << goal << " (auto chose "
        << session.last_exec_info().strategy << ")";
  }
}

class StrategyEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyEquivalenceTest, SerialAnswersAgree) {
  CheckEquivalence(GetParam(), /*num_threads=*/1, /*with_deadline=*/false,
                   /*governed=*/false);
}

TEST_P(StrategyEquivalenceTest, ParallelAnswersAgree) {
  CheckEquivalence(GetParam() + 5000, /*num_threads=*/8,
                   /*with_deadline=*/false, /*governed=*/false);
}

TEST_P(StrategyEquivalenceTest, DeadlinedAnswersAgree) {
  CheckEquivalence(GetParam() + 9000, /*num_threads=*/(GetParam() % 2) ? 8 : 1,
                   /*with_deadline=*/true, /*governed=*/false);
}

TEST_P(StrategyEquivalenceTest, GovernedAnswersAgree) {
  CheckEquivalence(GetParam() + 13000, /*num_threads=*/1,
                   /*with_deadline=*/false, /*governed=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace vqldb
