// Magic-set rewriting: structure of the rewritten program, answer
// equivalence with full materialization on hand-written programs, and the
// decline conditions that fall back to the full fixpoint.

#include <gtest/gtest.h>

#include <string>

#include "src/engine/magic.h"
#include "src/engine/query.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

class MagicSetsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<QuerySession>(&db_);
    // This suite asserts on magic-specific exec info (used_magic, adornment,
    // derived-fact counts), so pin the strategy rather than letting the
    // cost-based kAuto default pick QSQR for bound goals.
    session_->mutable_options()->strategy = EvalStrategy::kMagic;
    std::string program;
    // A 12-node edge chain c0 -> c1 -> ... -> c11 plus transitive closure.
    for (int i = 0; i < 12; ++i) {
      program += "object c" + std::to_string(i) + " {}.\n";
    }
    for (int i = 0; i + 1 < 12; ++i) {
      program += "edge(c" + std::to_string(i) + ", c" + std::to_string(i + 1) +
                 ").\n";
    }
    program +=
        "path(X, Y) <- edge(X, Y).\n"
        "path(X, Z) <- path(X, Y), edge(Y, Z).\n"
        "noise(X, Y) <- edge(Y, X).\n";
    ASSERT_TRUE(session_->Load(program).ok());
  }

  Result<MagicRewrite> Rewrite(const std::string& query_text) {
    auto q = Parser::ParseQuery(query_text);
    VQLDB_RETURN_NOT_OK(q.status());
    return MagicSetRewriter::Rewrite(*q, session_->rules(), db_,
                                     session_->options());
  }

  VideoDatabase db_;
  std::unique_ptr<QuerySession> session_;
};

TEST_F(MagicSetsTest, RewriteStructureForBoundFirstArgument) {
  auto rw = Rewrite("?- path(c0, Y).");
  ASSERT_TRUE(rw.ok()) << rw.status();
  EXPECT_TRUE(rw->applied);
  EXPECT_EQ(rw->adornment, "bf");
  ASSERT_EQ(rw->seed_facts.size(), 1u);
  EXPECT_EQ(rw->seed_facts[0].relation, "m#path#bf");
  ASSERT_EQ(rw->seed_facts[0].args.size(), 1u);
  EXPECT_EQ(rw->seed_facts[0].args[0], Value::Oid(*db_.Resolve("c0")));
  EXPECT_GT(rw->magic_rule_count, 0u);
  EXPECT_GT(rw->guarded_rule_count, 0u);
  // Guarded copies keep their original head predicate and lead with the
  // demand guard; the noise cone is excluded entirely.
  bool saw_guarded_path = false;
  for (const Rule& rule : rw->rules) {
    EXPECT_NE(rule.head.predicate, "noise");
    if (rule.head.predicate == "path") {
      ASSERT_FALSE(rule.body.empty());
      EXPECT_EQ(rule.body[0].predicate, "m#path#bf");
      saw_guarded_path = true;
    }
  }
  EXPECT_TRUE(saw_guarded_path);
}

TEST_F(MagicSetsTest, BoundSecondArgumentAdornment) {
  auto rw = Rewrite("?- path(X, c3).");
  ASSERT_TRUE(rw.ok()) << rw.status();
  EXPECT_TRUE(rw->applied);
  EXPECT_EQ(rw->adornment, "fb");
  ASSERT_EQ(rw->seed_facts.size(), 1u);
  EXPECT_EQ(rw->seed_facts[0].relation, "m#path#fb");
}

TEST_F(MagicSetsTest, AllFreeGoalHasNoSeedsOrGuards) {
  auto rw = Rewrite("?- path(X, Y).");
  ASSERT_TRUE(rw.ok()) << rw.status();
  EXPECT_TRUE(rw->applied);
  EXPECT_EQ(rw->adornment, "ff");
  EXPECT_TRUE(rw->seed_facts.empty());
  EXPECT_EQ(rw->guarded_rule_count, 0u);
  // The rewrite degenerates to the dependency cone.
  EXPECT_EQ(rw->rules.size(), 2u);
}

TEST_F(MagicSetsTest, EdbGoalNeedsNoProgram) {
  auto rw = Rewrite("?- edge(c0, Y).");
  ASSERT_TRUE(rw.ok()) << rw.status();
  EXPECT_TRUE(rw->applied);
  EXPECT_TRUE(rw->rules.empty());
}

TEST_F(MagicSetsTest, AnswersMatchFullMaterialization) {
  const char* goals[] = {
      "?- path(c0, Y).",  "?- path(c8, Y).", "?- path(X, c3).",
      "?- path(c2, c5).", "?- path(X, X).",  "?- path(X, Y).",
      "?- edge(c0, Y).",  "?- noise(X, c0).",
  };
  for (const char* goal : goals) {
    session_->set_cache_enabled(false);
    session_->set_magic_enabled(true);
    auto magic = session_->Query(goal);
    ASSERT_TRUE(magic.ok()) << goal << ": " << magic.status();
    session_->set_magic_enabled(false);
    auto full = session_->Query(goal);
    ASSERT_TRUE(full.ok()) << goal << ": " << full.status();
    EXPECT_EQ(magic->rows, full->rows) << goal;
    EXPECT_EQ(magic->columns, full->columns) << goal;
  }
}

TEST_F(MagicSetsTest, SelectiveGoalDerivesFewerFacts) {
  session_->set_cache_enabled(false);
  auto magic = session_->Query("?- path(c9, Y).");
  ASSERT_TRUE(magic.ok());
  EXPECT_TRUE(session_->last_exec_info().used_magic);
  size_t magic_derived = session_->last_stats().derived_facts;

  session_->set_magic_enabled(false);
  session_->Invalidate();
  auto full = session_->Query("?- path(c9, Y).");
  ASSERT_TRUE(full.ok());
  size_t full_derived = session_->last_stats().derived_facts;

  EXPECT_EQ(magic->rows, full->rows);
  // From c9 only two path facts exist; the full fixpoint derives the whole
  // transitive closure plus the noise cone.
  EXPECT_LT(magic_derived, full_derived / 4);
}

TEST_F(MagicSetsTest, BuiltinClassGoalDeclines) {
  auto rw = Rewrite("?- Interval(G).");
  ASSERT_TRUE(rw.ok()) << rw.status();
  EXPECT_FALSE(rw->applied);
  EXPECT_NE(rw->reason.find("builtin"), std::string::npos);
}

TEST_F(MagicSetsTest, ExtendedActiveDomainDeclines) {
  session_->mutable_options()->extended_active_domain = true;
  auto rw = Rewrite("?- path(c0, Y).");
  ASSERT_TRUE(rw.ok()) << rw.status();
  EXPECT_FALSE(rw->applied);
  EXPECT_NE(rw->reason.find("extended active domain"), std::string::npos);
}

TEST_F(MagicSetsTest, ConstructiveConeDeclines) {
  ASSERT_TRUE(session_
                  ->Load("interval gi1 { duration: (t > 0 and t < 5) }.\n"
                         "interval gi2 { duration: (t > 5 and t < 9) }.\n"
                         "seg(gi1). seg(gi2).\n"
                         "combo(G1 ++ G2) <- seg(G1), seg(G2).\n")
                  .ok());
  auto rw = Rewrite("?- combo(G).");
  ASSERT_TRUE(rw.ok()) << rw.status();
  EXPECT_FALSE(rw->applied);
  EXPECT_NE(rw->reason.find("constructive"), std::string::npos);
  // The fallback still answers correctly (and identically with magic off).
  session_->set_cache_enabled(false);
  auto a = session_->Query("?- combo(G).");
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_FALSE(session_->last_exec_info().used_magic);
  session_->set_magic_enabled(false);
  session_->Invalidate();
  auto b = session_->Query("?- combo(G).");
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->rows, b->rows);
}

TEST_F(MagicSetsTest, BuiltinLiteralWithConstructiveRulesDeclines) {
  // The queried cone itself is pure, but it enumerates Interval(G) while a
  // constructive rule elsewhere can extend that domain mid-fixpoint.
  ASSERT_TRUE(session_
                  ->Load("interval gi1 { duration: (t > 0 and t < 5) }.\n"
                         "interval gi2 { duration: (t > 5 and t < 9) }.\n"
                         "seg(gi1). seg(gi2).\n"
                         "combo(G1 ++ G2) <- seg(G1), seg(G2).\n"
                         "wide(G) <- Interval(G), G.duration => (t > 0).\n")
                  .ok());
  auto rw = Rewrite("?- wide(G).");
  ASSERT_TRUE(rw.ok()) << rw.status();
  EXPECT_FALSE(rw->applied);
  EXPECT_NE(rw->reason.find("builtin"), std::string::npos);
  // Equivalence via fallback: the derived combo interval must appear.
  session_->set_cache_enabled(false);
  auto a = session_->Query("?- wide(G).");
  ASSERT_TRUE(a.ok()) << a.status();
  session_->set_magic_enabled(false);
  session_->Invalidate();
  auto b = session_->Query("?- wide(G).");
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->rows, b->rows);
  EXPECT_EQ(a->rows.size(), 3u);  // gi1, gi2, gi1 (+) gi2
}

TEST_F(MagicSetsTest, UnresolvableGoalConstantErrorsBothWays) {
  session_->set_cache_enabled(false);
  auto magic = session_->Query("?- path(nosuch, Y).");
  EXPECT_FALSE(magic.ok());
  session_->set_magic_enabled(false);
  auto full = session_->Query("?- path(nosuch, Y).");
  EXPECT_FALSE(full.ok());
}

TEST_F(MagicSetsTest, ExecInfoReportsDispatch) {
  session_->set_cache_enabled(false);
  ASSERT_TRUE(session_->Query("?- path(c0, Y).").ok());
  const QueryExecInfo& info = session_->last_exec_info();
  EXPECT_TRUE(info.used_magic);
  EXPECT_FALSE(info.cache_hit);
  EXPECT_EQ(info.adornment, "bf");
  EXPECT_GT(info.magic_rule_count, 0u);

  session_->set_magic_enabled(false);
  ASSERT_TRUE(session_->Query("?- path(c0, Y).").ok());
  EXPECT_FALSE(session_->last_exec_info().used_magic);
}

TEST_F(MagicSetsTest, ExplainShowsMagicStatusAndDemandRules) {
  auto on = session_->Explain("?- path(c0, Y).", /*analyze=*/false);
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_NE(on->find("magic: on"), std::string::npos);
  EXPECT_NE(on->find("m#path#bf"), std::string::npos);
  EXPECT_NE(on->find("query cache:"), std::string::npos);

  session_->set_magic_enabled(false);
  auto off = session_->Explain("?- path(c0, Y).", /*analyze=*/false);
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_NE(off->find("magic: off"), std::string::npos);
  EXPECT_EQ(off->find("m#path#bf"), std::string::npos);
}

TEST_F(MagicSetsTest, ExplainAnalyzeRunsRewrittenProgram) {
  auto text = session_->Explain("?- path(c9, Y).", /*analyze=*/true);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("magic: on"), std::string::npos);
  EXPECT_NE(text->find("stats:"), std::string::npos);
  // Both reachable targets from c9 appear in the answer rendering.
  EXPECT_NE(text->find("(2 answers)"), std::string::npos);
}

TEST_F(MagicSetsTest, ParallelMagicMatchesSerial) {
  session_->set_cache_enabled(false);
  session_->mutable_options()->num_threads = 1;
  auto serial = session_->Query("?- path(c2, Y).");
  ASSERT_TRUE(serial.ok());
  session_->mutable_options()->num_threads = 8;
  session_->Invalidate();
  auto parallel = session_->Query("?- path(c2, Y).");
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->rows, parallel->rows);
}

}  // namespace
}  // namespace vqldb
