// The virtual sys_* relations and query fingerprinting: normalized
// fingerprints collapse alpha-equivalent goals and distinguish structural
// differences; sys_relations rows match the database's ground truth;
// sys_columns distinct estimates stay within the HLL contract; a rule
// joining a sys_* relation with a base relation answers byte-identically
// across evaluation strategies; and the sys_ namespace is reserved at every
// ingestion point.

#include "src/engine/sysrel.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/query.h"
#include "src/lang/parser.h"
#include "src/model/database.h"
#include "src/obs/stats.h"

namespace vqldb {
namespace {

Atom GoalOf(const std::string& text) {
  auto q = Parser::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return q->goal;
}

TEST(QueryFingerprintTest, CollapsesAlphaEquivalentGoals) {
  EXPECT_EQ(QueryFingerprint(GoalOf("?- path(X, Y).")),
            QueryFingerprint(GoalOf("?- path(From, To).")));
  EXPECT_EQ(QueryFingerprint(GoalOf("?- path(X, Y).")), "path($0, $1)");
  // Repeated variables keep their first-occurrence number.
  EXPECT_EQ(QueryFingerprint(GoalOf("?- path(X, X).")), "path($0, $0)");
}

TEST(QueryFingerprintTest, DistinguishesStructure) {
  EXPECT_NE(QueryFingerprint(GoalOf("?- path(X, Y).")),
            QueryFingerprint(GoalOf("?- path(X, X).")));
  EXPECT_NE(QueryFingerprint(GoalOf("?- path(X, Y).")),
            QueryFingerprint(GoalOf("?- edge(X, Y).")));
  // Constants normalize to '?' — the fingerprint strips parameter values
  // but remembers that a position was bound.
  EXPECT_EQ(QueryFingerprint(GoalOf("?- path(a, Y).")), "path(?, $0)");
  EXPECT_EQ(QueryFingerprint(GoalOf("?- path(a, Y).")),
            QueryFingerprint(GoalOf("?- path(b, Y).")));
  EXPECT_NE(QueryFingerprint(GoalOf("?- path(a, Y).")),
            QueryFingerprint(GoalOf("?- path(X, Y).")));
}

TEST(SysRelTest, IsSystemRelationMatchesPrefixOnly) {
  EXPECT_TRUE(IsSystemRelation("sys_relations"));
  EXPECT_TRUE(IsSystemRelation("sys_anything"));
  EXPECT_FALSE(IsSystemRelation("system"));
  EXPECT_FALSE(IsSystemRelation("edge"));
  EXPECT_FALSE(IsSystemRelation(""));
}

class SysRelSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::StatsCollector::Global().Reset();
    session_ = std::make_unique<QuerySession>(&db_);
    ASSERT_TRUE(session_
                    ->Load("object a {}. object b {}. object c {}.\n"
                           "edge(a, b). edge(b, c). edge(a, c).\n"
                           "tag(a, b).\n"
                           "path(X, Y) <- edge(X, Y).\n"
                           "path(X, Z) <- path(X, Y), edge(Y, Z).\n")
                    .ok());
  }

  VideoDatabase db_;
  std::unique_ptr<QuerySession> session_;
};

TEST_F(SysRelSessionTest, SysRelationsMatchesGroundTruth) {
  auto result = session_->Query("?- sys_relations(P, A, R, B, S).");
  ASSERT_TRUE(result.ok()) << result.status();
  bool saw_edge = false, saw_tag = false;
  for (const auto& row : result->rows) {
    ASSERT_EQ(row.size(), 5u);
    const std::string& pred = row[0].string_value();
    if (pred == "edge") {
      saw_edge = true;
      EXPECT_EQ(row[1].int_value(), 2);  // arity
      EXPECT_EQ(row[2].int_value(), 3);  // rows
      EXPECT_GT(row[3].int_value(), 0);  // bytes
    }
    if (pred == "tag") {
      saw_tag = true;
      EXPECT_EQ(row[2].int_value(), 1);
    }
    // The statistics relations never describe themselves.
    EXPECT_FALSE(IsSystemRelation(pred));
  }
  EXPECT_TRUE(saw_edge);
  EXPECT_TRUE(saw_tag);
}

TEST_F(SysRelSessionTest, SysColumnsDistinctEstimateWithinContract) {
  // 10k facts over a high-cardinality first column and a 13-value second.
  for (int i = 0; i < 10000; ++i) {
    Fact f;
    f.relation = "num";
    f.args = {Value::Int(i), Value::Int(i % 13)};
    ASSERT_TRUE(db_.AssertFact(std::move(f)).ok());
  }
  auto result = session_->Query("?- sys_columns(P, C, D).");
  ASSERT_TRUE(result.ok()) << result.status();
  bool saw_col0 = false, saw_col1 = false;
  for (const auto& row : result->rows) {
    if (row[0].string_value() != "num") continue;
    const int64_t col = row[1].int_value();
    const int64_t distinct = row[2].int_value();
    if (col == 0) {
      saw_col0 = true;
      EXPECT_GE(distinct, 9500);
      EXPECT_LE(distinct, 10500);
    }
    if (col == 1) {
      saw_col1 = true;
      // Small-range linear counting: a register collision among the 13
      // hashes can shave the estimate by one.
      EXPECT_GE(distinct, 12);
      EXPECT_LE(distinct, 14);
    }
  }
  EXPECT_TRUE(saw_col0);
  EXPECT_TRUE(saw_col1);
}

TEST_F(SysRelSessionTest, SysJoinByteIdenticalAcrossStrategies) {
  const char* kJoinRule =
      "hot(P, R) <- sys_relations(P, A, R, B, S), tag(X, Y).\n";
  const char* kGoal = "?- hot(P, R).";
  // Reference: the default session (magic on, auto threads).
  ASSERT_TRUE(session_->Load(kJoinRule).ok());
  auto reference = session_->Query(kGoal);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_FALSE(reference->rows.empty());
  const std::string expected = reference->ToString(&db_);

  struct Config {
    size_t threads;
    bool magic;
  };
  for (const Config& config : std::vector<Config>{
           {1, true}, {1, false}, {2, true}, {2, false}, {8, true}}) {
    EvalOptions options;
    options.num_threads = config.threads;
    QuerySession other(&db_, options);
    other.set_magic_enabled(config.magic);
    ASSERT_TRUE(other
                    .Load("path(X, Y) <- edge(X, Y).\n"
                          "path(X, Z) <- path(X, Y), edge(Y, Z).\n")
                    .ok());
    ASSERT_TRUE(other.Load(kJoinRule).ok());
    auto result = other.Query(kGoal);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->ToString(&db_), expected)
        << "threads=" << config.threads << " magic=" << config.magic;
  }
}

TEST_F(SysRelSessionTest, SysQueriesReportsEarlierFingerprints) {
  ASSERT_TRUE(session_->Query("?- path(a, Y).").ok());
  ASSERT_TRUE(session_->Query("?- path(b, Y).").ok());
  auto result = session_->Query("?- sys_queries(F, C, P50, P99, R, S).");
  ASSERT_TRUE(result.ok()) << result.status();
  bool found = false;
  for (const auto& row : result->rows) {
    if (row[0].string_value() != "path(?, $0)") continue;
    found = true;
    EXPECT_EQ(row[1].int_value(), 2);  // both runs share the fingerprint
    EXPECT_LE(row[2].int_value(), row[3].int_value());  // p50 <= p99
    EXPECT_EQ(row[5].string_value(), "ok");
  }
  EXPECT_TRUE(found);
}

TEST_F(SysRelSessionTest, SysGoalsBypassTheQueryCache) {
  // Warm: a plain query caches; its repeat hits.
  ASSERT_TRUE(session_->Query("?- path(a, Y).").ok());
  ASSERT_TRUE(session_->Query("?- path(a, Y).").ok());
  EXPECT_TRUE(session_->last_exec_info().cache_hit);
  // A sys goal never hits, no matter how often it repeats: its answer
  // depends on collector state the cache epochs cannot see.
  auto first = session_->Query("?- sys_queries(F, C, P50, P99, R, S).");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(session_->last_exec_info().cache_hit);
  auto second = session_->Query("?- sys_queries(F, C, P50, P99, R, S).");
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(session_->last_exec_info().cache_hit);
  // The second run sees one more recorded query than the first (itself).
  EXPECT_GE(second->rows.size(), first->rows.size());
}

TEST_F(SysRelSessionTest, SysNamespaceIsReservedEverywhere) {
  Fact fact;
  fact.relation = "sys_relations";
  fact.args = {Value::Int(1)};
  Status assert_status = db_.AssertFact(std::move(fact));
  EXPECT_TRUE(assert_status.IsInvalidArgument()) << assert_status;

  Status load_status = session_->Load("sys_mine(X) <- edge(X, Y).\n");
  EXPECT_FALSE(load_status.ok());

  auto rule = Parser::ParseProgram("sys_other(X) <- edge(X, Y).");
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->Rules().size(), 1u);
  Status add_status = session_->AddRule(*rule->Rules()[0]);
  EXPECT_TRUE(add_status.IsInvalidArgument()) << add_status;
}

TEST_F(SysRelSessionTest, SysMetricsAndBudgetAnswer) {
  auto metrics = session_->Query("?- sys_metrics(N, K, V).");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  auto budget = session_->Query("?- sys_budget(Scope, Name, V).");
  ASSERT_TRUE(budget.ok()) << budget.status();
  // The per-query limit rows are always present (0 = unlimited).
  EXPECT_GE(budget->rows.size(), 3u);
  auto cache = session_->Query("?- sys_cache(Kind, On, E, B, M).");
  ASSERT_TRUE(cache.ok()) << cache.status();
  EXPECT_EQ(cache->rows.size(), 2u);
}

}  // namespace
}  // namespace vqldb
