// Property test: for seeded random programs and every goal binding pattern,
// the magic-set rewritten evaluation produces exactly the answer set of the
// full (naive) fixpoint — serially, in parallel, and under a (far-future)
// deadline. This is the correctness bar of the goal-directed engine.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/engine/query.h"
#include "src/lang/parser.h"
#include "src/model/database.h"

namespace vqldb {
namespace {

struct Scenario {
  std::unique_ptr<VideoDatabase> db;
  std::vector<Rule> rules;
  size_t entity_count = 0;
};

// Random positive programs over two EDB relations e/2 and f/2 and two IDB
// predicates d0/2 and d1/2 (the differential-oracle generator's fragment:
// joins, recursion, mutual recursion, Object(), variable (dis)equality).
Scenario RandomScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.db = std::make_unique<VideoDatabase>();
  size_t n = 3 + rng.UniformU64(4);
  s.entity_count = n;
  std::vector<ObjectId> entities;
  for (size_t i = 0; i < n; ++i) {
    entities.push_back(*s.db->CreateEntity("c" + std::to_string(i)));
  }
  for (size_t i = 0; i < 2 * n; ++i) {
    VQLDB_CHECK_OK(s.db->AssertFact(
        rng.Bernoulli(0.5) ? "e" : "f",
        {Value::Oid(entities[rng.UniformU64(n)]),
         Value::Oid(entities[rng.UniformU64(n)])}));
  }

  const char* templates[] = {
      "d0(X, Y) <- e(X, Y).",
      "d0(X, Y) <- f(Y, X).",
      "d0(X, Z) <- d0(X, Y), e(Y, Z).",
      "d1(X, Y) <- e(X, Y), f(X, Y).",
      "d1(X, Y) <- d0(X, Y), X != Y.",
      "d0(X, Y) <- d1(X, Y), d1(Y, X).",
      "d1(X, X) <- e(X, Y), Object(X).",
      "d0(X, Y) <- d1(X, Z), f(Z, Y).",
  };
  size_t num_rules = 2 + rng.UniformU64(5);
  for (size_t i = 0; i < num_rules; ++i) {
    auto rule = Parser::ParseRule(templates[rng.UniformU64(8)]);
    VQLDB_CHECK(rule.ok());
    s.rules.push_back(*rule);
  }
  return s;
}

// Every goal shape exercised per scenario: both IDB predicates under all
// four binding patterns plus a repeated-variable goal.
std::vector<std::string> GoalsFor(const Scenario& s, uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  auto c = [&] { return "c" + std::to_string(rng.UniformU64(s.entity_count)); };
  std::vector<std::string> goals;
  for (const char* pred : {"d0", "d1"}) {
    std::string p(pred);
    goals.push_back("?- " + p + "(" + c() + ", Y).");
    goals.push_back("?- " + p + "(X, " + c() + ").");
    goals.push_back("?- " + p + "(" + c() + ", " + c() + ").");
    goals.push_back("?- " + p + "(X, Y).");
    goals.push_back("?- " + p + "(X, X).");
  }
  return goals;
}

void CheckEquivalence(uint64_t seed, size_t num_threads, bool with_deadline) {
  Scenario s = RandomScenario(seed);
  EvalOptions options;
  options.num_threads = num_threads;
  if (with_deadline) {
    options.deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(10);
  }
  QuerySession session(s.db.get(), options);
  session.set_cache_enabled(false);
  for (const Rule& rule : s.rules) ASSERT_TRUE(session.AddRule(rule).ok());

  for (const std::string& goal : GoalsFor(s, seed)) {
    session.set_magic_enabled(true);
    auto magic = session.Query(goal);
    ASSERT_TRUE(magic.ok()) << "seed " << seed << " goal " << goal << ": "
                            << magic.status();
    EXPECT_TRUE(session.last_exec_info().used_magic)
        << "seed " << seed << " goal " << goal;

    session.set_magic_enabled(false);
    session.Invalidate();
    auto full = session.Query(goal);
    ASSERT_TRUE(full.ok()) << "seed " << seed << " goal " << goal << ": "
                           << full.status();

    EXPECT_EQ(magic->rows, full->rows) << "seed " << seed << " goal " << goal;
    EXPECT_EQ(magic->columns, full->columns)
        << "seed " << seed << " goal " << goal;
  }
}

class MagicEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MagicEquivalenceTest, SerialMatchesFullFixpoint) {
  CheckEquivalence(GetParam(), /*num_threads=*/1, /*with_deadline=*/false);
}

TEST_P(MagicEquivalenceTest, ParallelMatchesFullFixpoint) {
  CheckEquivalence(GetParam() + 5000, /*num_threads=*/8,
                   /*with_deadline=*/false);
}

TEST_P(MagicEquivalenceTest, DeadlinedRunsMatchToo) {
  CheckEquivalence(GetParam() + 9000, /*num_threads=*/(GetParam() % 2) ? 8 : 1,
                   /*with_deadline=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MagicEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace vqldb
