// The QSQR top-down evaluator: answer correctness on recursive programs,
// goal-directed pruning (bound goals derive far fewer facts than the full
// fixpoint), termination on cyclic data, and the decline conditions that
// mirror the magic-set rewriter's.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>

#include "src/engine/qsqr.h"
#include "src/engine/query.h"
#include "src/lang/parser.h"
#include "src/obs/stats.h"

namespace vqldb {
namespace {

class QsqrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<QuerySession>(&db_);
    session_->mutable_options()->strategy = EvalStrategy::kQsqr;
    session_->set_cache_enabled(false);
    std::string program;
    // A 12-node edge chain c0 -> c1 -> ... -> c11 plus transitive closure
    // and a never-queried noise cone.
    for (int i = 0; i < 12; ++i) {
      program += "object c" + std::to_string(i) + " {}.\n";
    }
    for (int i = 0; i + 1 < 12; ++i) {
      program += "edge(c" + std::to_string(i) + ", c" + std::to_string(i + 1) +
                 ").\n";
    }
    program +=
        "path(X, Y) <- edge(X, Y).\n"
        "path(X, Z) <- path(X, Y), edge(Y, Z).\n"
        "noise(X, Y) <- edge(Y, X).\n";
    ASSERT_TRUE(session_->Load(program).ok());
  }

  Result<QsqrResult> RunDirect(const std::string& query_text) {
    auto q = Parser::ParseQuery(query_text);
    VQLDB_RETURN_NOT_OK(q.status());
    return QsqrEvaluator::Run(*q, session_->rules(), db_,
                              session_->options());
  }

  VideoDatabase db_;
  std::unique_ptr<QuerySession> session_;
};

TEST_F(QsqrTest, AnswersMatchFullMaterialization) {
  const char* goals[] = {
      "?- path(c0, Y).",  "?- path(c8, Y).", "?- path(X, c3).",
      "?- path(c2, c5).", "?- path(X, X).",  "?- path(X, Y).",
      "?- edge(c0, Y).",  "?- noise(X, c0).",
  };
  for (const char* goal : goals) {
    session_->mutable_options()->strategy = EvalStrategy::kQsqr;
    auto qsqr = session_->Query(goal);
    ASSERT_TRUE(qsqr.ok()) << goal << ": " << qsqr.status();
    EXPECT_TRUE(session_->last_exec_info().used_qsqr) << goal;
    session_->mutable_options()->strategy = EvalStrategy::kFixpoint;
    session_->Invalidate();
    auto full = session_->Query(goal);
    ASSERT_TRUE(full.ok()) << goal << ": " << full.status();
    EXPECT_EQ(qsqr->rows, full->rows) << goal;
    EXPECT_EQ(qsqr->columns, full->columns) << goal;
  }
}

TEST_F(QsqrTest, BoundGoalDerivesFarFewerFacts) {
  auto qsqr = session_->Query("?- path(c9, Y).");
  ASSERT_TRUE(qsqr.ok()) << qsqr.status();
  ASSERT_TRUE(session_->last_exec_info().used_qsqr);
  EXPECT_EQ(session_->last_exec_info().strategy, "qsqr");
  EXPECT_EQ(session_->last_exec_info().adornment, "bf");
  size_t qsqr_derived = session_->last_stats().derived_facts;

  session_->mutable_options()->strategy = EvalStrategy::kFixpoint;
  session_->Invalidate();
  auto full = session_->Query("?- path(c9, Y).");
  ASSERT_TRUE(full.ok());
  size_t full_derived = session_->last_stats().derived_facts;

  EXPECT_EQ(qsqr->rows, full->rows);
  // From c9 only two path facts are reachable; the full fixpoint derives
  // the entire transitive closure plus the noise cone.
  EXPECT_LT(qsqr_derived, full_derived / 4);
}

TEST_F(QsqrTest, TerminatesOnCyclicData) {
  // Close the chain into a cycle: naive backward chaining without the memo
  // would recurse forever on path(c0, Y).
  ASSERT_TRUE(session_->Load("edge(c11, c0).").ok());
  auto result = session_->Query("?- path(c0, Y).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(session_->last_exec_info().used_qsqr);
  EXPECT_EQ(result->rows.size(), 12u);  // every node reachable from c0
}

TEST_F(QsqrTest, RepeatedVariableGoalOnCycle) {
  ASSERT_TRUE(session_->Load("edge(c11, c0).").ok());
  auto qsqr = session_->Query("?- path(X, X).");
  ASSERT_TRUE(qsqr.ok()) << qsqr.status();
  EXPECT_EQ(qsqr->rows.size(), 12u);  // every node cycles back to itself
}

TEST_F(QsqrTest, UnresolvableGoalConstantErrors) {
  auto result = session_->Query("?- path(nosuch, Y).");
  EXPECT_FALSE(result.ok());
}

TEST_F(QsqrTest, BuiltinClassGoalDeclines) {
  auto qr = RunDirect("?- Interval(G).");
  ASSERT_TRUE(qr.ok()) << qr.status();
  EXPECT_FALSE(qr->applied);
  EXPECT_NE(qr->reason.find("builtin"), std::string::npos);
}

TEST_F(QsqrTest, ExtendedActiveDomainDeclines) {
  session_->mutable_options()->extended_active_domain = true;
  auto qr = RunDirect("?- path(c0, Y).");
  ASSERT_TRUE(qr.ok()) << qr.status();
  EXPECT_FALSE(qr->applied);
  EXPECT_NE(qr->reason.find("extended active domain"), std::string::npos);
}

TEST_F(QsqrTest, ConstructiveConeDeclinesAndFallbackAgrees) {
  ASSERT_TRUE(session_
                  ->Load("interval gi1 { duration: (t > 0 and t < 5) }.\n"
                         "interval gi2 { duration: (t > 5 and t < 9) }.\n"
                         "seg(gi1). seg(gi2).\n"
                         "combo(G1 ++ G2) <- seg(G1), seg(G2).\n")
                  .ok());
  auto qr = RunDirect("?- combo(G).");
  ASSERT_TRUE(qr.ok()) << qr.status();
  EXPECT_FALSE(qr->applied);
  EXPECT_NE(qr->reason.find("constructive"), std::string::npos);
  // Through the session the decline falls back and still answers.
  auto a = session_->Query("?- combo(G).");
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_FALSE(session_->last_exec_info().used_qsqr);
  session_->mutable_options()->strategy = EvalStrategy::kFixpoint;
  session_->Invalidate();
  auto b = session_->Query("?- combo(G).");
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->rows, b->rows);
}

TEST_F(QsqrTest, SysGoalFallsBackToMagicPath) {
  auto result = session_->Query("?- sys_relations(P, A, R, B, S).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(session_->last_exec_info().used_qsqr);
  EXPECT_FALSE(result->rows.empty());
}

TEST_F(QsqrTest, DeadlineIsEnforced) {
  session_->mutable_options()->deadline = std::chrono::steady_clock::now();
  auto result = session_->Query("?- path(c0, Y).");
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
}

TEST_F(QsqrTest, ExplainShowsStrategyLine) {
  auto text = session_->Explain("?- path(c0, Y).", /*analyze=*/false);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("strategy: qsqr"), std::string::npos) << *text;
  EXPECT_NE(text->find("est. cost"), std::string::npos) << *text;
}

TEST_F(QsqrTest, StatsRecordQsqrAccessPath) {
  auto& collector = obs::StatsCollector::Global();
  uint64_t old_threshold = collector.slow_threshold_us();
  collector.ResetSlowLog();
  collector.set_slow_threshold_us(0);  // log every query
  ASSERT_TRUE(session_->Query("?- path(c0, Y).").ok());
  std::string log = collector.RenderSlowLogJson();
  collector.set_slow_threshold_us(old_threshold);
  collector.ResetSlowLog();
  EXPECT_NE(log.find("qsqr(bf)"), std::string::npos) << log;
}

}  // namespace
}  // namespace vqldb
