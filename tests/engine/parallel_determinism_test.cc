// The parallel fixpoint engine's core guarantee: Fixpoint() computes the
// same least fixpoint for every thread count. Checked on the paper's Rope
// example program (including recursion and a constructive rule) and on
// randomized rule sets over randomized databases (seeded via common/rng.h),
// comparing interpretations, statistics, and rendered query results across
// num_threads in {1, 2, 8}.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/query.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

const size_t kThreadCounts[] = {1, 2, 8};

// The Section 5.2 database extract plus a recursive containment program.
constexpr const char* kRopeProgram = R"(
  object o1 { name: "David", role: "Victim" }.
  object o2 { name: "Philip", role: "Murderer" }.
  object o3 { name: "Brandon", role: "Murderer" }.
  object o9 { name: "Rupert Cadell" }.
  interval gi1 { duration: (t > 0 and t < 10),
                 entities: {o1, o2, o3},
                 subject: "murder" }.
  interval gi2 { duration: (t > 15 and t < 40),
                 entities: {o1, o2, o3, o9},
                 subject: "Giving a party" }.
  interval gi3 { duration: (t > 2 and t < 8),
                 entities: {o2, o3} }.
)";

constexpr const char* kRopeRules = R"(
  appears(O, G) <- Interval(G), Object(O), O in G.entities.
  contains(G1, G2) <- Interval(G1), Interval(G2),
                      G2.duration => G1.duration, G1 != G2.
  nested(G1, G2) <- contains(G1, G2).
  nested(G1, G3) <- nested(G1, G2), contains(G2, G3).
  together(O1, O2, G) <- appears(O1, G), appears(O2, G), O1 != O2.
)";

// A constructive rule: parallel scheduling must keep database mutation
// (derived-interval materialization) serial and deterministic.
constexpr const char* kConstructiveRule =
    "span(G1 ++ G2) <- Interval(G1), Interval(G2), G1 != G2.";

Result<std::vector<Rule>> ParseRules(const std::string& text) {
  VQLDB_ASSIGN_OR_RETURN(Program program, Parser::ParseProgram(text));
  std::vector<Rule> rules;
  for (const Rule* r : program.Rules()) rules.push_back(*r);
  return rules;
}

// Runs Fixpoint over a freshly built database (builder must be
// deterministic) and returns the interpretation plus stats.
struct RunResult {
  Interpretation fixpoint;
  EvalStats stats;
};

template <typename BuildDb>
RunResult RunWith(BuildDb&& build, const std::vector<Rule>& rules,
                  size_t num_threads) {
  auto db = build();
  EvalOptions options;
  options.num_threads = num_threads;
  auto eval = Evaluator::Make(db.get(), rules, options);
  EXPECT_TRUE(eval.ok()) << eval.status();
  auto fp = eval->Fixpoint();
  EXPECT_TRUE(fp.ok()) << fp.status();
  return RunResult{std::move(*fp), eval->stats()};
}

template <typename BuildDb>
void ExpectThreadCountInvariant(BuildDb&& build,
                                const std::vector<Rule>& rules,
                                bool expect_identical_stats) {
  RunResult serial = RunWith(build, rules, 1);
  EXPECT_EQ(serial.stats.parallel_tasks, 0u);
  for (size_t threads : kThreadCounts) {
    if (threads == 1) continue;
    RunResult parallel = RunWith(build, rules, threads);
    EXPECT_TRUE(parallel.fixpoint == serial.fixpoint)
        << "fixpoint differs at num_threads=" << threads << "\nserial="
        << serial.fixpoint.ToString() << "\nparallel="
        << parallel.fixpoint.ToString();
    EXPECT_GT(parallel.stats.parallel_tasks, 0u)
        << "parallel path not exercised at num_threads=" << threads;
    if (expect_identical_stats) {
      EXPECT_EQ(parallel.stats.iterations, serial.stats.iterations);
      EXPECT_EQ(parallel.stats.derived_facts, serial.stats.derived_facts);
      EXPECT_EQ(parallel.stats.rule_firings, serial.stats.rule_firings);
      EXPECT_EQ(parallel.stats.constraint_checks,
                serial.stats.constraint_checks);
    }
  }
}

TEST(ParallelDeterminismTest, PaperExampleProgram) {
  auto build = [] {
    auto db = std::make_unique<VideoDatabase>();
    QuerySession loader(db.get());
    EXPECT_TRUE(loader.Load(kRopeProgram).ok());
    return db;
  };
  auto rules = ParseRules(kRopeRules);
  ASSERT_TRUE(rules.ok()) << rules.status();
  ExpectThreadCountInvariant(build, *rules, /*expect_identical_stats=*/true);
}

TEST(ParallelDeterminismTest, PaperExampleWithConstructiveRule) {
  auto build = [] {
    auto db = std::make_unique<VideoDatabase>();
    QuerySession loader(db.get());
    EXPECT_TRUE(loader.Load(kRopeProgram).ok());
    return db;
  };
  auto rules = ParseRules(std::string(kRopeRules) + "\n" + kConstructiveRule);
  ASSERT_TRUE(rules.ok()) << rules.status();
  // Constructive rounds may shift derivations across iterations relative to
  // the serial schedule, so only the fixpoint itself must be invariant.
  ExpectThreadCountInvariant(build, *rules, /*expect_identical_stats=*/false);
}

TEST(ParallelDeterminismTest, QueryResultsByteIdenticalAcrossThreadCounts) {
  std::string baseline;
  for (size_t threads : kThreadCounts) {
    VideoDatabase db;
    EvalOptions options;
    options.num_threads = threads;
    QuerySession session(&db, options);
    ASSERT_TRUE(session.Load(kRopeProgram).ok());
    ASSERT_TRUE(session.Load(kRopeRules).ok());
    auto r1 = session.Query("?- nested(G1, G2).");
    ASSERT_TRUE(r1.ok()) << r1.status();
    auto r2 = session.Query("?- together(O1, O2, G).");
    ASSERT_TRUE(r2.ok()) << r2.status();
    std::string rendered = r1->ToString(&db) + "\n" + r2->ToString(&db);
    if (baseline.empty()) {
      baseline = rendered;
    } else {
      EXPECT_EQ(rendered, baseline) << "at num_threads=" << threads;
    }
  }
  EXPECT_FALSE(baseline.empty());
}

// Randomized stress: a seeded random EDB (graph facts plus attribute-typed
// facts) under a seeded random recursive rule set. Every seed must be
// thread-count invariant.
TEST(ParallelDeterminismTest, RandomizedRuleSets) {
  for (uint64_t seed : {7u, 42u, 1999u}) {
    auto build = [seed] {
      Rng rng(seed);
      auto db = std::make_unique<VideoDatabase>();
      const int nodes = 24;
      const int edges = 70;
      for (int i = 0; i < edges; ++i) {
        int a = static_cast<int>(rng.UniformU64(nodes));
        int b = static_cast<int>(rng.UniformU64(nodes));
        EXPECT_TRUE(
            db->AssertFact("edge", {Value::Int(a), Value::Int(b)}).ok());
        if (rng.Bernoulli(0.3)) {
          EXPECT_TRUE(db->AssertFact("weight", {Value::Int(a), Value::Int(b),
                                                Value::Int(static_cast<int>(
                                                    rng.UniformU64(5)))})
                          .ok());
        }
      }
      for (int n = 0; n < nodes; ++n) {
        if (rng.Bernoulli(0.4)) {
          EXPECT_TRUE(db->AssertFact("source", {Value::Int(n)}).ok());
        }
      }
      return db;
    };

    // A seeded random rule set: transitive closure plus joins whose shapes
    // (variable reuse, constants, constraints) vary with the seed.
    Rng rule_rng(seed * 1315423911ull + 3);
    std::string text =
        "path(X, Y) <- edge(X, Y).\n"
        "path(X, Z) <- path(X, Y), edge(Y, Z).\n";
    const char* joins[] = {
        "meet(X, Z) <- edge(X, Y), edge(Z, Y), X != Z.\n",
        "fan(X) <- edge(X, Y), edge(X, Z), Y != Z.\n",
        "heavy(X, Y) <- weight(X, Y, W), W > 2.\n",
        "reach(Y) <- source(X), path(X, Y).\n",
        "cycle(X) <- path(X, X).\n",
        "bridge(X, Z) <- heavy(X, Y), path(Y, Z).\n",
    };
    for (const char* rule : joins) {
      if (rule_rng.Bernoulli(0.7)) text += rule;
    }
    text += "pin(X) <- edge(X, " +
            std::to_string(rule_rng.UniformU64(24)) + ").\n";

    auto rules = ParseRules(text);
    ASSERT_TRUE(rules.ok()) << rules.status();
    ExpectThreadCountInvariant(build, *rules, /*expect_identical_stats=*/true);
  }
}

}  // namespace
}  // namespace vqldb
