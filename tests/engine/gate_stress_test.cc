// Concurrent-session stress (seeded): mixed read and constructive queries
// from several threads through a one-slot QueryGate — the supported way to
// share a (non-thread-safe) QuerySession. Asserts deterministic answers
// (every successful query matches its single-threaded reference), no lost
// slots (active/queued drain to zero, completed == admitted), and exact
// shed accounting (admitted + shed == submitted). Also run under
// -DVQLDB_SANITIZE=thread by tools/verify.sh.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/query.h"
#include "src/engine/query_gate.h"

namespace vqldb {
namespace {

using std::chrono::milliseconds;

// Per-query outcome, collected per thread and checked on the main thread
// (gtest assertions are not safe from worker threads).
struct Outcome {
  size_t query_index = 0;
  bool ok = false;
  bool overloaded = false;
  bool rows_match = false;
};

class GateStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string program;
    for (int i = 0; i <= 20; ++i) {
      program += "object n" + std::to_string(i) + " { }.\n";
    }
    for (int i = 0; i < 20; ++i) {
      program += "edge(n" + std::to_string(i) + ", n" +
                 std::to_string(i + 1) + ").\n";
    }
    program +=
        "path(X, Y) <- edge(X, Y).\n"
        "path(X, Z) <- path(X, Y), edge(Y, Z).\n"
        "interval gi1 { duration: (t > 0 and t < 5) }.\n"
        "interval gi2 { duration: (t > 5 and t < 9) }.\n"
        "interval gi3 { duration: (t > 9 and t < 12) }.\n"
        "seg(gi1). seg(gi2). seg(gi3).\n"
        "combo(G1 ++ G2) <- seg(G1), seg(G2).\n";
    session_ = std::make_unique<QuerySession>(&db_);
    ASSERT_TRUE(session_->Load(program).ok());

    // Single-threaded reference answers. Constructive queries materialize
    // their derived intervals here; concatenation is memoized, so repeats
    // from worker threads see identical oids.
    queries_ = {"?- path(n0, Y).", "?- path(X, n10).", "?- path(X, Y).",
                "?- combo(G).", "?- seg(G)."};
    for (const std::string& q : queries_) {
      auto r = session_->Query(q);
      ASSERT_TRUE(r.ok()) << q << ": " << r.status();
      reference_.push_back(r->rows);
    }
  }

  // Runs `per_thread` queries on each of `threads` workers; query choice is
  // a deterministic function of (thread, iteration).
  std::vector<Outcome> RunWorkers(size_t threads, size_t per_thread) {
    std::vector<std::vector<Outcome>> results(threads);
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([this, t, per_thread, &results] {
        for (size_t i = 0; i < per_thread; ++i) {
          size_t qi = (t * 31 + i * 7) % queries_.size();
          Outcome out;
          out.query_index = qi;
          auto r = session_->Query(queries_[qi]);
          out.ok = r.ok();
          out.overloaded = !r.ok() && r.status().IsOverloaded();
          out.rows_match = r.ok() && r->rows == reference_[qi];
          results[t].push_back(out);
        }
      });
    }
    for (auto& th : pool) th.join();
    std::vector<Outcome> flat;
    for (auto& per : results) {
      flat.insert(flat.end(), per.begin(), per.end());
    }
    return flat;
  }

  VideoDatabase db_;
  std::unique_ptr<QuerySession> session_;
  std::vector<std::string> queries_;
  std::vector<std::vector<std::vector<Value>>> reference_;
};

TEST_F(GateStressTest, SerializedSessionAnswersDeterministically) {
  auto gate = std::make_shared<QueryGate>(
      QueryGate::Options{/*max_concurrent=*/1, /*max_queued=*/64,
                         /*queue_timeout=*/milliseconds(10000)});
  session_->set_gate(gate);

  const size_t kThreads = 6, kPerThread = 10;
  std::vector<Outcome> outcomes = RunWorkers(kThreads, kPerThread);

  ASSERT_EQ(outcomes.size(), kThreads * kPerThread);
  for (const Outcome& out : outcomes) {
    EXPECT_TRUE(out.ok) << "query " << out.query_index << " failed";
    EXPECT_TRUE(out.rows_match)
        << "query " << out.query_index << " diverged from its reference";
  }
  // No lost slots: everything admitted completed, nothing left behind.
  EXPECT_EQ(gate->admitted_total(), kThreads * kPerThread);
  EXPECT_EQ(gate->shed_total(), 0u);
  EXPECT_EQ(gate->completed_total(), gate->admitted_total());
  EXPECT_EQ(gate->active(), 0u);
  EXPECT_EQ(gate->queued(), 0u);
}

TEST_F(GateStressTest, OverloadAccountingIsExact) {
  // A tiny queue with a short timeout under uncached (real) evaluations:
  // some arrivals shed. Every outcome is either a correct answer or a
  // structured Overloaded, and the gate's books balance exactly.
  session_->set_cache_enabled(false);
  auto gate = std::make_shared<QueryGate>(
      QueryGate::Options{/*max_concurrent=*/1, /*max_queued=*/1,
                         /*queue_timeout=*/milliseconds(2)});
  session_->set_gate(gate);

  const size_t kThreads = 4, kPerThread = 8;
  std::vector<Outcome> outcomes = RunWorkers(kThreads, kPerThread);

  size_t ok = 0, shed = 0;
  for (const Outcome& out : outcomes) {
    if (out.ok) {
      ++ok;
      EXPECT_TRUE(out.rows_match)
          << "query " << out.query_index << " diverged from its reference";
    } else {
      EXPECT_TRUE(out.overloaded) << "only Overloaded failures are allowed";
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kThreads * kPerThread);
  EXPECT_EQ(gate->admitted_total(), ok);
  EXPECT_EQ(gate->shed_total(), shed);
  EXPECT_EQ(gate->completed_total(), gate->admitted_total());
  EXPECT_EQ(gate->active(), 0u);
  EXPECT_EQ(gate->queued(), 0u);
}

TEST_F(GateStressTest, InjectedShedsAreDeterministicallyAccounted) {
  // Fault injection forces sheds independent of timing: with a generous
  // queue, the only rejects are the injected ones, so the shed counter must
  // equal the injected-reject counter exactly.
  auto gate = std::make_shared<QueryGate>(
      QueryGate::Options{/*max_concurrent=*/1, /*max_queued=*/64,
                         /*queue_timeout=*/milliseconds(10000)});
  gate->ArmFaults({/*seed=*/1234, /*reject_p=*/0.25});
  session_->set_gate(gate);

  const size_t kThreads = 4, kPerThread = 8;
  std::vector<Outcome> outcomes = RunWorkers(kThreads, kPerThread);

  size_t ok = 0, shed = 0;
  for (const Outcome& out : outcomes) {
    if (out.ok) {
      ++ok;
      EXPECT_TRUE(out.rows_match);
    } else {
      EXPECT_TRUE(out.overloaded);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kThreads * kPerThread);
  EXPECT_EQ(gate->shed_total(), shed);
  EXPECT_EQ(gate->injected_rejects(), shed);
  EXPECT_GT(shed, 0u);  // p=0.25 over 32 seeded trials always injects some
  EXPECT_EQ(gate->admitted_total(), ok);
  EXPECT_EQ(gate->completed_total(), ok);
}

}  // namespace
}  // namespace vqldb
