// Concrete-domain predicates (Def. 1) wired into evaluation: registered
// computable predicates usable as body literals — the extension point for
// the paper's "special queries, like spatial ones".

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/logging.h"
#include "src/engine/query.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

ConcreteDomain SpatialDomain() {
  ConcreteDomain d("spatial");
  d.RegisterPredicate("near", 2, [](const std::vector<DomainValue>& a) {
    return std::fabs(a[0].number - a[1].number) <= 10;
  });
  d.RegisterPredicate("left_of", 2, [](const std::vector<DomainValue>& a) {
    return a[0].number < a[1].number;
  });
  return d;
}

std::vector<Rule> ParseRules(std::initializer_list<const char*> texts) {
  std::vector<Rule> rules;
  for (const char* text : texts) {
    auto r = Parser::ParseRule(text);
    EXPECT_TRUE(r.ok()) << r.status();
    rules.push_back(*r);
  }
  return rules;
}

class ConcretePredicatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    domain_ = SpatialDomain();
    // Entities with an x-position attribute, plus position facts.
    for (auto [name, x] : std::initializer_list<std::pair<const char*, int>>{
             {"a", 0}, {"b", 5}, {"c", 50}}) {
      ObjectId id = *db_.CreateEntity(name);
      VQLDB_CHECK_OK(db_.SetAttribute(id, "x", Value::Int(x)));
      VQLDB_CHECK_OK(db_.AssertFact("at", {Value::Oid(id), Value::Int(x)}));
    }
    options_.concrete_domain = &domain_;
  }

  VideoDatabase db_;
  ConcreteDomain domain_ = ConcreteDomain("unset");
  EvalOptions options_;
};

TEST_F(ConcretePredicatesTest, ComputableCheckFiltersJoins) {
  auto eval = Evaluator::Make(
      &db_,
      ParseRules({"close(O1, O2) <- at(O1, X1), at(O2, X2), near(X1, X2), "
                  "O1 != O2."}),
      options_);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok()) << fp.status();
  EXPECT_EQ(fp->FactsFor("close").size(), 2u);  // (a,b) and (b,a)
}

TEST_F(ConcretePredicatesTest, OrderedSpatialPredicate) {
  auto eval = Evaluator::Make(
      &db_,
      ParseRules({"ordered(O1, O2) <- at(O1, X1), at(O2, X2), "
                  "left_of(X1, X2)."}),
      options_);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("ordered").size(), 3u);  // a<b, a<c, b<c
}

TEST_F(ConcretePredicatesTest, ConstantsAllowed) {
  auto eval = Evaluator::Make(
      &db_, ParseRules({"near_origin(O) <- at(O, X), near(X, 0)."}),
      options_);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("near_origin").size(), 2u);  // a, b
}

TEST_F(ConcretePredicatesTest, UnboundArgumentIsEvaluationError) {
  // Computable predicates cannot bind: Y appears first in near/2.
  auto eval = Evaluator::Make(
      &db_, ParseRules({"bad(O, Y) <- near(Y, 0), at(O, Y)."}), options_);
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval->Fixpoint().status().IsEvaluationError());
}

TEST_F(ConcretePredicatesTest, NonAtomicArgumentFailsCheck) {
  ObjectId gi = *db_.CreateInterval("g", GeneralizedInterval::Single(0, 1));
  (void)gi;
  auto eval = Evaluator::Make(
      &db_, ParseRules({"weird(G) <- Interval(G), near(G, 0)."}), options_);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_TRUE(fp->FactsFor("weird").empty());
}

TEST_F(ConcretePredicatesTest, NonAtomicArgumentStrictTypesErrors) {
  ASSERT_TRUE(db_.CreateInterval("g", GeneralizedInterval::Single(0, 1)).ok());
  options_.strict_types = true;
  auto eval = Evaluator::Make(
      &db_, ParseRules({"weird(G) <- Interval(G), near(G, 0)."}), options_);
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval->Fixpoint().status().IsTypeError());
}

TEST_F(ConcretePredicatesTest, StoredRelationShadowsNothing) {
  // A stored relation with a name/arity *not* registered in the domain still
  // matches facts normally, even with a domain installed.
  auto eval = Evaluator::Make(
      &db_, ParseRules({"q(O, X) <- at(O, X)."}), options_);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("q").size(), 3u);
}

TEST_F(ConcretePredicatesTest, ArityDispatch) {
  // near/2 is registered; near/3 is not, so near(X, Y, Z) matches stored
  // facts (none exist) rather than evaluating.
  ASSERT_TRUE(
      db_.AssertFact("near", {Value::Int(1), Value::Int(2), Value::Int(3)})
          .ok());
  auto eval = Evaluator::Make(
      &db_, ParseRules({"q(X) <- near(X, Y, Z)."}), options_);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->FactsFor("q").size(), 1u);
}

TEST_F(ConcretePredicatesTest, WorksThroughQuerySession) {
  QuerySession session(&db_, options_);
  ASSERT_TRUE(
      session.AddRule("close(O1, O2) <- at(O1, X1), at(O2, X2), "
                      "near(X1, X2), O1 != O2.")
          .ok());
  auto r = session.Query("?- close(O1, O2).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(ConcretePredicatesTest, WithoutDomainPredicateMatchesFacts) {
  EvalOptions plain;  // no concrete domain
  auto eval = Evaluator::Make(
      &db_, ParseRules({"close(X) <- near(X, 0)."}), plain);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_TRUE(fp->FactsFor("close").empty());  // no stored near/2 facts
}

}  // namespace
}  // namespace vqldb
