// THM-1 (and Lemmas 3-4): model-theoretic semantics — a fixpoint of T_P is a
// model; the intersection of models is a model; the least fixpoint is
// contained in every model (minimality). Exercised over randomly generated
// positive programs and EDBs.

#include <gtest/gtest.h>

#include "src/common/logging.h"

#include "src/common/rng.h"
#include "src/engine/evaluator.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

struct Scenario {
  std::unique_ptr<VideoDatabase> db;
  std::vector<Rule> rules;
};

// Random EDB over relations p/1 and e/2 with `n` entities, plus a random
// positive, non-constructive program over derived predicates d0..d2.
Scenario RandomSetup(uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.db = std::make_unique<VideoDatabase>();
  size_t n = 3 + rng.UniformU64(3);
  std::vector<ObjectId> entities;
  for (size_t i = 0; i < n; ++i) {
    entities.push_back(*s.db->CreateEntity("c" + std::to_string(i)));
  }
  for (ObjectId o : entities) {
    if (rng.Bernoulli(0.5)) {
      VQLDB_CHECK_OK(s.db->AssertFact("p", {Value::Oid(o)}));
    }
  }
  for (size_t i = 0; i < 2 * n; ++i) {
    ObjectId a = entities[rng.UniformU64(entities.size())];
    ObjectId b = entities[rng.UniformU64(entities.size())];
    VQLDB_CHECK_OK(s.db->AssertFact("e", {Value::Oid(a), Value::Oid(b)}));
  }

  const char* templates[] = {
      "d0(X) <- p(X).",
      "d0(X) <- e(X, Y).",
      "d1(X, Y) <- e(X, Y), p(X).",
      "d1(X, Y) <- e(Y, X).",
      "d2(X, Z) <- e(X, Y), e(Y, Z).",
      "d2(X, Z) <- d2(X, Y), e(Y, Z).",
      "d0(Y) <- d1(X, Y), d0(X).",
      "d2(X, X) <- d0(X).",
  };
  size_t num_rules = 2 + rng.UniformU64(5);
  for (size_t i = 0; i < num_rules; ++i) {
    auto rule = Parser::ParseRule(templates[rng.UniformU64(8)]);
    VQLDB_CHECK(rule.ok());
    s.rules.push_back(*rule);
  }
  return s;
}

// Closes an interpretation under T_P (a model containing the seed).
Interpretation CloseUnderTp(Evaluator* eval, Interpretation seed) {
  while (true) {
    auto next = eval->ApplyOnce(seed);
    VQLDB_CHECK(next.ok());
    if (*next == seed) return seed;
    seed = std::move(*next);
  }
}

// A random superset of the given interpretation (junk facts over the same
// predicates/constants).
Interpretation RandomSuperset(const Interpretation& base,
                              const VideoDatabase& db, Rng* rng) {
  Interpretation out;
  for (const Fact& f : base.AllFacts()) out.Add(f);
  const auto& entities = db.Entities();
  for (int i = 0; i < 5; ++i) {
    Fact f;
    switch (rng->UniformU64(3)) {
      case 0:
        f.relation = "d0";
        f.args = {Value::Oid(entities[rng->UniformU64(entities.size())])};
        break;
      case 1:
        f.relation = "d1";
        f.args = {Value::Oid(entities[rng->UniformU64(entities.size())]),
                  Value::Oid(entities[rng->UniformU64(entities.size())])};
        break;
      default:
        f.relation = "d2";
        f.args = {Value::Oid(entities[rng->UniformU64(entities.size())]),
                  Value::Oid(entities[rng->UniformU64(entities.size())])};
    }
    out.Add(f);
  }
  return out;
}

class SemanticsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemanticsPropertyTest, LeastFixpointIsAFixpointAndAModel) {
  Scenario s = RandomSetup(GetParam());
  auto eval = Evaluator::Make(s.db.get(), s.rules);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  // Lemma 3/4: TP(FP) == FP, i.e. FP is a model.
  auto applied = eval->ApplyOnce(*fp);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(*applied == *fp);
}

TEST_P(SemanticsPropertyTest, LeastFixpointIsMinimal) {
  // Theorem 3: the least fixpoint is contained in every model containing
  // the EDB. Build models as T_P-closures of random supersets.
  Scenario s = RandomSetup(GetParam() + 10000);
  auto eval = Evaluator::Make(s.db.get(), s.rules);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());

  Rng rng(GetParam() * 31 + 7);
  auto edb = eval->Edb();
  ASSERT_TRUE(edb.ok());
  for (int trial = 0; trial < 3; ++trial) {
    Interpretation model =
        CloseUnderTp(&*eval, RandomSuperset(*edb, *s.db, &rng));
    // model is a model of P containing the EDB; minimality requires
    // FP subset-of model.
    EXPECT_TRUE(fp->SubsetOf(model));
  }
}

TEST_P(SemanticsPropertyTest, IntersectionOfModelsIsAModel) {
  // Theorem 1's core step: the intersection of models of P is a model of P.
  Scenario s = RandomSetup(GetParam() + 20000);
  auto eval = Evaluator::Make(s.db.get(), s.rules);
  ASSERT_TRUE(eval.ok());
  Rng rng(GetParam() * 17 + 3);
  auto edb = eval->Edb();
  ASSERT_TRUE(edb.ok());

  Interpretation m1 = CloseUnderTp(&*eval, RandomSuperset(*edb, *s.db, &rng));
  Interpretation m2 = CloseUnderTp(&*eval, RandomSuperset(*edb, *s.db, &rng));
  Interpretation inter;
  for (const Fact& f : m1.AllFacts()) {
    if (m2.Contains(f)) inter.Add(f);
  }
  // T_P(inter) adds nothing outside inter (Lemma 3: model iff TP(I) <= I).
  auto applied = eval->ApplyOnce(inter);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(applied->SubsetOf(inter));
  EXPECT_TRUE(*applied == inter);
}

TEST_P(SemanticsPropertyTest, FixpointIndependentOfEvaluationStrategy) {
  Scenario s = RandomSetup(GetParam() + 30000);
  EvalOptions naive;
  naive.semi_naive = false;
  auto eval_naive = Evaluator::Make(s.db.get(), s.rules, naive);
  auto eval_semi = Evaluator::Make(s.db.get(), s.rules);
  ASSERT_TRUE(eval_naive.ok());
  ASSERT_TRUE(eval_semi.ok());
  auto fp_naive = eval_naive->Fixpoint();
  auto fp_semi = eval_semi->Fixpoint();
  ASSERT_TRUE(fp_naive.ok());
  ASSERT_TRUE(fp_semi.ok());
  EXPECT_TRUE(*fp_naive == *fp_semi);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticsPropertyTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace vqldb
