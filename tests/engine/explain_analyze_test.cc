// EXPLAIN ANALYZE: the EvalProfile collected during Fixpoint() must be
// internally consistent with EvalStats, QuerySession::Explain must render
// plans (and, with analyze, measured profiles plus the answer), and the
// shell must accept `explain [analyze] ?- goal.` statements.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/engine/query.h"
#include "src/lang/parser.h"
#include "src/shell/repl.h"

namespace vqldb {
namespace {

constexpr const char* kRopeProgram = R"(
  object o1 { name: "David", role: "Victim" }.
  object o2 { name: "Philip", role: "Murderer" }.
  object o3 { name: "Brandon", role: "Murderer" }.
  interval gi1 { duration: (t > 0 and t < 10), entities: {o1, o2, o3} }.
  interval gi2 { duration: (t > 15 and t < 40), entities: {o1, o2} }.
  interval gi3 { duration: (t > 2 and t < 8), entities: {o2, o3} }.
)";

constexpr const char* kRopeRules = R"(
  appears(O, G) <- Interval(G), Object(O), O in G.entities.
  contains(G1, G2) <- Interval(G1), Interval(G2),
                      G2.duration => G1.duration, G1 != G2.
  nested(G1, G2) <- contains(G1, G2).
  nested(G1, G3) <- nested(G1, G2), contains(G2, G3).
)";

std::unique_ptr<VideoDatabase> BuildDb() {
  auto db = std::make_unique<VideoDatabase>();
  QuerySession loader(db.get());
  EXPECT_TRUE(loader.Load(kRopeProgram).ok());
  return db;
}

std::vector<Rule> RopeRules() {
  auto program = Parser::ParseProgram(kRopeRules);
  EXPECT_TRUE(program.ok()) << program.status();
  std::vector<Rule> rules;
  for (const Rule* r : program->Rules()) rules.push_back(*r);
  return rules;
}

void CheckProfileConsistency(size_t num_threads) {
  auto db = BuildDb();
  EvalOptions options;
  options.collect_profile = true;
  options.num_threads = num_threads;
  auto eval = Evaluator::Make(db.get(), RopeRules(), options);
  ASSERT_TRUE(eval.ok()) << eval.status();
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok()) << fp.status();

  const EvalStats& stats = eval->stats();
  const EvalProfile& profile = eval->profile();

  // One profiled round per fixpoint iteration, in order.
  ASSERT_EQ(profile.rounds.size(), stats.iterations);
  size_t round_facts = 0;
  for (size_t i = 0; i < profile.rounds.size(); ++i) {
    EXPECT_EQ(profile.rounds[i].round, i + 1);
    EXPECT_GE(profile.rounds[i].wall_ms, 0.0);
    round_facts += profile.rounds[i].new_facts;
  }
  EXPECT_EQ(round_facts, stats.delta_tuples);

  // Per-rule tallies must sum to the run's aggregate counters.
  ASSERT_EQ(profile.rules.size(), RopeRules().size());
  size_t firings = 0;
  size_t derived = 0;
  for (const RuleProfile& rule : profile.rules) {
    EXPECT_FALSE(rule.label.empty());
    EXPECT_GE(rule.wall_ms, 0.0);
    firings += rule.firings;
    derived += rule.derived;
  }
  EXPECT_EQ(firings, stats.rule_firings);
  EXPECT_EQ(derived, stats.derived_facts);
  EXPECT_GE(profile.total_ms, 0.0);

  // The rendered tables mention every rule label.
  std::string rendered = profile.ToString();
  EXPECT_NE(rendered.find("per rule:"), std::string::npos);
  EXPECT_NE(rendered.find("per round:"), std::string::npos);
  EXPECT_NE(rendered.find("appears"), std::string::npos);
  EXPECT_NE(rendered.find("nested"), std::string::npos);
}

TEST(ExplainAnalyzeTest, ProfileMatchesStatsSerial) {
  CheckProfileConsistency(1);
}

TEST(ExplainAnalyzeTest, ProfileMatchesStatsParallel) {
  CheckProfileConsistency(4);
}

TEST(ExplainAnalyzeTest, ProfileEmptyWhenNotRequested) {
  auto db = BuildDb();
  auto eval = Evaluator::Make(db.get(), RopeRules(), EvalOptions{});
  ASSERT_TRUE(eval.ok()) << eval.status();
  ASSERT_TRUE(eval->Fixpoint().ok());
  EXPECT_TRUE(eval->profile().rounds.empty());
}

TEST(ExplainAnalyzeTest, SessionExplainRendersPlansOnly) {
  auto db = BuildDb();
  QuerySession session(db.get());
  ASSERT_TRUE(session.Load(kRopeRules).ok());
  auto text = session.Explain("?- nested(G1, G2).", /*analyze=*/false);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("EXPLAIN ?- nested(G1, G2)."), std::string::npos);
  // Plans for the goal's dependency cone only: nested depends on contains
  // but not on appears.
  EXPECT_NE(text->find("contains"), std::string::npos);
  EXPECT_EQ(text->find("appears"), std::string::npos);
  // No measurements without analyze.
  EXPECT_EQ(text->find("per rule:"), std::string::npos);
}

TEST(ExplainAnalyzeTest, SessionExplainAnalyzeRendersProfileAndAnswer) {
  auto db = BuildDb();
  QuerySession session(db.get());
  ASSERT_TRUE(session.Load(kRopeRules).ok());
  auto text = session.Explain("?- nested(G1, G2).", /*analyze=*/true);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("EXPLAIN ANALYZE ?- nested(G1, G2)."),
            std::string::npos);
  EXPECT_NE(text->find("per rule:"), std::string::npos);
  EXPECT_NE(text->find("per round:"), std::string::npos);
  EXPECT_NE(text->find("stats:"), std::string::npos);
  // gi1 and gi3 nest inside the others: answers exist and are rendered.
  EXPECT_NE(text->find("answer"), std::string::npos);
  EXPECT_NE(text->find("[G1, G2]"), std::string::npos);
  // The goal-directed run updates the session's last_stats.
  EXPECT_GT(session.last_stats().derived_facts, 0u);
}

TEST(ExplainAnalyzeTest, StorageBreakdownListsEveryRelation) {
  auto db = BuildDb();
  QuerySession session(db.get());
  ASSERT_TRUE(session.Load(kRopeRules).ok());
  auto text = session.Explain("?- nested(G1, G2).", /*analyze=*/true);
  ASSERT_TRUE(text.ok()) << text.status();
  // The aggregate storage line is followed by one indented line per
  // relation in the evaluated interpretation, drawn from the same snapshot
  // sys_relations reports: "<pred>: R rows (S sealed in K segments, D delta
  // rows), B bytes".
  ASSERT_NE(text->find("storage: "), std::string::npos);
  const size_t line = text->find("  contains: ");
  ASSERT_NE(line, std::string::npos) << *text;
  const size_t eol = text->find('\n', line);
  const std::string detail = text->substr(line, eol - line);
  EXPECT_NE(detail.find(" rows ("), std::string::npos) << detail;
  EXPECT_NE(detail.find(" sealed in "), std::string::npos) << detail;
  EXPECT_NE(detail.find(" segments, "), std::string::npos) << detail;
  EXPECT_NE(detail.find(" delta rows), "), std::string::npos) << detail;
  EXPECT_NE(detail.find(" bytes"), std::string::npos) << detail;
}

TEST(ExplainAnalyzeTest, SysGoalReportsSeededFactsAndCacheBypass) {
  auto db = BuildDb();
  QuerySession session(db.get());
  ASSERT_TRUE(session.Load(kRopeRules).ok());
  auto text = session.Explain("?- sys_relations(P, A, R, B, S).",
                              /*analyze=*/true);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("system relations: "), std::string::npos) << *text;
  EXPECT_NE(text->find("seeded facts"), std::string::npos);
  EXPECT_NE(text->find("query cache: bypassed (system relations)"),
            std::string::npos);
}

TEST(ExplainAnalyzeTest, ReplAcceptsExplainStatements) {
  VideoDatabase db;
  Repl repl(&db);
  EXPECT_EQ(repl.Execute(kRopeProgram), "ok\n");
  EXPECT_EQ(repl.Execute(kRopeRules), "ok\n");

  std::string plain = repl.Execute("explain ?- nested(G1, G2).");
  EXPECT_NE(plain.find("EXPLAIN ?-"), std::string::npos);
  EXPECT_EQ(plain.find("per rule:"), std::string::npos);

  std::string analyzed = repl.Execute("EXPLAIN ANALYZE ?- nested(G1, G2).");
  EXPECT_NE(analyzed.find("per rule:"), std::string::npos)
      << analyzed;
  EXPECT_NE(analyzed.find("answer"), std::string::npos);

  EXPECT_NE(repl.Execute("explain nested(G1, G2)."). find("usage:"),
            std::string::npos);
}

}  // namespace
}  // namespace vqldb
