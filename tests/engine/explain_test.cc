// The EXPLAIN facility: compiled plans render step order, access paths and
// constraint placement.

#include <gtest/gtest.h>

#include "src/engine/rule_compiler.h"
#include "src/lang/parser.h"
#include "src/shell/repl.h"

namespace vqldb {
namespace {

std::string Explain(const VideoDatabase& db, const char* text,
                    bool reorder = false) {
  auto rule = Parser::ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  auto compiled = RuleCompiler::Compile(*rule, db, reorder);
  EXPECT_TRUE(compiled.ok()) << compiled.status();
  return ExplainRule(*compiled);
}

TEST(ExplainTest, ShowsStepsAndConstraintPlacement) {
  VideoDatabase db;
  std::string plan = Explain(
      db,
      "contains(G1, G2) <- Interval(G1), Interval(G2), "
      "G2.duration => G1.duration.");
  EXPECT_NE(plan.find("1. enumerate Interval(G1)"), std::string::npos);
  EXPECT_NE(plan.find("2. enumerate Interval(G2)"), std::string::npos);
  EXPECT_NE(plan.find("check G2.duration => G1.duration"), std::string::npos);
  EXPECT_NE(plan.find("emit contains(G1, G2)"), std::string::npos);
  // The constraint is checked after step 2 (both variables bound).
  EXPECT_GT(plan.find("check G2.duration"), plan.find("2. enumerate"));
}

TEST(ExplainTest, IndexProbeOnBoundArgument) {
  VideoDatabase db;
  ASSERT_TRUE(db.CreateEntity("a").ok());
  std::string plan =
      Explain(db, "from_a(Y) <- edge(a, Y), edge(Y, Z).");
  // First literal: constant in argument 1 — a contiguous bound prefix, so
  // the sorted segments answer it with a merge join.
  EXPECT_NE(plan.find("match edge(id1, Y)  [merge join on argument 1]"),
            std::string::npos);
  // Second literal: Y bound by the first -> merge join on argument 1 too.
  size_t second = plan.find("match edge(Y, Z)");
  ASSERT_NE(second, std::string::npos);
  EXPECT_NE(plan.find("[merge join on argument 1]", second),
            std::string::npos);
}

TEST(ExplainTest, HashProbeWhenMergeJoinsDisabledOrNonPrefix) {
  VideoDatabase db;
  ASSERT_TRUE(db.CreateEntity("a").ok());
  // Same plan with merge joins off: the hash index probe is reported.
  auto rule = Parser::ParseRule("from_a(Y) <- edge(a, Y), edge(Y, Z).");
  ASSERT_TRUE(rule.ok()) << rule.status();
  auto compiled = RuleCompiler::Compile(*rule, db, false);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::string plan = ExplainRule(*compiled, /*merge_join_enabled=*/false);
  EXPECT_NE(plan.find("match edge(id1, Y)  [index probe on argument 1]"),
            std::string::npos);
  // A bound position that is not a contiguous prefix (argument 2 only)
  // cannot take the merge path even with merge joins on.
  std::string gap = Explain(db, "to_a(X) <- edge(X, a).");
  EXPECT_NE(gap.find("[index probe on argument 2]"), std::string::npos);
}

TEST(ExplainTest, FullScanWhenNothingBound) {
  VideoDatabase db;
  std::string plan = Explain(db, "pairs(X, Y) <- edge(X, Y).");
  EXPECT_NE(plan.find("[full scan]"), std::string::npos);
}

TEST(ExplainTest, GroundConstraintsAsPreChecks) {
  VideoDatabase db;
  std::string plan = Explain(db, "q(X) <- p(X), 1 < 2.");
  EXPECT_NE(plan.find("pre-check 1 < 2"), std::string::npos);
}

TEST(ExplainTest, ConstructiveHeadMarksMaterialization) {
  VideoDatabase db;
  std::string plan = Explain(
      db, "cat(G1 ++ G2) <- Interval(G1), Interval(G2).");
  EXPECT_NE(plan.find("G1 ++ G2  [materialize derived interval]"),
            std::string::npos);
}

TEST(ExplainTest, ReorderChangesThePlan) {
  VideoDatabase db;
  const char* rule = "pick(G) <- Interval(G), featured(G).";
  std::string written = Explain(db, rule, /*reorder=*/false);
  std::string reordered = Explain(db, rule, /*reorder=*/true);
  EXPECT_LT(written.find("Interval(G)"), written.find("featured"));
  EXPECT_LT(reordered.find("featured"), reordered.find("Interval(G)"));
  // After reordering, Interval(G) is a bound check, not an enumeration.
  EXPECT_NE(reordered.find("check Interval(G)"), std::string::npos);
}

TEST(ExplainTest, ShellExplainCommand) {
  VideoDatabase db;
  Repl repl(&db);
  std::string out = repl.Execute(
      ".explain q(G) <- Interval(G), o1 in G.entities.");
  // o1 is unknown in an empty database: a clean error, not a crash.
  EXPECT_NE(out.find("error:"), std::string::npos);
  repl.Execute("object o1 {}.");
  out = repl.Execute(".explain q(G) <- Interval(G), o1 in G.entities.");
  EXPECT_NE(out.find("enumerate Interval(G)"), std::string::npos);
  EXPECT_NE(out.find("check o1 in G.entities"), std::string::npos);
}

}  // namespace
}  // namespace vqldb
