// QueryGate admission control: slot grants up to capacity, bounded FIFO
// queueing with per-entry timeouts, structured Overloaded sheds, the
// admitted + shed == attempted accounting invariant, and deterministic
// fault injection.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "src/engine/query_gate.h"

namespace vqldb {
namespace {

using std::chrono::milliseconds;

// Spins until `cond` holds or ~5s pass; the gate has no completion hooks,
// so tests observe queue occupancy through the counters.
template <typename Cond>
bool AwaitCondition(Cond cond) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return true;
}

TEST(QueryGateTest, GrantsUpToCapacityImmediately) {
  QueryGate gate({/*max_concurrent=*/2, /*max_queued=*/4, milliseconds(50)});
  auto a = gate.Acquire();
  auto b = gate.Acquire();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->valid());
  EXPECT_EQ(gate.active(), 2u);
  EXPECT_EQ(gate.admitted_total(), 2u);

  a->Release();
  EXPECT_EQ(gate.active(), 1u);
  EXPECT_EQ(gate.completed_total(), 1u);
}

TEST(QueryGateTest, ZeroQueueShedsImmediatelyWhenBusy) {
  QueryGate gate({/*max_concurrent=*/1, /*max_queued=*/0, milliseconds(5000)});
  auto held = gate.Acquire();
  ASSERT_TRUE(held.ok());

  auto begin = std::chrono::steady_clock::now();
  auto shed = gate.Acquire();
  auto elapsed = std::chrono::steady_clock::now() - begin;
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsOverloaded()) << shed.status();
  // A full queue sheds on arrival; the 5s queue timeout never starts.
  EXPECT_LT(elapsed, milliseconds(1000));
  EXPECT_EQ(gate.shed_total(), 1u);
  EXPECT_EQ(gate.admitted_total(), 1u);
}

TEST(QueryGateTest, QueueTimeoutShedsWithOverloaded) {
  QueryGate gate({/*max_concurrent=*/1, /*max_queued=*/4, milliseconds(50)});
  auto held = gate.Acquire();
  ASSERT_TRUE(held.ok());

  auto begin = std::chrono::steady_clock::now();
  auto timed_out = gate.Acquire();
  auto elapsed = std::chrono::steady_clock::now() - begin;
  ASSERT_FALSE(timed_out.ok());
  EXPECT_TRUE(timed_out.status().IsOverloaded()) << timed_out.status();
  EXPECT_GE(elapsed, milliseconds(50));
  EXPECT_EQ(gate.queued(), 0u);  // the expired waiter left the queue
  EXPECT_EQ(gate.shed_total(), 1u);
}

TEST(QueryGateTest, ReleaseWakesQueuedWaiter) {
  QueryGate gate({/*max_concurrent=*/1, /*max_queued=*/4, milliseconds(5000)});
  auto held = gate.Acquire();
  ASSERT_TRUE(held.ok());

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto t = gate.Acquire();
    ASSERT_TRUE(t.ok()) << t.status();
    acquired.store(true);
  });
  ASSERT_TRUE(AwaitCondition([&] { return gate.queued() == 1; }));
  EXPECT_FALSE(acquired.load());

  held->Release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(gate.admitted_total(), 2u);
  EXPECT_EQ(gate.shed_total(), 0u);
  EXPECT_EQ(gate.completed_total(), 2u);
  EXPECT_EQ(gate.active(), 0u);
}

TEST(QueryGateTest, QueuedWaitersAreServedInArrivalOrder) {
  QueryGate gate({/*max_concurrent=*/1, /*max_queued=*/4, milliseconds(5000)});
  auto held = gate.Acquire();
  ASSERT_TRUE(held.ok());

  std::mutex order_mu;
  std::vector<int> order;
  auto waiter_body = [&](int id) {
    auto t = gate.Acquire();
    ASSERT_TRUE(t.ok()) << t.status();
    {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(id);
    }
  };

  std::thread first(waiter_body, 1);
  ASSERT_TRUE(AwaitCondition([&] { return gate.queued() == 1; }));
  std::thread second(waiter_body, 2);
  ASSERT_TRUE(AwaitCondition([&] { return gate.queued() == 2; }));

  held->Release();
  first.join();
  second.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(QueryGateTest, AccountingInvariantHolds) {
  QueryGate gate({/*max_concurrent=*/1, /*max_queued=*/0, milliseconds(10)});
  const size_t kAttempts = 20;
  size_t ok = 0, shed = 0;
  for (size_t i = 0; i < kAttempts; ++i) {
    auto t = gate.Acquire();
    if (t.ok()) {
      ++ok;
      if (i % 3 == 0) {
        // Hold the slot into the next attempt to force some sheds.
        auto held = std::move(*t);
        auto next = gate.Acquire();
        next.ok() ? ++ok : ++shed;
        ++i;
      }
    } else {
      EXPECT_TRUE(t.status().IsOverloaded());
      ++shed;
    }
  }
  EXPECT_EQ(gate.admitted_total(), ok);
  EXPECT_EQ(gate.shed_total(), shed);
  EXPECT_EQ(gate.admitted_total() + gate.shed_total(), ok + shed);
  EXPECT_EQ(gate.completed_total(), gate.admitted_total());  // all released
  EXPECT_EQ(gate.active(), 0u);
  EXPECT_EQ(gate.queued(), 0u);
}

TEST(QueryGateTest, FaultInjectionIsDeterministicAndAccounted) {
  auto outcomes = [](uint64_t seed) {
    QueryGate gate({4, 4, milliseconds(10)});
    gate.ArmFaults({seed, /*reject_p=*/0.5});
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) {
      auto t = gate.Acquire();
      out.push_back(t.ok());
      if (!t.ok()) {
        EXPECT_TRUE(t.status().IsOverloaded()) << t.status();
      }
    }
    return out;
  };
  EXPECT_EQ(outcomes(7), outcomes(7));  // same seed, same shed schedule
  EXPECT_NE(outcomes(7), outcomes(8));

  QueryGate gate({4, 4, milliseconds(10)});
  gate.ArmFaults({42, /*reject_p=*/1.0});
  for (int i = 0; i < 5; ++i) {
    auto t = gate.Acquire();
    ASSERT_FALSE(t.ok());
    EXPECT_TRUE(t.status().IsOverloaded());
  }
  EXPECT_EQ(gate.injected_rejects(), 5u);
  EXPECT_EQ(gate.shed_total(), 5u);  // injected rejects count as sheds
  EXPECT_EQ(gate.admitted_total(), 0u);
}

TEST(QueryGateTest, TicketMoveTransfersOwnership) {
  QueryGate gate({1, 0, milliseconds(10)});
  auto t = gate.Acquire();
  ASSERT_TRUE(t.ok());
  QueryGate::Ticket moved = std::move(*t);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(t->valid());
  t->Release();  // releasing a moved-from ticket is a no-op
  EXPECT_EQ(gate.active(), 1u);
  moved.Release();
  EXPECT_EQ(gate.active(), 0u);
  moved.Release();  // double release is a no-op
  EXPECT_EQ(gate.completed_total(), 1u);
}

}  // namespace
}  // namespace vqldb
