// Differential testing: an independent, brute-force reference interpreter
// (ground every rule by enumerating all substitutions over the active
// domain, iterate to fixpoint) checked against the production evaluator on
// random programs. The two implementations share no evaluation code, so
// agreement is strong evidence of correctness.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/engine/evaluator.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

// ------------------------------------------------------------ reference

// A ground fact for the oracle: predicate plus oid arguments only.
using GroundFact = std::pair<std::string, std::vector<uint64_t>>;

// Evaluates one rule body under a substitution; the oracle supports the
// fragment the random generator emits: relational literals, Object(),
// equality/disequality between variables.
class Oracle {
 public:
  Oracle(const std::vector<Rule>& rules, std::set<GroundFact> edb,
         std::vector<uint64_t> domain)
      : rules_(rules), facts_(std::move(edb)), domain_(std::move(domain)) {}

  const std::set<GroundFact>& Fixpoint() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Rule& rule : rules_) {
        std::map<std::string, uint64_t> subst;
        changed |= Fire(rule, 0, &subst);
      }
    }
    return facts_;
  }

 private:
  // Enumerates substitutions for the rule's variables in order.
  bool Fire(const Rule& rule, size_t var_index,
            std::map<std::string, uint64_t>* subst) {
    std::vector<std::string> vars = VariablesOf(rule);
    if (var_index == vars.size()) {
      if (!BodyHolds(rule, *subst)) return false;
      GroundFact head = Ground(rule.head, *subst);
      if (facts_.count(head)) return false;
      facts_.insert(std::move(head));
      return true;
    }
    bool changed = false;
    for (uint64_t value : domain_) {
      (*subst)[vars[var_index]] = value;
      changed |= Fire(rule, var_index + 1, subst);
    }
    return changed;
  }

  GroundFact Ground(const Atom& atom,
                    const std::map<std::string, uint64_t>& subst) {
    GroundFact f;
    f.first = atom.predicate;
    for (const Term& t : atom.args) {
      VQLDB_CHECK(t.kind == Term::Kind::kVariable);
      f.second.push_back(subst.at(t.variable));
    }
    return f;
  }

  bool BodyHolds(const Rule& rule,
                 const std::map<std::string, uint64_t>& subst) {
    for (const Atom& atom : rule.body) {
      if (atom.predicate == kPredObject) continue;  // domain = all entities
      if (!facts_.count(Ground(atom, subst))) return false;
    }
    for (const ConstraintExpr& c : rule.constraints) {
      VQLDB_CHECK(c.kind == ConstraintExpr::Kind::kCompare);
      uint64_t lhs = subst.at(c.lhs.term.variable);
      uint64_t rhs = subst.at(c.rhs.term.variable);
      if (c.op == CompareOp::kEq && lhs != rhs) return false;
      if (c.op == CompareOp::kNe && lhs == rhs) return false;
    }
    return true;
  }

  const std::vector<Rule>& rules_;
  std::set<GroundFact> facts_;
  std::vector<uint64_t> domain_;
};

// ------------------------------------------------------------- generator

struct Scenario {
  std::unique_ptr<VideoDatabase> db;
  std::vector<Rule> rules;
  std::vector<uint64_t> domain;
  std::set<GroundFact> edb;
};

Scenario RandomScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.db = std::make_unique<VideoDatabase>();
  size_t n = 3 + rng.UniformU64(3);
  std::vector<ObjectId> entities;
  for (size_t i = 0; i < n; ++i) {
    ObjectId id = *s.db->CreateEntity("c" + std::to_string(i));
    entities.push_back(id);
    s.domain.push_back(id.raw);
  }
  auto assert_fact = [&](const std::string& rel, ObjectId a, ObjectId b) {
    VQLDB_CHECK_OK(s.db->AssertFact(rel, {Value::Oid(a), Value::Oid(b)}));
    s.edb.insert({rel, {a.raw, b.raw}});
  };
  for (size_t i = 0; i < 2 * n; ++i) {
    assert_fact(rng.Bernoulli(0.5) ? "e" : "f",
                entities[rng.UniformU64(n)], entities[rng.UniformU64(n)]);
  }

  const char* templates[] = {
      "d0(X, Y) <- e(X, Y).",
      "d0(X, Y) <- f(Y, X).",
      "d0(X, Z) <- d0(X, Y), e(Y, Z).",
      "d1(X, Y) <- e(X, Y), f(X, Y).",
      "d1(X, Y) <- d0(X, Y), X != Y.",
      "d0(X, Y) <- d1(X, Y), d1(Y, X).",
      "d1(X, X) <- e(X, Y), Object(X).",
      "d0(X, Y) <- d1(X, Z), f(Z, Y).",
  };
  size_t num_rules = 2 + rng.UniformU64(5);
  for (size_t i = 0; i < num_rules; ++i) {
    auto rule = Parser::ParseRule(templates[rng.UniformU64(8)]);
    VQLDB_CHECK(rule.ok());
    s.rules.push_back(*rule);
  }
  return s;
}

std::set<GroundFact> ToGround(const Interpretation& interp) {
  std::set<GroundFact> out;
  for (const Fact& f : interp.AllFacts()) {
    GroundFact g;
    g.first = f.relation;
    for (const Value& v : f.args) g.second.push_back(v.oid_value().raw);
    out.insert(std::move(g));
  }
  return out;
}

class DifferentialOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialOracleTest, EngineMatchesBruteForceReference) {
  Scenario s = RandomScenario(GetParam());

  Oracle oracle(s.rules, s.edb, s.domain);
  const std::set<GroundFact>& expected = oracle.Fixpoint();

  auto eval = Evaluator::Make(s.db.get(), s.rules);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  std::set<GroundFact> actual = ToGround(*fp);

  EXPECT_EQ(actual, expected) << "seed " << GetParam();
}

TEST_P(DifferentialOracleTest, NaiveModeAlsoMatches) {
  Scenario s = RandomScenario(GetParam() + 777);
  Oracle oracle(s.rules, s.edb, s.domain);
  const std::set<GroundFact>& expected = oracle.Fixpoint();

  EvalOptions options;
  options.semi_naive = false;
  auto eval = Evaluator::Make(s.db.get(), s.rules, options);
  ASSERT_TRUE(eval.ok());
  auto fp = eval->Fixpoint();
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(ToGround(*fp), expected) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialOracleTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace vqldb
