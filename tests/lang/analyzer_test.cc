#include "src/lang/analyzer.h"

#include <gtest/gtest.h>

#include "src/lang/parser.h"

namespace vqldb {
namespace {

Status CheckRuleText(std::string_view text) {
  auto rule = Parser::ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  std::map<std::string, size_t> arities;
  return Analyzer::CheckRule(*rule, &arities);
}

Status CheckProgramText(std::string_view text) {
  auto program = Parser::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return Analyzer::CheckProgram(*program);
}

TEST(AnalyzerTest, AcceptsPaperRules) {
  EXPECT_TRUE(CheckRuleText("contains(G1, G2) <- Interval(G1), Interval(G2), "
                            "G2.duration => G1.duration.")
                  .ok());
  EXPECT_TRUE(CheckRuleText("same_object_in(G1, G2, O) <- Interval(G1), "
                            "Interval(G2), Object(O), O in G1.entities, "
                            "O in G2.entities.")
                  .ok());
  EXPECT_TRUE(CheckRuleText(
                  "concat(G1 ++ G2) <- Interval(G1), Interval(G2), "
                  "Object(o1), Anyobject(o2), {o1, o2} subset G1.entities, "
                  "{o1, o2} subset G2.entities.")
                  .ok());
}

TEST(AnalyzerTest, RangeRestrictionHeadVariable) {
  // Def. 11: every variable must occur in a body literal.
  Status s = CheckRuleText("q(X, Y) <- p(X).");
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("Y"), std::string::npos);
}

TEST(AnalyzerTest, RangeRestrictionConstraintVariable) {
  // Z occurs only in a constraint, not in a literal.
  EXPECT_TRUE(CheckRuleText("q(X) <- p(X), Z.a = 1.").IsInvalidArgument());
}

TEST(AnalyzerTest, ConstraintsDoNotBind) {
  // Variables bound only via a constraint operand do not satisfy Def. 11.
  EXPECT_TRUE(CheckRuleText("q(X) <- p(Y), X = Y.").IsInvalidArgument());
}

TEST(AnalyzerTest, ConstructiveTermInBodyRejected) {
  EXPECT_TRUE(
      CheckRuleText("q(X) <- p(X ++ Y).").IsInvalidArgument());
}

TEST(AnalyzerTest, BuiltinRedefinitionRejected) {
  EXPECT_TRUE(CheckRuleText("Interval(X) <- p(X).").IsInvalidArgument());
  EXPECT_TRUE(CheckRuleText("Object(X) <- p(X).").IsInvalidArgument());
}

TEST(AnalyzerTest, BuiltinArityChecked) {
  EXPECT_TRUE(CheckRuleText("q(X) <- Interval(X, X).").IsInvalidArgument());
}

TEST(AnalyzerTest, NonGroundFactRejected) {
  EXPECT_TRUE(CheckRuleText("p(X).").IsInvalidArgument());
  EXPECT_TRUE(CheckRuleText("p(o1).").ok());
}

TEST(AnalyzerTest, ArityConsistencyAcrossProgram) {
  EXPECT_TRUE(CheckProgramText(R"(
    p(o1, o2).
    q(X) <- p(X).
  )")
                  .IsInvalidArgument());
  EXPECT_TRUE(CheckProgramText(R"(
    p(o1, o2).
    q(X) <- p(X, Y).
  )")
                  .ok());
}

TEST(AnalyzerTest, QueryArityChecked) {
  EXPECT_TRUE(CheckProgramText(R"(
    p(o1).
    ?- p(X, Y).
  )")
                  .IsInvalidArgument());
}

TEST(AnalyzerTest, QueryWithConstructiveTermRejected) {
  auto program = Parser::ParseProgram("?- q(A ++ B).");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(Analyzer::CheckProgram(*program).IsInvalidArgument());
}

TEST(AnalyzerTest, RecursiveRuleAccepted) {
  EXPECT_TRUE(CheckProgramText(R"(
    reach(X, Y) <- edge(X, Y).
    reach(X, Z) <- reach(X, Y), edge(Y, Z).
  )")
                  .ok());
}

TEST(AnalyzerTest, DeclsPassThrough) {
  EXPECT_TRUE(CheckProgramText(R"(
    object o1 { name: "x" }.
    interval gi1 { duration: (t > 0 and t < 1) }.
  )")
                  .ok());
}

}  // namespace
}  // namespace vqldb
