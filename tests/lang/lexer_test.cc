#include "src/lang/lexer.h"

#include <gtest/gtest.h>

namespace vqldb {
namespace {

std::vector<Token> Lex(std::string_view source) {
  auto r = Lexer(source).Tokenize();
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? *r : std::vector<Token>{};
}

std::vector<TokenKind> Kinds(std::string_view source) {
  std::vector<TokenKind> kinds;
  for (const Token& t : Lex(source)) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, EmptyInput) {
  EXPECT_EQ(Kinds(""), (std::vector<TokenKind>{TokenKind::kEof}));
  EXPECT_EQ(Kinds("   \n\t "), (std::vector<TokenKind>{TokenKind::kEof}));
}

TEST(LexerTest, IdentifierCaseConvention) {
  auto tokens = Lex("o1 G1 reporter Interval");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[3].kind, TokenKind::kVariable);  // builtins lex as vars
  EXPECT_EQ(tokens[0].text, "o1");
  EXPECT_EQ(tokens[3].text, "Interval");
}

TEST(LexerTest, Keywords) {
  EXPECT_EQ(Kinds("in subset and or true false object interval"),
            (std::vector<TokenKind>{
                TokenKind::kKwIn, TokenKind::kKwSubset, TokenKind::kKwAnd,
                TokenKind::kKwOr, TokenKind::kKwTrue, TokenKind::kKwFalse,
                TokenKind::kKwObject, TokenKind::kKwInterval,
                TokenKind::kEof}));
}

TEST(LexerTest, QualifiedName) {
  auto tokens = Lex("G.duration g1.entities");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kQualified);
  EXPECT_EQ(tokens[0].text, "G");
  EXPECT_EQ(tokens[0].attr, "duration");
  EXPECT_EQ(tokens[1].text, "g1");
  EXPECT_EQ(tokens[1].attr, "entities");
}

TEST(LexerTest, DotAsTerminatorWhenSpaced) {
  // "q(X)." — the '.' after ')' is a statement terminator.
  auto kinds = Kinds("q(X).");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdent, TokenKind::kLParen,
                       TokenKind::kVariable, TokenKind::kRParen,
                       TokenKind::kDot, TokenKind::kEof}));
}

TEST(LexerTest, NumberThenTerminator) {
  // "5." lexes as the number 5 followed by the terminator.
  auto tokens = Lex("x = 5.");
  EXPECT_EQ(tokens[2].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[2].number, 5);
  EXPECT_TRUE(tokens[2].is_integer);
  EXPECT_EQ(tokens[3].kind, TokenKind::kDot);
}

TEST(LexerTest, DecimalsAndExponents) {
  auto tokens = Lex("3.25 1e3 2.5e-2 -7");
  EXPECT_EQ(tokens[0].number, 3.25);
  EXPECT_FALSE(tokens[0].is_integer);
  EXPECT_EQ(tokens[1].number, 1000);
  EXPECT_EQ(tokens[2].number, 0.025);
  EXPECT_EQ(tokens[3].number, -7);
  EXPECT_TRUE(tokens[3].is_integer);
}

TEST(LexerTest, Operators) {
  EXPECT_EQ(Kinds("<- ?- => ++ = != < <= > >= : , ( ) { } ."),
            (std::vector<TokenKind>{
                TokenKind::kArrow, TokenKind::kQueryArrow, TokenKind::kEntails,
                TokenKind::kConcat, TokenKind::kEq, TokenKind::kNe,
                TokenKind::kLt, TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                TokenKind::kColon, TokenKind::kComma, TokenKind::kLParen,
                TokenKind::kRParen, TokenKind::kLBrace, TokenKind::kRBrace,
                TokenKind::kDot, TokenKind::kEof}));
}

TEST(LexerTest, PrologArrowAccepted) {
  EXPECT_EQ(Kinds(":-")[0], TokenKind::kArrow);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Lex(R"("plain" "a\"b" "tab\tx")");
  EXPECT_EQ(tokens[0].text, "plain");
  EXPECT_EQ(tokens[1].text, "a\"b");
  EXPECT_EQ(tokens[2].text, "tab\tx");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_TRUE(Lexer("\"oops").Tokenize().status().IsParseError());
  EXPECT_TRUE(Lexer("\"line\nbreak\"").Tokenize().status().IsParseError());
}

TEST(LexerTest, UnknownEscapeIsError) {
  EXPECT_TRUE(Lexer(R"("a\qb")").Tokenize().status().IsParseError());
}

TEST(LexerTest, Comments) {
  auto kinds = Kinds("a // comment to end\nb % percent comment\nc");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kIdent,
                                           TokenKind::kIdent, TokenKind::kEof}));
}

TEST(LexerTest, PositionsTracked) {
  auto tokens = Lex("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, BadCharactersAreErrors) {
  EXPECT_TRUE(Lexer("@").Tokenize().status().IsParseError());
  EXPECT_TRUE(Lexer("!x").Tokenize().status().IsParseError());
  EXPECT_TRUE(Lexer("?x").Tokenize().status().IsParseError());
  EXPECT_TRUE(Lexer("+ 1").Tokenize().status().IsParseError());
}

TEST(LexerTest, PaperExampleRule) {
  // The contains rule from Section 6.2 lexes cleanly.
  auto tokens = Lex(
      "contains(G1, G2) <- Interval(G1), Interval(G2), "
      "G2.duration => G1.duration.");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
  EXPECT_EQ(tokens[tokens.size() - 2].kind, TokenKind::kDot);
}

}  // namespace
}  // namespace vqldb
