#include "src/lang/parser.h"

#include <gtest/gtest.h>

namespace vqldb {
namespace {

Rule MustParseRule(std::string_view text) {
  auto r = Parser::ParseRule(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return r.ok() ? *r : Rule{};
}

Program MustParseProgram(std::string_view text) {
  auto r = Parser::ParseProgram(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return r.ok() ? *r : Program{};
}

TEST(ParserTest, FactRule) {
  Rule rule = MustParseRule("in(o1, o4, gi1).");
  EXPECT_TRUE(rule.IsFact());
  EXPECT_EQ(rule.head.predicate, "in");
  EXPECT_EQ(rule.head.args.size(), 3u);
  EXPECT_EQ(rule.head.args[0].constant.text, "o1");
}

TEST(ParserTest, SimpleRuleWithBuiltins) {
  Rule rule = MustParseRule("q(O) <- Interval(G), Object(O), O in G.entities.");
  EXPECT_FALSE(rule.IsFact());
  EXPECT_EQ(rule.body.size(), 2u);
  EXPECT_EQ(rule.body[0].predicate, "Interval");
  EXPECT_EQ(rule.constraints.size(), 1u);
  EXPECT_EQ(rule.constraints[0].kind, ConstraintExpr::Kind::kMembership);
}

TEST(ParserTest, NamedRule) {
  Rule rule = MustParseRule("r1: q(X) <- p(X).");
  EXPECT_EQ(rule.name, "r1");
  EXPECT_EQ(rule.head.predicate, "q");
}

TEST(ParserTest, PaperQuery1EntitiesOfSequence) {
  // q(O) <- Interval(g), Object(O), O in g.entities.
  Rule rule = MustParseRule("q(O) <- Interval(g), Object(O), O in g.entities.");
  EXPECT_EQ(rule.constraints[0].rhs.kind, Operand::Kind::kAccess);
  EXPECT_EQ(rule.constraints[0].rhs.attribute, "entities");
  EXPECT_EQ(rule.constraints[0].rhs.term.kind, Term::Kind::kConstant);
}

TEST(ParserTest, PaperQuery3TemporalFrame) {
  // q(o) <- Interval(G), Object(o), o in G.entities,
  //         G.duration => (t > 4 and t < 9).
  Rule rule = MustParseRule(
      "q(o) <- Interval(G), Object(o), o in G.entities, "
      "G.duration => (t > 4 and t < 9).");
  ASSERT_EQ(rule.constraints.size(), 2u);
  const ConstraintExpr& entail = rule.constraints[1];
  EXPECT_EQ(entail.kind, ConstraintExpr::Kind::kEntails);
  EXPECT_EQ(entail.lhs.kind, Operand::Kind::kAccess);
  EXPECT_EQ(entail.rhs.kind, Operand::Kind::kTemporal);
  IntervalSet denoted = entail.rhs.temporal.ToIntervalSet();
  EXPECT_TRUE(denoted.Contains(5));
  EXPECT_FALSE(denoted.Contains(4));
}

TEST(ParserTest, PaperQuery4SubsetForm) {
  Rule rule =
      MustParseRule("q(G) <- Interval(G), {o1, o2} subset G.entities.");
  ASSERT_EQ(rule.constraints.size(), 1u);
  EXPECT_EQ(rule.constraints[0].kind, ConstraintExpr::Kind::kSubset);
  EXPECT_EQ(rule.constraints[0].lhs.term.constant.kind, ConstExpr::Kind::kSet);
  EXPECT_EQ(rule.constraints[0].lhs.term.constant.elements.size(), 2u);
}

TEST(ParserTest, PaperQuery6AttributeValue) {
  Rule rule = MustParseRule(
      "q(G) <- Interval(G), Object(O), O in G.entities, O.a = \"val\".");
  const ConstraintExpr& cmp = rule.constraints[1];
  EXPECT_EQ(cmp.kind, ConstraintExpr::Kind::kCompare);
  EXPECT_EQ(cmp.op, CompareOp::kEq);
  EXPECT_EQ(cmp.lhs.attribute, "a");
  EXPECT_EQ(cmp.rhs.term.constant.text, "val");
}

TEST(ParserTest, ConstructiveRule) {
  // Section 6.2: concatenate_Gintervals(G1 ++ G2) <- ...
  Rule rule = MustParseRule(
      "concat(G1 ++ G2) <- Interval(G1), Interval(G2), Object(o1), "
      "o1 in G1.entities, o1 in G2.entities.");
  EXPECT_TRUE(rule.IsConstructive());
  ASSERT_EQ(rule.head.args.size(), 1u);
  EXPECT_EQ(rule.head.args[0].kind, Term::Kind::kConcat);
  EXPECT_EQ(rule.head.args[0].operands.size(), 2u);
}

TEST(ParserTest, ConcatChainFlattens) {
  Rule rule = MustParseRule("q(A ++ B ++ C) <- p(A, B, C).");
  EXPECT_EQ(rule.head.args[0].operands.size(), 3u);
}

TEST(ParserTest, InequalityBetweenAccesses) {
  Rule rule = MustParseRule("q(X, Y) <- p(X, Y), X.age < Y.age.");
  const ConstraintExpr& c = rule.constraints[0];
  EXPECT_EQ(c.op, CompareOp::kLt);
  EXPECT_EQ(c.lhs.attribute, "age");
  EXPECT_EQ(c.rhs.attribute, "age");
  EXPECT_EQ(c.lhs.term.variable, "X");
}

TEST(ParserTest, VariableComparison) {
  Rule rule = MustParseRule("q(X, Y) <- p(X), p(Y), X != Y.");
  EXPECT_EQ(rule.constraints[0].op, CompareOp::kNe);
}

TEST(ParserTest, InAsRelationName) {
  // The paper's relation is literally called `in`.
  Rule rule = MustParseRule("q(O) <- in(O, o4, gi1).");
  EXPECT_EQ(rule.body[0].predicate, "in");
}

TEST(ParserTest, ObjectDecl) {
  Program p = MustParseProgram(
      "object o1 { name: \"David\", role: \"Victim\" }.");
  ASSERT_EQ(p.statements.size(), 1u);
  const ObjectDecl& decl = p.statements[0].decl;
  EXPECT_FALSE(decl.is_interval);
  EXPECT_EQ(decl.symbol, "o1");
  ASSERT_EQ(decl.attributes.size(), 2u);
  EXPECT_EQ(decl.attributes[0].first, "name");
  EXPECT_EQ(decl.attributes[0].second.text, "David");
}

TEST(ParserTest, IntervalDeclWithDisjunctiveDuration) {
  Program p = MustParseProgram(
      "interval gi1 { duration: (t > 0 and t < 5) or (t > 9 and t < 12), "
      "entities: {o1, o2} }.");
  const ObjectDecl& decl = p.statements[0].decl;
  EXPECT_TRUE(decl.is_interval);
  ASSERT_EQ(decl.attributes.size(), 2u);
  EXPECT_EQ(decl.attributes[0].second.kind, ConstExpr::Kind::kTemporal);
  IntervalSet denoted = decl.attributes[0].second.temporal.ToIntervalSet();
  EXPECT_EQ(denoted.fragment_count(), 2u);
}

TEST(ParserTest, EmptyDecl) {
  Program p = MustParseProgram("object empty {}.");
  EXPECT_TRUE(p.statements[0].decl.attributes.empty());
}

TEST(ParserTest, QueryStatement) {
  Program p = MustParseProgram("?- q(X, \"val\").");
  ASSERT_EQ(p.statements.size(), 1u);
  EXPECT_EQ(p.statements[0].kind, Statement::Kind::kQuery);
  EXPECT_EQ(p.statements[0].query.goal.predicate, "q");
}

TEST(ParserTest, ParseQueryEntryPoint) {
  auto q = Parser::ParseQuery("?- contains(G1, gi2).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->goal.args.size(), 2u);
  // Without arrow / terminator also accepted.
  EXPECT_TRUE(Parser::ParseQuery("q(X)").ok());
}

TEST(ParserTest, ParseTemporalEntryPoint) {
  auto t = Parser::ParseTemporal("t >= 0 and t <= 5 or t = 9");
  ASSERT_TRUE(t.ok());
  IntervalSet s = t->ToIntervalSet();
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(9));
  EXPECT_FALSE(s.Contains(7));
}

TEST(ParserTest, TemporalReversedComparison) {
  auto t = Parser::ParseTemporal("0 < t and 5 > t");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->ToIntervalSet().Contains(2));
  EXPECT_FALSE(t->ToIntervalSet().Contains(5));
}

TEST(ParserTest, MixedProgram) {
  Program p = MustParseProgram(R"(
    object o1 { name: "David" }.
    interval gi1 { duration: (t > 0 and t < 10), entities: {o1} }.
    in(o1, gi1).
    q(G) <- Interval(G), Object(o1), o1 in G.entities.
    ?- q(G).
  )");
  EXPECT_EQ(p.statements.size(), 5u);
  EXPECT_EQ(p.Decls().size(), 2u);
  EXPECT_EQ(p.Rules().size(), 2u);  // fact + rule
  EXPECT_EQ(p.Queries().size(), 1u);
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* source =
      "contains(G1, G2) <- Interval(G1), Interval(G2), "
      "G2.duration => G1.duration.";
  Rule rule = MustParseRule(source);
  Rule reparsed = MustParseRule(rule.ToString());
  EXPECT_EQ(reparsed.ToString(), rule.ToString());
}

TEST(ParserTest, ProgramRoundTrip) {
  Program p = MustParseProgram(R"(
    object o1 { name: "David" }.
    interval gi1 { duration: (t > 0 and t < 10), entities: {o1} }.
    q(G) <- Interval(G), o1 in G.entities.
  )");
  Program p2 = MustParseProgram(p.ToString());
  EXPECT_EQ(p2.ToString(), p.ToString());
}

TEST(ParserTest, Errors) {
  EXPECT_TRUE(Parser::ParseRule("q(X").status().IsParseError());
  EXPECT_TRUE(Parser::ParseRule("q(X) <- .").status().IsParseError());
  EXPECT_TRUE(Parser::ParseRule("q(X) <- p(X)").status().IsParseError());  // no dot
  EXPECT_TRUE(Parser::ParseRule("q(X) <- X ~ Y.").status().IsParseError());
  EXPECT_TRUE(
      Parser::ParseProgram("object { a: 1 }.").status().IsParseError());
  EXPECT_TRUE(Parser::ParseProgram("interval gi { duration: (t >) }.")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(Parser::ParseRule("q(X) <- p(X) r(X).").status().IsParseError());
}

TEST(ParserTest, TemporalRequiresTimeVariable) {
  EXPECT_TRUE(Parser::ParseTemporal("x > 1").status().IsParseError());
  EXPECT_TRUE(Parser::ParseTemporal("1 < y").status().IsParseError());
}

TEST(ParserTest, SetLiteralNested) {
  Rule rule = MustParseRule("q(X) <- p(X), {1, {2, 3}} subset X.vals.");
  const ConstExpr& set = rule.constraints[0].lhs.term.constant;
  ASSERT_EQ(set.elements.size(), 2u);
  EXPECT_EQ(set.elements[1].kind, ConstExpr::Kind::kSet);
}

TEST(ParserTest, VariablesOfCollectsInOrder) {
  Rule rule = MustParseRule(
      "q(A, B) <- p(B, A), r(C), A.x < C.y.");
  EXPECT_EQ(VariablesOf(rule),
            (std::vector<std::string>{"A", "B", "C"}));
}

}  // namespace
}  // namespace vqldb
