// Robustness sweeps: the lexer and parser must return ParseError (never
// crash, hang, or accept garbage silently) on arbitrary byte soup, random
// token salads, and mutations of valid programs.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/lang/lexer.h"
#include "src/lang/parser.h"

namespace vqldb {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::string input;
    size_t len = rng.UniformU64(200);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.UniformInt(1, 127)));
    }
    // Must terminate and produce either a program or an error; both fine.
    auto r = Parser::ParseProgram(input);
    (void)r;
  }
}

TEST_P(ParserFuzzTest, RandomTokenSaladNeverCrashes) {
  Rng rng(GetParam() + 100);
  const char* tokens[] = {"object", "interval", "in",    "subset", "and",
                          "or",     "true",     "false", "before", "meets",
                          "overlaps", "X",      "o1",    "q",      "42",
                          "3.5",    "\"s\"",    "(",     ")",      "{",
                          "}",      ",",        ":",     ".",      "<-",
                          "?-",     "=>",       "++",    "=",      "!=",
                          "<",      "<=",       ">",     ">=",     "t"};
  for (int trial = 0; trial < 50; ++trial) {
    std::string input;
    size_t len = rng.UniformU64(40);
    for (size_t i = 0; i < len; ++i) {
      input += tokens[rng.UniformU64(std::size(tokens))];
      input += " ";
    }
    auto r = Parser::ParseProgram(input);
    (void)r;
  }
}

TEST_P(ParserFuzzTest, MutatedValidProgramErrorsCleanly) {
  const std::string valid = R"(
    object o1 { name: "David" }.
    interval gi1 { duration: (t > 0 and t < 10), entities: {o1} }.
    q(G) <- Interval(G), o1 in G.entities, G.duration => (t < 99).
    ?- q(G).
  )";
  Rng rng(GetParam() + 999);
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = valid;
    size_t edits = 1 + rng.UniformU64(4);
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = rng.UniformU64(mutated.size());
      switch (rng.UniformU64(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.UniformInt(33, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.UniformInt(33, 126)));
      }
    }
    auto r = Parser::ParseProgram(mutated);
    if (r.ok()) {
      // If it still parses, the result must round-trip through ToString.
      auto again = Parser::ParseProgram(r->ToString());
      EXPECT_TRUE(again.ok()) << r->ToString();
    } else {
      EXPECT_TRUE(r.status().IsParseError() ||
                  r.status().IsInvalidArgument())
          << r.status();
    }
  }
}

TEST_P(ParserFuzzTest, LexerHandlesPathologicalInputs) {
  Rng rng(GetParam() + 5000);
  std::string inputs[] = {
      std::string(1000, '.'),
      std::string(1000, '"'),
      std::string(500, '(') + std::string(500, ')'),
      "t" + std::string(200, '.') + "t",
      std::string(300, '-'),
      "\"" + std::string(999, 'a'),  // unterminated long string
  };
  for (const std::string& input : inputs) {
    auto r = Lexer(input).Tokenize();
    (void)r;  // no crash is the assertion
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace vqldb
