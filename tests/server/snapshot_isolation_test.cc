// The snapshot-isolation property test: a writer advancing the live
// database through G generations while concurrent readers (one per
// evaluation strategy) lease snapshot sessions. Every reader observation
// must be ONE committed generation — never a torn mix:
//
//   * each generation inserts a *pair* of facts (e and f) in one Apply, so
//     count(e) == count(f) is the torn-state detector,
//   * the writer records, per generation, the SealedDigest of both
//     predicates computed from its own snapshot lease; a reader's digest
//     must equal the writer's digest for the generation it observed —
//     i.e. the reader's clone is byte-equivalent (at the sealed-segment
//     level) to a committed state, not merely count-equal,
//   * within one lease, repeated evaluation is stable: same counts, same
//     digests.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/evaluator.h"
#include "src/engine/query.h"
#include "src/server/snapshot.h"

namespace vqldb {
namespace server {
namespace {

struct GenDigest {
  uint64_t e = 0;
  uint64_t f = 0;
  bool operator==(const GenDigest& other) const {
    return e == other.e && f == other.f;
  }
};

// Digest of the base relations of `lease`'s private clone. Evaluates a
// fixpoint over the clone (no rules needed: base facts are what the
// generations mutate), seals the segments, and digests both predicates.
GenDigest DigestOf(SessionLease& lease) {
  EvalOptions options;
  auto eval = Evaluator::Make(lease.db(), {}, options);
  EXPECT_TRUE(eval.ok());
  GenDigest digest;
  if (!eval.ok()) return digest;
  auto fp = eval->Fixpoint();
  EXPECT_TRUE(fp.ok());
  if (!fp.ok()) return digest;
  fp->SealSegments();
  digest.e = fp->SealedDigest("e");
  digest.f = fp->SealedDigest("f");
  return digest;
}

size_t CountOf(SessionLease& lease, const std::string& text) {
  auto result = lease.session()->Query(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result->rows.size() : 0;
}

TEST(SnapshotIsolationProperty, EveryReaderSeesExactlyOneGeneration) {
  constexpr int kGenerations = 24;
  constexpr int kReadsPerReader = 30;

  VideoDatabase db;
  SnapshotManager manager(&db, EvalOptions{}, 8);
  ASSERT_TRUE(
      manager.Apply("object seed_a { }. object seed_b { }. "
                    "e(seed_a, seed_b). f(seed_a).")
          .ok());

  // count(e) (== count(f)) -> the digests of that committed generation.
  std::mutex expected_mu;
  std::map<size_t, GenDigest> expected;
  {
    auto lease = manager.AcquireSession();
    ASSERT_TRUE(lease.ok());
    expected[1] = DigestOf(*lease);
  }

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (int g = 0; g < kGenerations; ++g) {
      std::string x = "x" + std::to_string(g);
      std::string y = "y" + std::to_string(g);
      // One Apply = one generation: e and f advance together or not at all.
      ASSERT_TRUE(manager
                      .Apply("object " + x + " { }. object " + y + " { }. " +
                             "e(" + x + ", " + y + "). f(" + x + ").")
                      .ok());
      auto lease = manager.AcquireSession();
      ASSERT_TRUE(lease.ok());
      GenDigest digest = DigestOf(*lease);
      size_t count = CountOf(*lease, "?- e(X, Y).");
      EXPECT_EQ(count, static_cast<size_t>(g) + 2);
      std::lock_guard<std::mutex> lock(expected_mu);
      expected[count] = digest;
    }
    writer_done.store(true);
  });

  struct Observation {
    size_t count;
    GenDigest digest;
  };
  const EvalStrategy strategies[] = {EvalStrategy::kAuto, EvalStrategy::kQsqr,
                                     EvalStrategy::kMagic,
                                     EvalStrategy::kFixpoint};
  std::vector<std::vector<Observation>> observations(std::size(strategies));
  std::vector<std::thread> readers;
  for (size_t r = 0; r < std::size(strategies); ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < kReadsPerReader || !writer_done.load(); ++i) {
        if (i >= kReadsPerReader * 4) break;  // bound the tail
        auto lease = manager.AcquireSession();
        ASSERT_TRUE(lease.ok());
        EvalStrategy saved = lease->session()->mutable_options()->strategy;
        lease->session()->mutable_options()->strategy = strategies[r];

        size_t count_e = CountOf(*lease, "?- e(X, Y).");
        size_t count_f = CountOf(*lease, "?- f(X).");
        // Torn-state detector: both halves of every generation or neither.
        ASSERT_EQ(count_e, count_f) << "torn generation observed";

        // Lease stability: the same lease re-reads the same state even
        // while the writer commits more generations.
        GenDigest d1 = DigestOf(*lease);
        GenDigest d2 = DigestOf(*lease);
        ASSERT_TRUE(d1 == d2) << "digest unstable within one lease";
        ASSERT_EQ(CountOf(*lease, "?- e(X, Y)."), count_e);

        observations[r].push_back({count_e, d1});
        lease->session()->mutable_options()->strategy = saved;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  // Every observation matches the writer's record of that generation.
  size_t checked = 0;
  for (size_t r = 0; r < std::size(strategies); ++r) {
    for (const Observation& obs : observations[r]) {
      auto it = expected.find(obs.count);
      ASSERT_NE(it, expected.end())
          << "reader saw count " << obs.count << " matching no generation";
      EXPECT_TRUE(obs.digest == it->second)
          << "reader state at count " << obs.count
          << " is not byte-equivalent to the committed generation";
      ++checked;
    }
    EXPECT_FALSE(observations[r].empty());
  }
  // The final generation must be observable after the writer finishes.
  auto lease = manager.AcquireSession();
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(CountOf(*lease, "?- e(X, Y)."),
            static_cast<size_t>(kGenerations) + 1);
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace server
}  // namespace vqldb
