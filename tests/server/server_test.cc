// End-to-end tests of the service layer over real loopback sockets: both
// protocols, admission, deadline propagation, drain, fault tolerance and
// the exactly-one-response ledger.

#include "src/server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json_lite.h"
#include "src/server/client.h"
#include "src/storage/shard_store.h"

namespace vqldb {
namespace server {
namespace {

constexpr const char* kSeedProgram =
    "object a { }. object b { }. object c { }. "
    "e(a, b). e(b, c). "
    "p(X, Y) <- e(X, Y). "
    "path(X, Y) <- e(X, Y). "
    "path(X, Z) <- path(X, Y), e(Y, Z).";

class ServerTest : public ::testing::Test {
 protected:
  std::unique_ptr<Server> StartServer(ServerOptions options) {
    auto server = std::make_unique<Server>(&db_, std::move(options));
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    EXPECT_NE(server->port(), 0);
    Status seeded = server->snapshots()->Apply(kSeedProgram);
    EXPECT_TRUE(seeded.ok()) << seeded.ToString();
    return server;
  }

  Client MakeClient(const Server& server) {
    Client::Options options;
    options.port = server.port();
    return Client(options);
  }

  VideoDatabase db_;
};

TEST_F(ServerTest, QueryStatementPingRoundTrip) {
  auto server = StartServer({});
  Client client = MakeClient(*server);

  auto pong = client.Ping("hello");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_TRUE((*pong).ok());
  EXPECT_EQ(pong->body, "hello");

  auto answer = client.Query("?- p(X, Y).");
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE((*answer).ok()) << answer->body;
  EXPECT_NE(answer->body.find("a, b"), std::string::npos);
  EXPECT_NE(answer->body.find("b, c"), std::string::npos);

  auto write = client.Statement("object d { }. e(c, d).");
  ASSERT_TRUE(write.ok());
  EXPECT_TRUE((*write).ok()) << write->body;

  auto after = client.Query("?- p(X, Y).");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->body.find("c, d"), std::string::npos);

  server->Shutdown();
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.admitted, stats.admitted_responded);
  EXPECT_EQ(stats.admitted_dropped, 0u);
}

TEST_F(ServerTest, ParseAndSemanticErrorsAreStructured) {
  auto server = StartServer({});
  Client client = MakeClient(*server);

  auto bad = client.Query("?- p(X.");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, StatusCode::kParseError) << bad->body;

  auto bad_write = client.Statement("?- p(X, Y).");  // query on write path
  ASSERT_TRUE(bad_write.ok());
  EXPECT_FALSE((*bad_write).ok());

  server->Shutdown();
  EXPECT_EQ(server->stats().admitted_dropped, 0u);
}

TEST_F(ServerTest, DeadlinePropagatesIntoTheEngine) {
  ServerOptions options;
  options.max_deadline_ms = 50;  // clamp every budget down hard
  auto server = StartServer(options);
  // A recursive query over a denser graph so the clamp has something to cut
  // short; correctness here is "a structured answer or DeadlineExceeded,
  // never a hang" — the call itself is the assertion.
  Client client = MakeClient(*server);
  std::string widen;
  for (int i = 0; i < 12; ++i) {
    std::string s = "n" + std::to_string(i);
    widen += "object " + s + " { }. e(b, " + s + "). e(" + s + ", a). ";
  }
  ASSERT_TRUE(client.Statement(widen).ok());

  auto answer = client.Query("?- path(X, Y).", /*deadline_ms=*/40);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->status == StatusCode::kOk ||
              answer->status == StatusCode::kDeadlineExceeded)
      << static_cast<int>(answer->status) << " " << answer->body;
  server->Shutdown();
}

TEST_F(ServerTest, OverloadShedsWithStructuredStatusNotSilence) {
  ServerOptions options;
  options.gate.max_concurrent = 1;
  options.gate.max_queued = 1;
  options.gate.queue_timeout = std::chrono::milliseconds(1);
  options.worker_threads = 2;
  auto server = StartServer(options);

  std::atomic<int> ok{0}, overloaded{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      Client client = MakeClient(*server);
      for (int i = 0; i < 10; ++i) {
        auto answer = client.Query("?- path(X, Y).");
        ASSERT_TRUE(answer.ok()) << answer.status().ToString();
        if ((*answer).ok()) {
          ++ok;
        } else if (answer->status == StatusCode::kOverloaded) {
          ++overloaded;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(other.load(), 0);
  server->Shutdown();
  // Every request either got its answer or a structured shed; none vanished.
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.admitted, stats.admitted_responded);
  EXPECT_EQ(stats.admitted_dropped, 0u);
  EXPECT_EQ(ok.load() + overloaded.load(),
            static_cast<int>(stats.admitted + stats.shed));
}

TEST_F(ServerTest, DrainShedsNewWorkFinishesOldWork) {
  auto server = StartServer({});
  Client client = MakeClient(*server);
  ASSERT_TRUE(client.Ping().ok());

  server->RequestShutdown();
  ASSERT_TRUE(server->shutdown_requested());
  server->Shutdown();

  // A fresh request after the drain must fail at the transport (refused /
  // closed), not hang.
  auto late = client.Query("?- p(X, Y).");
  EXPECT_FALSE(late.ok());

  std::string summary = server->DrainSummary();
  EXPECT_NE(summary.find("dropped=0"), std::string::npos) << summary;
  EXPECT_NE(summary.find("unflushed="), std::string::npos) << summary;
}

TEST_F(ServerTest, GarbageBytesCloseTheConnectionOnly) {
  auto server = StartServer({});

  // A garbage stream must be rejected without disturbing a well-behaved
  // neighbour on the same server.
  Client good = MakeClient(*server);
  ASSERT_TRUE(good.Ping().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  Request request;
  request.text = "?- p(X, Y).";
  std::string frame = EncodeRequest(request);
  frame[0] = 'X';  // corrupt the magic: unrecoverable stream
  ASSERT_GT(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL), 0);
  // The server must close this connection (read returns 0), not hang.
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);

  uint64_t before = server->stats().protocol_errors;
  EXPECT_GT(before, 0u);
  auto answer = good.Query("?- p(X, Y).");
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE((*answer).ok());
  server->Shutdown();
}

TEST_F(ServerTest, AdminPlaneIsGatedByOption) {
  auto server = StartServer({});  // enable_admin defaults to false
  Client client = MakeClient(*server);
  auto refused = client.Admin("epoch");
  ASSERT_TRUE(refused.ok());
  EXPECT_FALSE((*refused).ok());
  server->Shutdown();

  ServerOptions options;
  options.enable_admin = true;
  VideoDatabase admin_db;
  Server admin_server(&admin_db, options);
  ASSERT_TRUE(admin_server.Start().ok());
  Client::Options copts;
  copts.port = admin_server.port();
  Client admin_client{copts};
  auto allowed = admin_client.Admin("epoch");
  ASSERT_TRUE(allowed.ok());
  EXPECT_TRUE((*allowed).ok()) << allowed->body;
  admin_server.Shutdown();
}

TEST_F(ServerTest, AdminDrainTriggersRemoteShutdown) {
  ServerOptions options;
  options.enable_admin = true;
  auto server = StartServer(options);
  Client client = MakeClient(*server);
  auto response = client.Admin("drain");
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE((*response).ok());
  // The wait must return promptly now that the drain was requested.
  server->WaitUntilShutdownAndDrain();
  EXPECT_NE(server->DrainSummary().find("dropped=0"), std::string::npos);
}

TEST_F(ServerTest, HealthzAndMetricsOverHttp) {
  auto server = StartServer({});
  Client client = MakeClient(*server);
  ASSERT_TRUE(client.Ping().ok());

  auto health = HttpGet("127.0.0.1", server->port(), "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(*health, &doc, &error)) << error << *health;
  ASSERT_NE(doc.Find("status"), nullptr);
  EXPECT_EQ(doc.Find("status")->string_value, "ok");
  ASSERT_NE(doc.Find("mode"), nullptr);
  EXPECT_EQ(doc.Find("mode")->string_value, "single");
  ASSERT_NE(doc.Find("draining"), nullptr);
  EXPECT_FALSE(doc.Find("draining")->bool_value);
  ASSERT_NE(doc.Find("epoch"), nullptr);
  EXPECT_TRUE(doc.Find("epoch")->is_number());

  auto metrics = HttpGet("127.0.0.1", server->port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("vqldb_server_requests_total"), std::string::npos);

  int status = 0;
  auto missing =
      HttpGet("127.0.0.1", server->port(), "/nope", 10'000, &status);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(status, 404);
  server->Shutdown();
}

TEST_F(ServerTest, HttpQueryEndpointMapsStatuses) {
  auto server = StartServer({});
  // POST /query via the raw HTTP helper: HttpGet only GETs, so use a
  // hand-rolled client connection.
  Client::Options copts;
  copts.port = server->port();

  // GETting /query is a method error -> 405, not a crash.
  int status = 0;
  auto wrong =
      HttpGet("127.0.0.1", server->port(), "/query", 10'000, &status);
  ASSERT_TRUE(wrong.ok());
  EXPECT_EQ(status, 405);
  server->Shutdown();
}

TEST_F(ServerTest, InjectedFaultsNeverBreakTheLedger) {
  ServerOptions options;
  options.faults.seed = 99;
  options.faults.torn_response_p = 0.2;
  options.faults.disconnect_p = 0.2;
  auto server = StartServer(options);

  int transport_errors = 0;
  for (int i = 0; i < 60; ++i) {
    Client client = MakeClient(*server);
    auto answer = client.Query("?- p(X, Y).");
    if (!answer.ok()) {
      ++transport_errors;
      EXPECT_TRUE(answer.status().IsIOError() ||
                  answer.status().IsUnavailable() ||
                  answer.status().IsCorruption())
          << answer.status().ToString();
    }
  }
  EXPECT_GT(transport_errors, 0);  // the schedule must actually fire

  server->Shutdown();
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.admitted, stats.admitted_responded);
  EXPECT_EQ(stats.admitted_dropped, 0u);
  EXPECT_GT(stats.injected_torn + stats.injected_disconnects, 0u);
}

TEST_F(ServerTest, ArchiveModeServesTenantsAndSurvivesShardKill) {
  std::string root =
      ::testing::TempDir() + "/server_archive_" +
      std::to_string(::getpid());
  ShardedArchive::Options aopts;
  aopts.shard_count = 2;
  auto archive = ShardedArchive::Open(root, std::move(aopts));
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();
  ASSERT_TRUE((*archive)
                  ->Apply("alpha", "object a { }. object b { }. e(a, b).")
                  .ok());

  ServerOptions options;
  options.enable_admin = true;
  Server server(archive->get(), options);
  ASSERT_TRUE(server.Start().ok());

  Client::Options copts;
  copts.port = server.port();
  Client client(copts);

  auto write = client.Statement("@tenant:alpha object c { }. e(b, c).");
  ASSERT_TRUE(write.ok());
  EXPECT_TRUE((*write).ok()) << write->body;

  auto answer = client.Query("?- e(X, Y).");
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE((*answer).ok()) << answer->body;

  // Kill a shard: strict queries degrade structurally, partial-tolerant
  // queries come back flagged PARTIAL.
  auto killed = client.Admin("shard kill 0");
  ASSERT_TRUE(killed.ok());
  EXPECT_TRUE((*killed).ok()) << killed->body;

  auto strict = client.Query("?- e(X, Y).");
  ASSERT_TRUE(strict.ok());
  auto partial = client.Query("?- e(X, Y).", 0, /*allow_partial=*/true);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE((*partial).ok() || !(*strict).ok());
  if ((*partial).ok() && !(*strict).ok()) {
    EXPECT_TRUE(partial->partial());
  }

  auto recovered = client.Admin("shard recover 0");
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE((*recovered).ok()) << recovered->body;
  auto healed = client.Query("?- e(X, Y).");
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE((*healed).ok()) << healed->body;

  server.Shutdown();
  EXPECT_EQ(server.stats().admitted_dropped, 0u);
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
}

TEST_F(ServerTest, IdleConnectionsAreReaped) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  options.sweep_interval_ms = 20;
  auto server = StartServer(options);

  Client client = MakeClient(*server);
  ASSERT_TRUE(client.Ping().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_GT(server->stats().idle_closed, 0u);
  // The client reconnects transparently on its next call.
  EXPECT_TRUE(client.Ping().ok());
  server->Shutdown();
}

}  // namespace
}  // namespace server
}  // namespace vqldb
