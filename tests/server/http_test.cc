#include "src/server/http.h"

#include <gtest/gtest.h>

#include <string>

namespace vqldb {
namespace server {
namespace {

TEST(HttpTest, ParsesSimpleGet) {
  std::string raw =
      "GET /healthz HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "\r\n";
  HttpRequest request;
  size_t consumed = 0;
  ASSERT_EQ(ParseHttpRequest(raw, &request, &consumed), HttpParseResult::kOk);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/healthz");
  EXPECT_EQ(request.query, "");
  EXPECT_EQ(request.Header("host"), "localhost");
  EXPECT_TRUE(request.body.empty());
}

TEST(HttpTest, HeaderNamesLowerCasedValuesTrimmed) {
  std::string raw =
      "POST /query HTTP/1.1\r\n"
      "X-Vqldb-Deadline-Ms:   250  \r\n"
      "Content-Length: 4\r\n"
      "\r\n"
      "body";
  HttpRequest request;
  size_t consumed = 0;
  ASSERT_EQ(ParseHttpRequest(raw, &request, &consumed), HttpParseResult::kOk);
  EXPECT_EQ(request.Header("x-vqldb-deadline-ms"), "250");
  EXPECT_EQ(request.body, "body");
}

TEST(HttpTest, SplitsQueryStringAndLooksUpParams) {
  std::string raw = "GET /metrics?dump=/tmp/m.prom&x=1 HTTP/1.1\r\n\r\n";
  HttpRequest request;
  size_t consumed = 0;
  ASSERT_EQ(ParseHttpRequest(raw, &request, &consumed), HttpParseResult::kOk);
  EXPECT_EQ(request.path, "/metrics");
  EXPECT_EQ(request.QueryParam("dump"), "/tmp/m.prom");
  EXPECT_EQ(request.QueryParam("x"), "1");
  EXPECT_EQ(request.QueryParam("missing"), "");
}

TEST(HttpTest, ResumableAcrossArbitrarySplits) {
  std::string raw =
      "POST /query HTTP/1.1\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "?- p(X, Y).";
  for (size_t n = 0; n < raw.size(); ++n) {
    HttpRequest request;
    size_t consumed = 0;
    EXPECT_EQ(ParseHttpRequest(std::string_view(raw).substr(0, n), &request,
                               &consumed),
              HttpParseResult::kNeedMore)
        << "prefix length " << n;
  }
  HttpRequest request;
  size_t consumed = 0;
  ASSERT_EQ(ParseHttpRequest(raw, &request, &consumed), HttpParseResult::kOk);
  EXPECT_EQ(request.body, "?- p(X, Y).");
}

TEST(HttpTest, MalformedRequestLineIsBad) {
  HttpRequest request;
  size_t consumed = 0;
  EXPECT_EQ(ParseHttpRequest("NOT AN HTTP LINE\r\n\r\n", &request, &consumed),
            HttpParseResult::kBad);
}

TEST(HttpTest, OversizedHeaderBlockIsBadNotUnbounded) {
  std::string raw = "GET / HTTP/1.1\r\nX-Pad: ";
  raw.append(kMaxHttpHeaderBytes, 'a');  // never terminates the header block
  HttpRequest request;
  size_t consumed = 0;
  EXPECT_EQ(ParseHttpRequest(raw, &request, &consumed), HttpParseResult::kBad);
}

TEST(HttpTest, OversizedBodyIsBad) {
  std::string raw = "POST /query HTTP/1.1\r\nContent-Length: " +
                    std::to_string(kMaxHttpBodyBytes + 1) + "\r\n\r\n";
  HttpRequest request;
  size_t consumed = 0;
  EXPECT_EQ(ParseHttpRequest(raw, &request, &consumed), HttpParseResult::kBad);
}

TEST(HttpTest, LooksLikeHttpDetectsMethodsNotFrames) {
  EXPECT_TRUE(LooksLikeHttp("GET / HTTP/1.1"));
  EXPECT_TRUE(LooksLikeHttp("POST /query"));
  EXPECT_TRUE(LooksLikeHttp("GE"));  // undecided prefix stays HTTP-possible
  EXPECT_FALSE(LooksLikeHttp("VQL1\x08\x00\x00\x00"));
  EXPECT_FALSE(LooksLikeHttp("randombytes"));
}

TEST(HttpTest, BuildResponseHasLengthAndClose) {
  std::string response = BuildHttpResponse(200, "application/json", "{}",
                                           "X-Vqldb-Status: OK\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(response.find("X-Vqldb-Status: OK\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 2), "{}");
}

TEST(HttpTest, QueryStatusMapsToDistinctHttpCodes) {
  EXPECT_EQ(HttpStatusForQueryStatus(Status::OK()), 200);
  EXPECT_EQ(HttpStatusForQueryStatus(Status::ParseError("x")), 400);
  EXPECT_EQ(HttpStatusForQueryStatus(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(HttpStatusForQueryStatus(Status::Overloaded("x")), 429);
  EXPECT_EQ(HttpStatusForQueryStatus(Status::Unavailable("x")), 503);
  EXPECT_EQ(HttpStatusForQueryStatus(Status::DeadlineExceeded("x")), 504);
  EXPECT_EQ(HttpStatusForQueryStatus(Status::Internal("x")), 500);
}

}  // namespace
}  // namespace server
}  // namespace vqldb
