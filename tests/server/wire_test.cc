#include "src/server/wire.h"

#include <gtest/gtest.h>

#include <string>

namespace vqldb {
namespace server {
namespace {

TEST(WireTest, RequestRoundTrip) {
  Request request;
  request.type = MsgType::kQuery;
  request.flags = kFlagPartial;
  request.deadline_ms = 1234;
  request.text = "?- p(X, Y).";

  std::string frame = EncodeRequest(request);
  std::string payload;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(frame, 0, &payload, &consumed), DecodeResult::kOk);
  EXPECT_EQ(consumed, frame.size());

  Request decoded;
  ASSERT_TRUE(ParseRequest(payload, &decoded).ok());
  EXPECT_EQ(decoded.type, MsgType::kQuery);
  EXPECT_TRUE(decoded.allow_partial());
  EXPECT_EQ(decoded.deadline_ms, 1234u);
  EXPECT_EQ(decoded.text, "?- p(X, Y).");
}

TEST(WireTest, ResponseRoundTrip) {
  Response response;
  response.status = StatusCode::kDeadlineExceeded;
  response.flags = kFlagPartial;
  response.body = "ran out of budget";

  std::string frame = EncodeResponse(response);
  std::string payload;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(frame, 0, &payload, &consumed), DecodeResult::kOk);

  Response decoded;
  ASSERT_TRUE(ParseResponse(payload, &decoded).ok());
  EXPECT_EQ(decoded.status, StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.partial());
  EXPECT_EQ(decoded.body, "ran out of budget");
}

TEST(WireTest, DecodeIsResumableBytewise) {
  Request request;
  request.type = MsgType::kStatement;
  request.text = "e(a, b).";
  std::string frame = EncodeRequest(request);

  // Feeding any strict prefix must report kNeedMore, never kBad: a torn
  // frame mid-read is normal TCP behaviour, not corruption.
  std::string payload;
  size_t consumed = 0;
  for (size_t n = 0; n < frame.size(); ++n) {
    EXPECT_EQ(DecodeFrame(std::string_view(frame).substr(0, n), 0, &payload,
                          &consumed),
              DecodeResult::kNeedMore)
        << "prefix length " << n;
  }
  EXPECT_EQ(DecodeFrame(frame, 0, &payload, &consumed), DecodeResult::kOk);
}

TEST(WireTest, DecodeAtOffsetHandlesPipelinedFrames) {
  Request first, second;
  first.type = MsgType::kPing;
  first.text = "one";
  second.type = MsgType::kPing;
  second.text = "two";
  std::string buffer = EncodeRequest(first) + EncodeRequest(second);

  std::string payload;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(buffer, 0, &payload, &consumed), DecodeResult::kOk);
  Request a;
  ASSERT_TRUE(ParseRequest(payload, &a).ok());
  EXPECT_EQ(a.text, "one");

  size_t offset = consumed;
  ASSERT_EQ(DecodeFrame(buffer, offset, &payload, &consumed),
            DecodeResult::kOk);
  Request b;
  ASSERT_TRUE(ParseRequest(payload, &b).ok());
  EXPECT_EQ(b.text, "two");
  EXPECT_EQ(offset + consumed, buffer.size());
}

TEST(WireTest, BadMagicIsUnrecoverable) {
  std::string garbage = "GET / HTTP/1.1\r\n";
  std::string payload;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(garbage, 0, &payload, &consumed), DecodeResult::kBad);
}

TEST(WireTest, OversizedLengthIsBadNotAnAllocation) {
  std::string frame;
  frame.push_back('V');
  frame.push_back('Q');
  frame.push_back('L');
  frame.push_back('1');
  uint32_t huge = static_cast<uint32_t>(kMaxPayloadBytes) + 1;
  frame.append(reinterpret_cast<const char*>(&huge), 4);
  std::string payload;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(frame, 0, &payload, &consumed), DecodeResult::kBad);
}

TEST(WireTest, TruncatedHeaderIsInvalid) {
  Request request;
  EXPECT_FALSE(ParseRequest("abc", &request).ok());
  Response response;
  EXPECT_FALSE(ParseResponse("x", &response).ok());
}

TEST(WireTest, StatusCodesAreStableOnTheWire) {
  // These values are the protocol; changing them breaks deployed clients.
  EXPECT_EQ(WireCodeOf(StatusCode::kOk), 0);
  EXPECT_EQ(WireCodeOf(StatusCode::kParseError), 6);
  EXPECT_EQ(WireCodeOf(StatusCode::kDeadlineExceeded), 13);
  EXPECT_EQ(WireCodeOf(StatusCode::kCancelled), 14);
  EXPECT_EQ(WireCodeOf(StatusCode::kOverloaded), 15);
  EXPECT_EQ(WireCodeOf(StatusCode::kUnavailable), 16);

  for (uint8_t code : {0, 6, 13, 14, 15, 16}) {
    EXPECT_EQ(WireCodeOf(StatusCodeFromWire(code)), code);
  }
}

TEST(WireTest, UnknownWireByteNeverDecodesToSuccess) {
  EXPECT_EQ(StatusCodeFromWire(250), StatusCode::kInternal);
}

TEST(WireTest, StatusFromResponseCarriesMessage) {
  Response response;
  response.status = StatusCode::kOverloaded;
  response.body = "queue full";
  Status status = StatusFromResponse(response);
  EXPECT_TRUE(status.IsOverloaded());
  EXPECT_NE(status.ToString().find("queue full"), std::string::npos);

  response.status = StatusCode::kOk;
  EXPECT_TRUE(StatusFromResponse(response).ok());
}

TEST(WireTest, ExitCodesDistinguishShedsFromBugs) {
  EXPECT_EQ(ExitCodeForStatus(Status::OK()), 0);
  EXPECT_EQ(ExitCodeForStatus(Status::ParseError("x")), 2);
  EXPECT_EQ(ExitCodeForStatus(Status::Overloaded("x")), 3);
  EXPECT_EQ(ExitCodeForStatus(Status::DeadlineExceeded("x")), 4);
  EXPECT_EQ(ExitCodeForStatus(Status::Unavailable("x")), 5);
  EXPECT_EQ(ExitCodeForStatus(Status::Internal("x")), 1);
  EXPECT_EQ(ExitCodeForStatus(Status::IOError("x")), 1);
}

}  // namespace
}  // namespace server
}  // namespace vqldb
