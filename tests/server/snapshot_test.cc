#include "src/server/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/engine/query.h"
#include "src/model/database.h"

namespace vqldb {
namespace server {
namespace {

size_t RowCount(SessionLease& lease, const std::string& text) {
  auto result = lease.session()->Query(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result->rows.size() : 0;
}

TEST(SnapshotManagerTest, ApplyAdvancesEpochAndCurrentRebuilds) {
  VideoDatabase db;
  SnapshotManager manager(&db, EvalOptions{}, 2);

  ASSERT_TRUE(manager.Apply("object a { }. object b { }. e(a, b).").ok());
  auto first = manager.Current();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(manager.snapshots_built(), 1u);

  // No change: Current() must serve the cached snapshot, not rebuild.
  auto again = manager.Current();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first->get(), again->get());
  EXPECT_EQ(manager.snapshots_built(), 1u);

  ASSERT_TRUE(manager.Apply("object c { }. e(b, c).").ok());
  auto second = manager.Current();
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->get(), second->get());
  EXPECT_EQ(manager.snapshots_built(), 2u);
  EXPECT_GT((*second)->db_epoch(), (*first)->db_epoch());
}

TEST(SnapshotManagerTest, RejectsQueriesOnTheWritePath) {
  VideoDatabase db;
  SnapshotManager manager(&db, EvalOptions{}, 1);
  EXPECT_FALSE(manager.Apply("?- p(X).").ok());
  EXPECT_FALSE(manager.Apply("explain ?- p(X).").ok());
  EXPECT_FALSE(manager.Apply("  explain analyze ?- p(X).").ok());
}

TEST(SnapshotManagerTest, RuleChangesRebuildWithoutDbEpochChange) {
  VideoDatabase db;
  SnapshotManager manager(&db, EvalOptions{}, 1);
  ASSERT_TRUE(manager.Apply("object a { }. object b { }. e(a, b).").ok());
  uint64_t built_before = 0;
  {
    auto lease = manager.AcquireSession();
    ASSERT_TRUE(lease.ok());
    EXPECT_EQ(RowCount(*lease, "?- p(X, Y)."), 0u);
    built_before = manager.snapshots_built();
  }
  ASSERT_TRUE(manager.Apply("p(X, Y) <- e(X, Y).").ok());
  auto lease = manager.AcquireSession();
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(RowCount(*lease, "?- p(X, Y)."), 1u);
  EXPECT_GT(manager.snapshots_built(), built_before);
}

TEST(SnapshotManagerTest, InFlightLeaseIsIsolatedFromLaterWrites) {
  VideoDatabase db;
  SnapshotManager manager(&db, EvalOptions{}, 2);
  ASSERT_TRUE(manager.Apply("object a { }. object b { }. e(a, b).").ok());

  auto lease = manager.AcquireSession();
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(RowCount(*lease, "?- e(X, Y)."), 1u);

  // A write after the lease was taken must be invisible to it...
  ASSERT_TRUE(manager.Apply("object c { }. e(b, c). e(a, c).").ok());
  EXPECT_EQ(RowCount(*lease, "?- e(X, Y)."), 1u);
  EXPECT_LT(lease->db_epoch(), manager.live_epoch());

  // ...while a fresh lease sees the new generation.
  auto fresh = manager.AcquireSession();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(RowCount(*fresh, "?- e(X, Y)."), 3u);
}

TEST(SnapshotManagerTest, LeasesAreExclusiveAndRecycled) {
  VideoDatabase db;
  SnapshotManager manager(&db, EvalOptions{}, 2);
  ASSERT_TRUE(manager.Apply("object a { }. object b { }. e(a, b).").ok());

  auto snapshot = manager.Current();
  ASSERT_TRUE(snapshot.ok());
  {
    auto one = (*snapshot)->Acquire();
    auto two = (*snapshot)->Acquire();
    ASSERT_TRUE(one.ok());
    ASSERT_TRUE(two.ok());
    EXPECT_NE(one->session(), two->session());
    EXPECT_EQ((*snapshot)->sessions_built(), 2u);
  }
  // Pool exhausted (2 sessions max) -> returned leases are reused, not
  // rebuilt.
  auto three = (*snapshot)->Acquire();
  ASSERT_TRUE(three.ok());
  EXPECT_EQ((*snapshot)->sessions_built(), 2u);
}

TEST(SnapshotManagerTest, BoundedPoolBlocksUntilReturnNotForever) {
  VideoDatabase db;
  SnapshotManager manager(&db, EvalOptions{}, 1);
  ASSERT_TRUE(manager.Apply("object a { }. object b { }. e(a, b).").ok());

  auto held = manager.AcquireSession();
  ASSERT_TRUE(held.ok());

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    *held = SessionLease();  // return the lease
  });
  auto next = manager.AcquireSession();  // must block, then succeed
  releaser.join();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(RowCount(*next, "?- e(X, Y)."), 1u);
}

TEST(SnapshotManagerTest, ConcurrentAcquireBuildsAtMostPoolSize) {
  VideoDatabase db;
  SnapshotManager manager(&db, EvalOptions{}, 4);
  ASSERT_TRUE(manager.Apply("object a { }. object b { }. e(a, b).").ok());

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        auto lease = manager.AcquireSession();
        ASSERT_TRUE(lease.ok());
        EXPECT_EQ(RowCount(*lease, "?- e(X, Y)."), 1u);
      }
    });
  }
  for (auto& t : threads) t.join();

  auto snapshot = manager.Current();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_LE((*snapshot)->sessions_built(), 4u);
  EXPECT_EQ(manager.snapshots_built(), 1u);
}

}  // namespace
}  // namespace server
}  // namespace vqldb
