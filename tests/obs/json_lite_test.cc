// Unicode handling in the minimal JSON reader: \uXXXX escapes must decode
// surrogate pairs to supplementary-plane UTF-8 and reject lone surrogates.

#include "src/obs/json_lite.h"

#include <gtest/gtest.h>

#include <string>

namespace vqldb {
namespace obs {
namespace {

JsonValue MustParse(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &v, &error)) << error;
  return v;
}

std::string ParseError(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson(text, &v, &error)) << "expected parse failure";
  return error;
}

TEST(JsonLiteUnicodeTest, BmpEscapesDecodeToUtf8) {
  JsonValue v = MustParse("\"\\u0041\\u00e9\\u20ac\"");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.string_value, "A\xc3\xa9\xe2\x82\xac");  // A é €
}

TEST(JsonLiteUnicodeTest, SurrogatePairDecodesToFourByteUtf8) {
  // U+1F600 GRINNING FACE as the pair \uD83D\uDE00.
  JsonValue v = MustParse("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.string_value, "\xf0\x9f\x98\x80");
}

TEST(JsonLiteUnicodeTest, UppercaseHexSurrogatePair) {
  // U+10348 GOTHIC LETTER HWAIR.
  JsonValue v = MustParse("\"\\uD800\\uDF48\"");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.string_value, "\xf0\x90\x8d\x88");
}

TEST(JsonLiteUnicodeTest, MaxCodePointRoundTrips) {
  // U+10FFFF = \uDBFF\uDFFF.
  JsonValue v = MustParse("\"\\udbff\\udfff\"");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.string_value, "\xf4\x8f\xbf\xbf");
}

TEST(JsonLiteUnicodeTest, LoneHighSurrogateRejected) {
  std::string err = ParseError("\"\\ud83d\"");
  EXPECT_NE(err.find("unpaired high surrogate"), std::string::npos) << err;
}

TEST(JsonLiteUnicodeTest, HighSurrogateFollowedByNonEscapeRejected) {
  std::string err = ParseError("\"\\ud83dx\"");
  EXPECT_NE(err.find("unpaired high surrogate"), std::string::npos) << err;
}

TEST(JsonLiteUnicodeTest, HighSurrogateFollowedByBmpEscapeRejected) {
  std::string err = ParseError("\"\\ud83d\\u0041\"");
  EXPECT_NE(err.find("unpaired high surrogate"), std::string::npos) << err;
}

TEST(JsonLiteUnicodeTest, LoneLowSurrogateRejected) {
  std::string err = ParseError("\"\\ude00\"");
  EXPECT_NE(err.find("unpaired low surrogate"), std::string::npos) << err;
}

TEST(JsonLiteUnicodeTest, TruncatedSecondEscapeRejected) {
  std::string err = ParseError("\"\\ud83d\\ud\"");
  EXPECT_FALSE(err.empty());
}

TEST(JsonLiteUnicodeTest, EscapedAndRawNonBmpAgree) {
  // A raw 4-byte UTF-8 emoji passes through untouched and equals the
  // decoded escape form.
  JsonValue raw = MustParse("\"\xf0\x9f\x98\x80\"");
  JsonValue escaped = MustParse("\"\\ud83d\\ude00\"");
  EXPECT_EQ(raw.string_value, escaped.string_value);
}

TEST(JsonLiteUnicodeTest, JsonEscapeRoundTripsNonBmp) {
  // JsonEscape passes bytes >= 0x20 through raw, so non-BMP UTF-8 embedded
  // in a document round-trips byte-identically.
  std::string original = "plan \xf0\x9f\x98\x80 cost \xf0\x90\x8d\x88";
  std::string doc = "{\"k\":\"" + JsonEscape(original) + "\"}";
  JsonValue v = MustParse(doc);
  const JsonValue* k = v.Find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->string_value, original);
}

TEST(JsonLiteUnicodeTest, SurrogatePairInsideObjectKey) {
  JsonValue v = MustParse("{\"\\ud83d\\ude00\":1}");
  const JsonValue* k = v.Find("\xf0\x9f\x98\x80");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->number_value, 1.0);
}

}  // namespace
}  // namespace obs
}  // namespace vqldb
