// Tracer / TraceSpan: span recording across threads, the Chrome trace_event
// JSON schema of the rendered output, Clear() safety for thread-cached
// buffers, and the disabled-by-default cost contract.

#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json_lite.h"

namespace vqldb {
namespace obs {
namespace {

// Serializes tests that toggle the process-wide tracing flag and restores
// the off state afterwards (tests in this binary run sequentially).
class TracingGuard {
 public:
  TracingGuard() {
    Tracer::Global().Clear();
    SetTracingEnabled(true);
  }
  ~TracingGuard() {
    SetTracingEnabled(false);
    Tracer::Global().Clear();
  }
};

TEST(TraceTest, DisabledByDefaultRecordsNothing) {
  SetTracingEnabled(false);
  Tracer::Global().Clear();
  { TraceSpan span("noop"); }
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
  // An empty trace still renders as a valid (empty) Chrome trace array.
  std::string error;
  EXPECT_TRUE(ValidateChromeTrace(Tracer::Global().RenderJson(), &error))
      << error;
}

TEST(TraceTest, SpanRecordsOneCompleteEvent) {
  TracingGuard guard;
  { TraceSpan span("unit-test-span", "detail text"); }
  EXPECT_EQ(Tracer::Global().event_count(), 1u);

  std::string json = Tracer::Global().RenderJson();
  std::string error;
  ASSERT_TRUE(ValidateChromeTrace(json, &error)) << error;

  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  ASSERT_EQ(doc.array.size(), 1u);
  const JsonValue& event = doc.array[0];
  EXPECT_EQ(event.Find("ph")->string_value, "X");
  EXPECT_EQ(event.Find("name")->string_value, "unit-test-span");
  EXPECT_GE(event.Find("dur")->number_value, 0.0);
  EXPECT_GE(event.Find("ts")->number_value, 0.0);
}

TEST(TraceTest, SpansFromMultipleThreadsAllRecorded) {
  TracingGuard guard;
  constexpr size_t kThreads = 4;
  constexpr size_t kSpansPerThread = 16;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (size_t i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("worker-span");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(Tracer::Global().event_count(), kThreads * kSpansPerThread);

  std::string json = Tracer::Global().RenderJson();
  std::string error;
  ASSERT_TRUE(ValidateChromeTrace(json, &error)) << error;
}

TEST(TraceTest, ClearKeepsThreadBuffersUsable) {
  TracingGuard guard;
  { TraceSpan span("before-clear"); }
  EXPECT_EQ(Tracer::Global().event_count(), 1u);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
  // The thread-local cached buffer pointer must still be valid.
  { TraceSpan span("after-clear"); }
  EXPECT_EQ(Tracer::Global().event_count(), 1u);
}

TEST(TraceTest, WriteFileProducesValidTrace) {
  TracingGuard guard;
  { TraceSpan span("file-span"); }
  std::string path = testing::TempDir() + "/vqldb_trace_test.json";
  std::string error;
  ASSERT_TRUE(Tracer::Global().WriteFile(path, &error)) << error;

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  EXPECT_TRUE(ValidateChromeTrace(text, &error)) << error;
  std::remove(path.c_str());
}

TEST(ValidateChromeTraceTest, AcceptsEmptyArrayRejectsBadShapes) {
  std::string error;
  EXPECT_TRUE(ValidateChromeTrace("[]", &error)) << error;
  EXPECT_FALSE(ValidateChromeTrace("not json", &error));
  EXPECT_FALSE(ValidateChromeTrace("{}", &error));
  // Wrong phase.
  EXPECT_FALSE(ValidateChromeTrace(
      "[{\"ph\": \"B\", \"name\": \"x\", \"ts\": 0, \"dur\": 0, "
      "\"pid\": 1, \"tid\": 1}]",
      &error));
  // Negative duration.
  EXPECT_FALSE(ValidateChromeTrace(
      "[{\"ph\": \"X\", \"name\": \"x\", \"ts\": 0, \"dur\": -1, "
      "\"pid\": 1, \"tid\": 1}]",
      &error));
  // Missing name.
  EXPECT_FALSE(ValidateChromeTrace(
      "[{\"ph\": \"X\", \"ts\": 0, \"dur\": 0, \"pid\": 1, \"tid\": 1}]",
      &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace obs
}  // namespace vqldb
