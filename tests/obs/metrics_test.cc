// MetricsRegistry: exact sums under concurrent hammering, golden renderings
// (Prometheus exposition and JSON snapshot), the enabled-flag gating
// contract, and the JSON schema validator.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace vqldb {
namespace obs {
namespace {

// Restores the process-wide enabled flag around tests that flip it.
class MetricsFlagGuard {
 public:
  MetricsFlagGuard() : saved_(MetricsEnabled()) {}
  ~MetricsFlagGuard() { SetMetricsEnabled(saved_); }

 private:
  bool saved_;
};

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentHammeringSumsExactly) {
  constexpr size_t kThreads = 8;
  constexpr size_t kIncrements = 100000;
  Counter c;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (size_t i = 0; i < kIncrements; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kIncrements);
}

TEST(CounterTest, DisabledFlagSuppressesIncrementButNotIncrementAlways) {
  MetricsFlagGuard guard;
  Counter c;
  SetMetricsEnabled(false);
  c.Increment(5);
  EXPECT_EQ(c.value(), 0u);
  c.IncrementAlways(5);
  EXPECT_EQ(c.value(), 5u);
  SetMetricsEnabled(true);
  c.Increment(5);
  EXPECT_EQ(c.value(), 10u);
}

TEST(GaugeTest, SetAddAndUnaffectedByDisabledFlag) {
  MetricsFlagGuard guard;
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  // Gauges track live state; the flag must not make paired +1/-1 drift.
  SetMetricsEnabled(false);
  g.Add(1);
  g.Add(-1);
  EXPECT_EQ(g.value(), 7);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);   // <= 1
  h.Observe(1.0);   // <= 1 (inclusive upper bound)
  h.Observe(5.0);   // <= 10
  h.Observe(1000);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, ConcurrentHammeringSumsExactly) {
  constexpr size_t kThreads = 8;
  constexpr size_t kObservations = 50000;
  Histogram h({1.0, 10.0});
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      // 1.0 sums exactly in a double up to 2^53 observations.
      for (size_t i = 0; i < kObservations; ++i) h.Observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kObservations);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kObservations));
  EXPECT_EQ(h.bucket_count(0), kThreads * kObservations);
}

TEST(RegistryTest, GetReturnsStableInstancesAndKeepsFirstHelp) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("c_total", "first help");
  Counter* b = registry.GetCounter("c_total", "second help");
  EXPECT_EQ(a, b);
  a->Increment(7);
  EXPECT_EQ(b->value(), 7u);
  std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("# HELP c_total first help"), std::string::npos);
  EXPECT_EQ(prom.find("second help"), std::string::npos);
}

// Fills a registry with one counter, one gauge and one histogram in a known
// state, shared by the two golden tests below.
void FillGoldenRegistry(MetricsRegistry* registry) {
  registry->GetCounter("c_total", "A counter")->Increment(3);
  registry->GetGauge("g")->Set(-2);
  Histogram* h = registry->GetHistogram("h_ms", "Latency", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(100.0);
}

TEST(RegistryTest, PrometheusGolden) {
  MetricsRegistry registry;
  FillGoldenRegistry(&registry);
  EXPECT_EQ(registry.RenderPrometheus(),
            "# HELP c_total A counter\n"
            "# TYPE c_total counter\n"
            "c_total 3\n"
            "# TYPE g gauge\n"
            "g -2\n"
            "# HELP h_ms Latency\n"
            "# TYPE h_ms histogram\n"
            "h_ms_bucket{le=\"1\"} 1\n"
            "h_ms_bucket{le=\"10\"} 2\n"
            "h_ms_bucket{le=\"+Inf\"} 3\n"
            "h_ms_sum 105.5\n"
            "h_ms_count 3\n");
}

TEST(RegistryTest, JsonGoldenAndSchemaValid) {
  MetricsRegistry registry;
  FillGoldenRegistry(&registry);
  std::string json = registry.RenderJson();
  EXPECT_EQ(json,
            "{\n"
            "  \"counters\": {\n"
            "    \"c_total\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"g\": -2\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"h_ms\": {\"count\": 3, \"sum\": 105.5, \"buckets\": "
            "[{\"le\": 1, \"count\": 1}, {\"le\": 10, \"count\": 2}, "
            "{\"le\": \"+Inf\", \"count\": 3}]}\n"
            "  }\n"
            "}\n");
  std::string error;
  EXPECT_TRUE(ValidateMetricsJson(json, &error)) << error;
}

TEST(RegistryTest, EmptyRegistryJsonIsValid) {
  MetricsRegistry registry;
  std::string error;
  EXPECT_TRUE(ValidateMetricsJson(registry.RenderJson(), &error)) << error;
}

TEST(RegistryTest, ResetAllZeroesInPlace) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c_total");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h_ms", "", {1.0});
  c->Increment(5);
  g->Set(5);
  h->Observe(5);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);  // same pointers, zeroed in place
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(registry.RenderCompact(), "");
}

TEST(RegistryTest, RenderCompactShowsOnlyNonZero) {
  MetricsRegistry registry;
  registry.GetCounter("zero_total");
  registry.GetCounter("live_total")->Increment(2);
  std::string compact = registry.RenderCompact();
  EXPECT_NE(compact.find("live_total 2"), std::string::npos);
  EXPECT_EQ(compact.find("zero_total"), std::string::npos);
}

TEST(ValidateMetricsJsonTest, RejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(ValidateMetricsJson("not json", &error));
  EXPECT_FALSE(ValidateMetricsJson("[]", &error));
  EXPECT_FALSE(ValidateMetricsJson("{\"counters\": {}}", &error));
  EXPECT_FALSE(ValidateMetricsJson(
      "{\"counters\": {\"c\": -1}, \"gauges\": {}, \"histograms\": {}}",
      &error));
  // Non-cumulative histogram buckets.
  EXPECT_FALSE(ValidateMetricsJson(
      "{\"counters\": {}, \"gauges\": {}, \"histograms\": {\"h\": "
      "{\"count\": 2, \"sum\": 1, \"buckets\": [{\"le\": 1, \"count\": 2}, "
      "{\"le\": \"+Inf\", \"count\": 1}]}}}",
      &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace obs
}  // namespace vqldb
