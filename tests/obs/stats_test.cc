// Seeded property tests for the statistics collector: HyperLogLog accuracy
// against ground truth, selectivity EWMA arithmetic, exact latency
// quantiles, slow-ring retention, the JSON schema round trip, and snapshot
// consistency under concurrent recording.

#include "src/obs/stats.h"

#include <algorithm>

#include "src/obs/json_lite.h"
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace vqldb {
namespace obs {
namespace {

TEST(HllTest, TenThousandDistinctWithinFivePercent) {
  Hll sketch;
  const uint64_t kDistinct = 10000;
  for (uint64_t i = 0; i < kDistinct; ++i) sketch.AddHash(MixHash(i));
  const double estimate = sketch.Estimate();
  EXPECT_GE(estimate, 0.95 * kDistinct);
  EXPECT_LE(estimate, 1.05 * kDistinct);
}

TEST(HllTest, AccurateAcrossMagnitudes) {
  for (uint64_t distinct : {1ull, 10ull, 100ull, 1000ull, 50000ull}) {
    Hll sketch;
    // Offset the domain per round so the hashes differ across rounds.
    for (uint64_t i = 0; i < distinct; ++i) {
      sketch.AddHash(MixHash(i + distinct * 1000));
    }
    const double estimate = sketch.Estimate();
    const double tolerance = distinct <= 100 ? 0.01 : 0.05;
    EXPECT_GE(estimate, (1.0 - tolerance) * static_cast<double>(distinct))
        << "distinct=" << distinct;
    EXPECT_LE(estimate, (1.0 + tolerance) * static_cast<double>(distinct))
        << "distinct=" << distinct;
  }
}

TEST(HllTest, IdempotentUnderReinsertion) {
  Hll sketch;
  for (uint64_t i = 0; i < 5000; ++i) sketch.AddHash(MixHash(i));
  const double first = sketch.Estimate();
  // Re-deriving every row (as a later fixpoint does) must not move the
  // estimate at all.
  for (int round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < 5000; ++i) sketch.AddHash(MixHash(i));
  }
  EXPECT_EQ(sketch.Estimate(), first);
}

TEST(HllTest, ResetEmpties) {
  Hll sketch;
  sketch.AddHash(MixHash(7));
  EXPECT_FALSE(sketch.Empty());
  sketch.Reset();
  EXPECT_TRUE(sketch.Empty());
  EXPECT_EQ(sketch.Estimate(), 0);
}

TEST(AdornmentTest, RendersBoundAndFreePositions) {
  EXPECT_EQ(AdornmentString(0, 3), "fff");
  EXPECT_EQ(AdornmentString(0b101, 3), "bfb");
  EXPECT_EQ(AdornmentString(0b11, 2), "bb");
  EXPECT_EQ(AdornmentString(0, 0), "");
}

TEST(StatsCollectorTest, RecordRowFeedsPerColumnSketches) {
  StatsCollector collector;
  const uint64_t kDistinct = 10000;
  uint32_t ids[2];
  for (uint64_t i = 0; i < kDistinct; ++i) {
    ids[0] = static_cast<uint32_t>(i);    // high-cardinality column
    ids[1] = static_cast<uint32_t>(i % 7);  // low-cardinality column
    collector.RecordRow("edge", ids, 2);
  }
  StatsSnapshot snap = collector.Snapshot();
  ASSERT_EQ(snap.columns.size(), 2u);
  EXPECT_EQ(snap.columns[0].predicate, "edge");
  EXPECT_EQ(snap.columns[0].column, 0u);
  EXPECT_GE(snap.columns[0].distinct_estimate, 0.95 * kDistinct);
  EXPECT_LE(snap.columns[0].distinct_estimate, 1.05 * kDistinct);
  EXPECT_NEAR(snap.columns[1].distinct_estimate, 7.0, 0.5);
}

TEST(StatsCollectorTest, InternalPredicatesAreInvisible) {
  StatsCollector collector;
  uint32_t ids[1] = {42};
  collector.RecordRow("sys_relations", ids, 1);
  collector.RecordRow("m#path#bf", ids, 1);
  collector.RecordProbes("sys_relations", "bf", 10, 5, 100);
  EXPECT_TRUE(collector.Snapshot().columns.empty());
  EXPECT_TRUE(collector.Snapshot().selectivity.empty());
}

TEST(StatsCollectorTest, SelectivityEwmaMatchesGroundTruth) {
  StatsCollector collector;
  // Batch 1 seeds the EWMA: 100 probes, 50 candidates, 1000-row relation
  // => (50/100)/1000 = 5e-4.
  collector.RecordProbes("edge", "bf", 100, 50, 1000);
  // Batch 2 folds in: (200/100)/1000 = 2e-3.
  collector.RecordProbes("edge", "bf", 100, 200, 1000);
  StatsSnapshot snap = collector.Snapshot();
  ASSERT_EQ(snap.selectivity.size(), 1u);
  const SelectivityView& s = snap.selectivity[0];
  EXPECT_EQ(s.predicate, "edge");
  EXPECT_EQ(s.adornment, "bf");
  EXPECT_EQ(s.probes, 200u);
  EXPECT_EQ(s.candidates, 250u);
  const double expected =
      5e-4 + StatsCollector::kEwmaAlpha * (2e-3 - 5e-4);
  EXPECT_NEAR(s.ewma, expected, 1e-12);
}

QueryRecord MakeRecord(const std::string& fingerprint, uint64_t total_us,
                       const std::string& status = "ok") {
  QueryRecord r;
  r.fingerprint = fingerprint;
  r.status = status;
  r.access_path = "fixpoint";
  r.eval_us = total_us;
  r.total_us = total_us;
  r.rows = status == "ok" ? 3 : 0;
  return r;
}

TEST(StatsCollectorTest, ExactQuantilesMatchNthElement) {
  StatsCollector collector;
  collector.set_slow_threshold_us(1u << 30);  // keep the slow ring empty
  std::vector<uint64_t> latencies;
  // A deterministic non-monotone latency series.
  uint64_t x = 12345;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    latencies.push_back(x % 100000);
    collector.RecordQuery(MakeRecord("q($0)", latencies.back()));
  }
  std::vector<uint64_t> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  StatsSnapshot snap = collector.Snapshot();
  ASSERT_EQ(snap.queries.size(), 1u);
  EXPECT_EQ(snap.queries[0].count, n);
  EXPECT_EQ(snap.queries[0].p50_us, sorted[(n - 1) / 2]);
  EXPECT_EQ(snap.queries[0].p99_us, sorted[((n - 1) * 99) / 100]);
  EXPECT_LE(snap.queries[0].p50_us, snap.queries[0].p99_us);
}

TEST(StatsCollectorTest, SlowRingKeepsNewestAtCapacity) {
  StatsCollector collector;
  collector.set_slow_threshold_us(0);  // every query is "slow"
  collector.set_slow_capacity(4);
  for (int i = 0; i < 10; ++i) {
    collector.RecordQuery(MakeRecord("q($0)", 100 + i));
  }
  StatsSnapshot snap = collector.Snapshot();
  ASSERT_EQ(snap.slow.size(), 4u);
  EXPECT_EQ(snap.slow.front().seq, 7u);  // oldest retained
  EXPECT_EQ(snap.slow.back().seq, 10u);  // newest
  EXPECT_EQ(snap.total_queries, 10u);

  collector.ResetSlowLog();
  snap = collector.Snapshot();
  EXPECT_TRUE(snap.slow.empty());
  // The aggregates survive a slow-log reset...
  EXPECT_EQ(snap.total_queries, 10u);
  ASSERT_EQ(snap.queries.size(), 1u);
  // ...but not a full reset.
  collector.Reset();
  snap = collector.Snapshot();
  EXPECT_EQ(snap.total_queries, 0u);
  EXPECT_TRUE(snap.queries.empty());
  EXPECT_TRUE(snap.columns.empty());
  EXPECT_TRUE(snap.selectivity.empty());
}

TEST(StatsCollectorTest, FailedQueriesAlwaysEnterTheRing) {
  StatsCollector collector;
  collector.set_slow_threshold_us(1u << 30);
  collector.RecordQuery(MakeRecord("fast($0)", 5));
  collector.RecordQuery(MakeRecord("bad($0)", 5, "deadline_exceeded"));
  StatsSnapshot snap = collector.Snapshot();
  ASSERT_EQ(snap.slow.size(), 1u);
  EXPECT_EQ(snap.slow[0].fingerprint, "bad($0)");
  EXPECT_EQ(snap.slow[0].status, "deadline_exceeded");
}

TEST(StatsCollectorTest, DisabledCollectorRecordsNothing) {
  StatsCollector collector;
  SetStatsEnabled(false);
  uint32_t ids[1] = {1};
  collector.RecordRow("edge", ids, 1);
  collector.RecordProbes("edge", "b", 10, 5, 100);
  collector.RecordQuery(MakeRecord("q($0)", 100));
  SetStatsEnabled(true);
  StatsSnapshot snap = collector.Snapshot();
  EXPECT_TRUE(snap.columns.empty());
  EXPECT_TRUE(snap.selectivity.empty());
  EXPECT_TRUE(snap.queries.empty());
  EXPECT_EQ(snap.total_queries, 0u);
}

TEST(SlowLogJsonTest, RenderValidatesRoundTrip) {
  StatsCollector collector;
  collector.set_slow_threshold_us(0);
  QueryRecord failed = MakeRecord("bad($0, $1)", 777, "resource_exhausted");
  failed.reason = "memory budget exceeded";
  failed.bytes_peak = 4096;
  collector.RecordQuery(MakeRecord("path($0, $1)", 150));
  collector.RecordQuery(MakeRecord("path($0, $1)", 250));
  collector.RecordQuery(std::move(failed));
  std::string json = collector.RenderSlowLogJson();
  std::string error;
  EXPECT_TRUE(ValidateSlowLogJson(json, &error)) << error;
}

TEST(SlowLogJsonTest, NonBmpFingerprintsRoundTrip) {
  // Fingerprints carrying supplementary-plane symbols (a predicate named
  // after an emoji label, say) must survive render -> validate intact: the
  // escaper passes raw UTF-8 through and the parser reassembles \uXXXX
  // surrogate pairs.
  StatsCollector collector;
  collector.set_slow_threshold_us(0);
  const std::string fp = "clip_\xf0\x9f\x8e\xac($0)";  // U+1F3AC movie camera
  collector.RecordQuery(MakeRecord(fp, 120));
  std::string json = collector.RenderSlowLogJson();
  std::string error;
  ASSERT_TRUE(ValidateSlowLogJson(json, &error)) << error;
  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  const JsonValue* entries = doc.Find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_FALSE(entries->array.empty());
  const JsonValue* got = entries->array[0].Find("fingerprint");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->string_value, fp);
}

TEST(SlowLogJsonTest, EscapedSurrogatePairFingerprintValidates) {
  // A document produced by a stricter writer that \u-escapes non-ASCII must
  // validate too, and decode to the same UTF-8 bytes.
  std::string error;
  JsonValue doc;
  ASSERT_TRUE(ParseJson(
      R"json({"fingerprint": "clip_\ud83c\udfac($0)"})json", &doc, &error))
      << error;
  const JsonValue* fp = doc.Find("fingerprint");
  ASSERT_NE(fp, nullptr);
  EXPECT_EQ(fp->string_value, "clip_\xf0\x9f\x8e\xac($0)");
  // Lone surrogates are mojibake feedstock and must not validate.
  EXPECT_FALSE(ParseJson(R"json({"fingerprint": "\ud83c"})json", &doc, &error));
}

TEST(SlowLogJsonTest, RejectsCorruptDocuments) {
  std::string error;
  EXPECT_FALSE(ValidateSlowLogJson("not json", &error));
  EXPECT_FALSE(ValidateSlowLogJson("[]", &error));
  EXPECT_FALSE(ValidateSlowLogJson(
      R"json({"slow_threshold_us": 0, "total_queries": 1})json", &error));
  // An entry missing its status field.
  EXPECT_FALSE(ValidateSlowLogJson(
      R"json({"slow_threshold_us": 0, "total_queries": 1, "entries": [
          {"seq": 1, "fingerprint": "q($0)", "access_path": "fixpoint",
           "reason": "", "rows": 0, "parse_us": 0, "rewrite_us": 0,
           "eval_us": 0, "decode_us": 0, "total_us": 1, "bytes_peak": 0,
           "tuples": 0, "solver_steps": 0}], "queries": []})json",
      &error));
  // Quantile inversion: p50 > p99.
  EXPECT_FALSE(ValidateSlowLogJson(
      R"json({"slow_threshold_us": 0, "total_queries": 1, "entries": [],
          "queries": [{"fingerprint": "q($0)", "count": 1, "rows": 0,
                       "p50_us": 9, "p99_us": 1, "statuses": {"ok": 1}}]})json",
      &error));
  EXPECT_EQ(error, "quantile inversion: p50_us > p99_us");
  // Status counts not summing to count.
  EXPECT_FALSE(ValidateSlowLogJson(
      R"json({"slow_threshold_us": 0, "total_queries": 1, "entries": [],
          "queries": [{"fingerprint": "q($0)", "count": 3, "rows": 0,
                       "p50_us": 1, "p99_us": 2, "statuses": {"ok": 1}}]})json",
      &error));
}

// Satellite (b): snapshots taken while writers hammer the collector must be
// internally consistent (status counts summing to the fingerprint count;
// quantiles ordered), and interleaved resets must be atomic — never a
// half-cleared view. Run under TSan by tools/verify.sh.
TEST(StatsCollectorTest, SnapshotConsistentUnderConcurrentLoad) {
  StatsCollector collector;
  collector.set_slow_threshold_us(50);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&collector, &stop, t] {
      uint32_t ids[3];
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ids[0] = static_cast<uint32_t>(i);
        ids[1] = static_cast<uint32_t>(i * 31 + t);
        ids[2] = static_cast<uint32_t>(t);
        collector.RecordRow("edge", ids, 3);
        collector.RecordProbes("edge", "bff", 10, i % 20, 1000);
        collector.RecordQuery(
            MakeRecord("q($0)", i % 100, i % 5 == 0 ? "overloaded" : "ok"));
        ++i;
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    StatsSnapshot snap = collector.Snapshot();
    for (const QueryStatView& q : snap.queries) {
      uint64_t status_sum = 0;
      for (const auto& [name, n] : q.statuses) status_sum += n;
      EXPECT_EQ(status_sum, q.count);
      EXPECT_LE(q.p50_us, q.p99_us);
    }
    for (const ColumnStatView& c : snap.columns) {
      EXPECT_GE(c.distinct_estimate, 0);
    }
    std::string error;
    EXPECT_TRUE(ValidateSlowLogJson(collector.RenderSlowLogJson(), &error))
        << error;
    if (round % 50 == 49) collector.Reset();
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
}

}  // namespace
}  // namespace obs
}  // namespace vqldb
