#include "src/video/synthetic.h"

#include <gtest/gtest.h>

#include "src/common/logging.h"

namespace vqldb {
namespace {

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticArchiveConfig config;
  config.seed = 99;
  VideoTimeline a = GenerateArchive(config);
  VideoTimeline b = GenerateArchive(config);
  EXPECT_EQ(a.duration(), b.duration());
  EXPECT_EQ(a.EntityNames(), b.EntityNames());
  for (const std::string& name : a.EntityNames()) {
    EXPECT_EQ(a.FindTrack(name)->extent, b.FindTrack(name)->extent) << name;
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticArchiveConfig c1, c2;
  c1.seed = 1;
  c2.seed = 2;
  VideoTimeline a = GenerateArchive(c1);
  VideoTimeline b = GenerateArchive(c2);
  bool any_diff = a.duration() != b.duration();
  for (const std::string& name : a.EntityNames()) {
    if (!(a.FindTrack(name)->extent == b.FindTrack(name)->extent)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, StructureMatchesConfig) {
  SyntheticArchiveConfig config;
  config.num_shots = 20;
  config.num_entities = 5;
  config.mean_shot_seconds = 6.0;
  VideoTimeline timeline = GenerateArchive(config);
  EXPECT_EQ(timeline.shots().size(), 20u);
  EXPECT_EQ(timeline.EntityNames().size(), 5u);
  // Duration within [0.5, 1.5] x mean x shots.
  EXPECT_GE(timeline.duration(), 20 * 3.0);
  EXPECT_LE(timeline.duration(), 20 * 9.0);
  // Shots tile the timeline contiguously.
  double cursor = 0;
  for (const Shot& s : timeline.shots()) {
    EXPECT_DOUBLE_EQ(s.begin_time, cursor);
    cursor = s.end_time;
  }
  EXPECT_DOUBLE_EQ(cursor, timeline.duration());
}

TEST(SyntheticTest, TracksStayWithinTimeline) {
  SyntheticArchiveConfig config;
  config.seed = 4;
  VideoTimeline timeline = GenerateArchive(config);
  for (const auto& [name, track] : timeline.tracks()) {
    if (track.extent.IsEmpty()) continue;
    EXPECT_GE(track.extent.Begin(), 0.0);
    EXPECT_LE(track.extent.End(), timeline.duration());
  }
}

TEST(SyntheticTest, PresenceProbabilityScalesOccupancy) {
  SyntheticArchiveConfig sparse, dense;
  sparse.seed = dense.seed = 10;
  sparse.presence_probability = 0.1;
  dense.presence_probability = 0.9;
  VideoTimeline a = GenerateArchive(sparse);
  VideoTimeline b = GenerateArchive(dense);
  double measure_a = 0, measure_b = 0;
  for (const auto& [name, track] : a.tracks()) {
    measure_a += track.extent.Measure();
  }
  for (const auto& [name, track] : b.tracks()) {
    measure_b += track.extent.Measure();
  }
  EXPECT_GT(measure_b, 3 * measure_a);
}

TEST(SyntheticTest, RenderedStreamMatchesDuration) {
  SyntheticArchiveConfig config;
  config.num_shots = 5;
  config.mean_shot_seconds = 2.0;
  VideoTimeline timeline = GenerateArchive(config);
  FrameRenderConfig render;
  render.fps = 10.0;
  FrameStream stream = RenderFrameStream(timeline, render);
  EXPECT_NEAR(stream.duration_seconds(), timeline.duration(), 0.2);
  EXPECT_EQ(stream.feature_bins(), render.feature_bins);
  // Features are normalized histograms.
  double sum = 0;
  for (double v : stream.feature(0)) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace vqldb
