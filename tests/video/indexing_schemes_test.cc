// FIG-1/2/3 invariants: the generalized-interval and stratification schemes
// retrieve exactly; segmentation over-approximates (precision < 1, recall =
// 1); descriptor counts order as the paper's Fig. 3 motivation predicts.

#include "src/video/indexing_schemes.h"

#include <gtest/gtest.h>

#include "src/common/logging.h"

#include "src/engine/query.h"
#include "src/video/synthetic.h"

namespace vqldb {
namespace {

// A hand-built timeline with known structure: two entities, non-continuous
// occurrences, three shots.
VideoTimeline SmallTimeline() {
  VideoTimeline timeline(30);
  auto reporter = GeneralizedInterval::Make(
      {Fragment{0, 8}, Fragment{20, 28}});
  auto minister = GeneralizedInterval::Make({Fragment{5, 18}});
  VQLDB_CHECK(reporter.ok() && minister.ok());
  VQLDB_CHECK_OK(timeline.AddTrack({"reporter", *reporter, {}}));
  VQLDB_CHECK_OK(timeline.AddTrack({"minister", *minister, {}}));
  std::vector<Shot> shots;
  for (double begin : {0.0, 10.0, 20.0}) {
    Shot s;
    s.begin_time = begin;
    s.end_time = begin + 10;
    shots.push_back(s);
  }
  timeline.set_shots(std::move(shots));
  return timeline;
}

TEST(IndexingSchemesTest, GeneralizedIntervalIsExact) {
  VideoTimeline timeline = SmallTimeline();
  GeneralizedIntervalIndex index;
  ASSERT_TRUE(index.Build(timeline).ok());
  GeneralizedInterval r = index.OccurrencesOf("reporter");
  EXPECT_EQ(r, timeline.FindTrack("reporter")->extent);
  RetrievalQuality q =
      MeasureQuality(r, timeline.FindTrack("reporter")->extent);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

TEST(IndexingSchemesTest, StratificationIsExact) {
  VideoTimeline timeline = SmallTimeline();
  StratificationIndex index;
  ASSERT_TRUE(index.Build(timeline).ok());
  EXPECT_EQ(index.OccurrencesOf("reporter"),
            timeline.FindTrack("reporter")->extent);
  EXPECT_EQ(index.OccurrencesOf("minister"),
            timeline.FindTrack("minister")->extent);
}

TEST(IndexingSchemesTest, SegmentationOverApproximates) {
  VideoTimeline timeline = SmallTimeline();
  SegmentationIndex index;
  ASSERT_TRUE(index.Build(timeline).ok());
  GeneralizedInterval retrieved = index.OccurrencesOf("reporter");
  const GeneralizedInterval& truth = timeline.FindTrack("reporter")->extent;
  // Full recall but degraded precision (whole segments come back).
  EXPECT_TRUE(truth.SubsetOf(retrieved));
  RetrievalQuality q = MeasureQuality(retrieved, truth);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_LT(q.precision, 1.0);
}

TEST(IndexingSchemesTest, SegmentationCoOccurrenceHasFalsePositives) {
  VideoTimeline timeline = SmallTimeline();
  SegmentationIndex seg;
  GeneralizedIntervalIndex gii;
  ASSERT_TRUE(seg.Build(timeline).ok());
  ASSERT_TRUE(gii.Build(timeline).ok());
  // True co-occurrence is [5,8] (both on screen).
  GeneralizedInterval truth = timeline.CoOccurrence("reporter", "minister");
  EXPECT_EQ(gii.CoOccurrence("reporter", "minister"), truth);
  GeneralizedInterval seg_co = seg.CoOccurrence("reporter", "minister");
  // Segmentation reports whole shots where both appear somewhere: here the
  // shot [10,20] lists both (reporter? no — reporter absent in [10,20)...
  // reporter fragments [0,8],[20,28] overlap shots 1 and 3; minister [5,18]
  // overlaps shots 1 and 2 -> both appear in shot 1 [0,10].
  EXPECT_TRUE(truth.SubsetOf(seg_co));
  EXPECT_GT(seg_co.Measure(), truth.Measure());
}

TEST(IndexingSchemesTest, DescriptorCountOrdering) {
  // Fig. 3's economy: one descriptor per entity beats one per stratum beats
  // (for realistic densities) one per segment... the invariant we check is
  // gi <= strata always, and the exact counts on the small example.
  VideoTimeline timeline = SmallTimeline();
  SegmentationIndex seg;
  StratificationIndex strat;
  GeneralizedIntervalIndex gii;
  ASSERT_TRUE(seg.Build(timeline).ok());
  ASSERT_TRUE(strat.Build(timeline).ok());
  ASSERT_TRUE(gii.Build(timeline).ok());
  EXPECT_EQ(gii.Stats().descriptor_count, 2u);    // 2 entities
  EXPECT_EQ(strat.Stats().descriptor_count, 3u);  // 3 occurrence runs
  EXPECT_EQ(seg.Stats().descriptor_count, 3u);    // 3 shots
  EXPECT_LE(gii.Stats().descriptor_count, strat.Stats().descriptor_count);
}

TEST(IndexingSchemesTest, DescriptorEconomyOnLargerArchive) {
  SyntheticArchiveConfig config;
  config.seed = 5;
  config.num_shots = 40;
  config.num_entities = 6;
  VideoTimeline timeline = GenerateArchive(config);
  StratificationIndex strat;
  GeneralizedIntervalIndex gii;
  ASSERT_TRUE(strat.Build(timeline).ok());
  ASSERT_TRUE(gii.Build(timeline).ok());
  EXPECT_EQ(gii.Stats().descriptor_count, 6u);
  // With ~12 appearances per entity, strata vastly outnumber GIs.
  EXPECT_GT(strat.Stats().descriptor_count,
            4 * gii.Stats().descriptor_count);
  // Same time records either way (the same runs are stored).
  EXPECT_EQ(strat.Stats().time_records, gii.Stats().time_records);
}

TEST(IndexingSchemesTest, EntitiesAtAgreesForExactSchemes) {
  VideoTimeline timeline = SmallTimeline();
  StratificationIndex strat;
  GeneralizedIntervalIndex gii;
  ASSERT_TRUE(strat.Build(timeline).ok());
  ASSERT_TRUE(gii.Build(timeline).ok());
  for (double t : {1.0, 6.0, 12.0, 25.0, 29.5}) {
    EXPECT_EQ(strat.EntitiesAt(t), timeline.EntitiesAt(t)) << t;
    EXPECT_EQ(gii.EntitiesAt(t), timeline.EntitiesAt(t)) << t;
  }
}

TEST(IndexingSchemesTest, FixedLengthSegmentsWhenNoShots) {
  VideoTimeline timeline(25);
  VQLDB_CHECK_OK(
      timeline.AddTrack({"a", GeneralizedInterval::Single(0, 25), {}}));
  SegmentationIndex index(10.0);
  ASSERT_TRUE(index.Build(timeline).ok());
  EXPECT_EQ(index.segments().size(), 3u);  // [0,10) [10,20) [20,25]
  EXPECT_DOUBLE_EQ(index.segments().back().extent.end, 25.0);
}

TEST(IndexingSchemesTest, PopulateDatabaseMakesQueryableModel) {
  VideoTimeline timeline = SmallTimeline();
  for (auto& scheme : AllIndexingSchemes()) {
    VideoDatabase db;
    ASSERT_TRUE(scheme->Build(timeline).ok());
    ASSERT_TRUE(scheme->PopulateDatabase(&db).ok()) << scheme->SchemeName();
    ASSERT_TRUE(db.Validate().ok());
    EXPECT_EQ(db.Entities().size(), 2u) << scheme->SchemeName();
    EXPECT_EQ(db.BaseIntervals().size(),
              scheme->Stats().descriptor_count)
        << scheme->SchemeName();

    // The same co-occurrence query runs against every representation.
    QuerySession session(&db);
    ASSERT_TRUE(session
                    .AddRule("together(G) <- Interval(G), "
                             "{reporter, minister} subset G.entities.")
                    .ok());
    auto r = session.Query("?- together(G).");
    ASSERT_TRUE(r.ok());
    if (scheme->SchemeName() == "segmentation") {
      // Shot [0,10] lists both; shot [10,20] also does, because closed
      // segments share boundary instants (reporter's [20,28] touches 20 —
      // part of segmentation's over-approximation).
      EXPECT_EQ(r->rows.size(), 2u);
    } else {
      // Per-entity / per-stratum intervals never list two entities.
      EXPECT_TRUE(r->rows.empty());
    }
  }
}

TEST(IndexingSchemesTest, MeasureQualityEdgeCases) {
  GeneralizedInterval empty;
  GeneralizedInterval some = GeneralizedInterval::Single(0, 10);
  RetrievalQuality q1 = MeasureQuality(empty, empty);
  EXPECT_DOUBLE_EQ(q1.precision, 1.0);
  EXPECT_DOUBLE_EQ(q1.recall, 1.0);
  RetrievalQuality q2 = MeasureQuality(empty, some);
  EXPECT_DOUBLE_EQ(q2.recall, 0.0);
  RetrievalQuality q3 = MeasureQuality(some, empty);
  EXPECT_DOUBLE_EQ(q3.precision, 0.0);
  EXPECT_DOUBLE_EQ(q3.recall, 1.0);
}

}  // namespace
}  // namespace vqldb
