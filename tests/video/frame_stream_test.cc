#include "src/video/frame_stream.h"

#include <gtest/gtest.h>

namespace vqldb {
namespace {

TEST(FrameStreamTest, EmptyStream) {
  FrameStream s(25.0, 4);
  EXPECT_EQ(s.frame_count(), 0u);
  EXPECT_EQ(s.duration_seconds(), 0);
  EXPECT_TRUE(s.ConsecutiveDistances().empty());
}

TEST(FrameStreamTest, AppendValidatesBinCount) {
  FrameStream s(25.0, 4);
  EXPECT_TRUE(s.Append({0.25, 0.25, 0.25, 0.25}).ok());
  EXPECT_TRUE(s.Append({0.5, 0.5}).IsInvalidArgument());
  EXPECT_EQ(s.frame_count(), 1u);
}

TEST(FrameStreamTest, TimestampsFollowFps) {
  FrameStream s(10.0, 1);
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(s.Append({1.0}).ok());
  EXPECT_EQ(s.duration_seconds(), 3.0);
  EXPECT_EQ(s.TimeOf(0), 0.0);
  EXPECT_EQ(s.TimeOf(10), 1.0);
  EXPECT_EQ(s.FrameAt(1.55), 15u);
  EXPECT_EQ(s.FrameAt(-2), 0u);
  EXPECT_EQ(s.FrameAt(100), 29u);  // clamped
}

TEST(FrameStreamTest, ConsecutiveDistancesL1) {
  FrameStream s(25.0, 2);
  ASSERT_TRUE(s.Append({1.0, 0.0}).ok());
  ASSERT_TRUE(s.Append({0.0, 1.0}).ok());
  ASSERT_TRUE(s.Append({0.0, 1.0}).ok());
  auto d = s.ConsecutiveDistances();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
}

}  // namespace
}  // namespace vqldb
