#include "src/video/shot_detector.h"

#include <gtest/gtest.h>

#include "src/common/logging.h"

#include "src/video/synthetic.h"

namespace vqldb {
namespace {

// Two hard cuts: frames 0-9 bright, 10-19 dark, 20-29 bright.
FrameStream ThreeShotStream() {
  FrameStream s(10.0, 2);
  for (int i = 0; i < 30; ++i) {
    bool dark = i >= 10 && i < 20;
    VQLDB_CHECK_OK(s.Append(dark ? FrameFeature{0.1, 0.9}
                                 : FrameFeature{0.9, 0.1}));
  }
  return s;
}

TEST(ShotDetectorTest, DetectsHardCuts) {
  ShotDetectorOptions options;
  options.threshold = 0.5;
  auto shots = ShotDetector(options).Detect(ThreeShotStream());
  ASSERT_TRUE(shots.ok());
  ASSERT_EQ(shots->size(), 3u);
  EXPECT_EQ((*shots)[0].begin_frame, 0u);
  EXPECT_EQ((*shots)[0].end_frame, 9u);
  EXPECT_EQ((*shots)[1].begin_frame, 10u);
  EXPECT_EQ((*shots)[1].end_frame, 19u);
  EXPECT_EQ((*shots)[2].end_frame, 29u);
  // Times follow fps = 10.
  EXPECT_DOUBLE_EQ((*shots)[1].begin_time, 1.0);
  EXPECT_DOUBLE_EQ((*shots)[1].end_time, 2.0);
}

TEST(ShotDetectorTest, EmptyStreamNoShots) {
  FrameStream s(25.0, 2);
  auto shots = ShotDetector().Detect(s);
  ASSERT_TRUE(shots.ok());
  EXPECT_TRUE(shots->empty());
}

TEST(ShotDetectorTest, SingleShotWhenNoCuts) {
  FrameStream s(25.0, 2);
  for (int i = 0; i < 50; ++i) {
    VQLDB_CHECK_OK(s.Append({0.5, 0.5}));
  }
  ShotDetectorOptions options;
  options.threshold = 0.5;
  auto shots = ShotDetector(options).Detect(s);
  ASSERT_TRUE(shots.ok());
  ASSERT_EQ(shots->size(), 1u);
  EXPECT_EQ((*shots)[0].end_frame, 49u);
}

TEST(ShotDetectorTest, FlashSuppressionMergesShortShots) {
  // One single anomalous frame should not create a 1-frame shot.
  FrameStream s(10.0, 2);
  for (int i = 0; i < 20; ++i) {
    bool flash = i == 10;
    VQLDB_CHECK_OK(s.Append(flash ? FrameFeature{0.0, 1.0}
                                  : FrameFeature{1.0, 0.0}));
  }
  ShotDetectorOptions options;
  options.threshold = 0.5;
  options.min_shot_frames = 3;
  auto shots = ShotDetector(options).Detect(s);
  ASSERT_TRUE(shots.ok());
  // The flash frame merges; the tail shot after the flash is long enough.
  EXPECT_LE(shots->size(), 2u);
  for (const Shot& shot : *shots) {
    EXPECT_GE(shot.end_frame - shot.begin_frame + 1, 3u);
  }
}

TEST(ShotDetectorTest, AdaptiveThresholdOnSyntheticArchive) {
  SyntheticArchiveConfig config;
  config.seed = 11;
  config.num_shots = 12;
  config.num_entities = 3;
  config.mean_shot_seconds = 4.0;
  VideoTimeline timeline = GenerateArchive(config);
  FrameRenderConfig render;
  render.fps = 10.0;
  render.noise = 0.005;
  FrameStream stream = RenderFrameStream(timeline, render);

  auto shots = ShotDetector().Detect(stream);
  ASSERT_TRUE(shots.ok());
  // The detector should recover approximately the ground-truth shot count.
  EXPECT_GE(shots->size(), 10u);
  EXPECT_LE(shots->size(), 14u);

  // Detected boundaries should be close to true boundaries.
  size_t matched = 0;
  for (size_t i = 1; i < shots->size(); ++i) {
    double detected = (*shots)[i].begin_time;
    for (const Shot& truth : timeline.shots()) {
      if (std::abs(truth.begin_time - detected) < 0.25) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GE(matched + 1, shots->size() - 1);
}

TEST(ShotDetectorTest, EffectiveThresholdFixedVsAdaptive) {
  ShotDetectorOptions fixed;
  fixed.threshold = 0.7;
  EXPECT_EQ(ShotDetector(fixed).EffectiveThreshold(ThreeShotStream()), 0.7);
  ShotDetectorOptions adaptive;
  double t = ShotDetector(adaptive).EffectiveThreshold(ThreeShotStream());
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1.6);  // mean + 3 sigma of the distance distribution
}

}  // namespace
}  // namespace vqldb
