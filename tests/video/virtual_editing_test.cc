#include "src/video/virtual_editing.h"

#include <gtest/gtest.h>

namespace vqldb {
namespace {

class VirtualEditingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    o_ = *db_.CreateEntity("reporter");
    a_ = *db_.CreateInterval("a", GeneralizedInterval::Single(0, 5));
    b_ = *db_.CreateInterval("b", GeneralizedInterval::Single(20, 30));
    c_ = *db_.CreateInterval("c", GeneralizedInterval::Single(3, 8));
    ASSERT_TRUE(db_.AddEntityToInterval(a_, o_).ok());
    ASSERT_TRUE(db_.AddEntityToInterval(b_, o_).ok());
  }

  VideoDatabase db_;
  ObjectId o_, a_, b_, c_;
};

TEST_F(VirtualEditingTest, SequenceFromIntervalsMergesInTimelineOrder) {
  auto list = SequenceFromIntervals(db_, {b_, a_, c_});
  ASSERT_TRUE(list.ok());
  // a [0,5] and c [3,8] merge; b [20,30] stays separate.
  ASSERT_EQ(list->cuts.size(), 2u);
  EXPECT_DOUBLE_EQ(list->cuts[0].begin, 0);
  EXPECT_DOUBLE_EQ(list->cuts[0].end, 8);
  EXPECT_DOUBLE_EQ(list->cuts[1].begin, 20);
  EXPECT_DOUBLE_EQ(list->TotalDuration(), 18);
  EXPECT_EQ(list->ToString(), "[0,8] -> [20,30]");
}

TEST_F(VirtualEditingTest, SequenceClosesOpenDurations) {
  auto open = db_.CreateInterval(
      "open", IntervalSet({TimeInterval::Open(40, 50)}));
  ASSERT_TRUE(open.ok());
  auto list = SequenceFromIntervals(db_, {*open});
  ASSERT_TRUE(list.ok());
  EXPECT_DOUBLE_EQ(list->cuts[0].begin, 40);
  EXPECT_DOUBLE_EQ(list->cuts[0].end, 50);
}

TEST_F(VirtualEditingTest, SequenceRejectsUnbounded) {
  auto ray =
      db_.CreateInterval("ray", IntervalSet({TimeInterval::AtLeast(5)}));
  ASSERT_TRUE(ray.ok());
  EXPECT_TRUE(
      SequenceFromIntervals(db_, {*ray}).status().IsInvalidArgument());
}

TEST_F(VirtualEditingTest, SequenceFromQueryColumn) {
  QueryResult result;
  result.columns = {"G"};
  result.rows = {{Value::Oid(a_)}, {Value::Oid(b_)}};
  auto list = SequenceFromQueryColumn(db_, result, 0);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->cuts.size(), 2u);
  EXPECT_TRUE(
      SequenceFromQueryColumn(db_, result, 5).status().IsOutOfRange());
  QueryResult bad;
  bad.columns = {"X"};
  bad.rows = {{Value::Int(7)}};
  EXPECT_TRUE(SequenceFromQueryColumn(db_, bad, 0).status().IsTypeError());
}

TEST_F(VirtualEditingTest, ClampFragmentsMakesTrailer) {
  EditList list;
  list.cuts = {Fragment{0, 10}, Fragment{20, 22}};
  EditList trailer = ClampFragments(list, 3);
  ASSERT_EQ(trailer.cuts.size(), 2u);
  EXPECT_DOUBLE_EQ(trailer.cuts[0].end, 3);
  EXPECT_DOUBLE_EQ(trailer.cuts[1].end, 22);  // already short
  EXPECT_DOUBLE_EQ(trailer.TotalDuration(), 5);
}

TEST_F(VirtualEditingTest, MaterializeSequenceCreatesFirstClassObject) {
  auto list = SequenceFromIntervals(db_, {a_, b_});
  ASSERT_TRUE(list.ok());
  auto gi = MaterializeSequence(&db_, "edited", *list, {a_, b_});
  ASSERT_TRUE(gi.ok());
  EXPECT_EQ(*db_.Resolve("edited"), *gi);
  EXPECT_TRUE(db_.IsInterval(*gi));
  EXPECT_EQ(db_.EntitiesOf(*gi)->size(), 1u);  // reporter, deduped
  EXPECT_EQ(db_.GetAttribute(*gi, "edited")->bool_value(), true);
  IntervalSet duration = *db_.DurationOf(*gi);
  EXPECT_TRUE(duration.Contains(2));
  EXPECT_TRUE(duration.Contains(25));
}

TEST_F(VirtualEditingTest, EmptyEditList) {
  EditList list;
  EXPECT_TRUE(list.empty());
  EXPECT_DOUBLE_EQ(list.TotalDuration(), 0);
  EXPECT_EQ(list.ToString(), "");
  auto from_nothing = SequenceFromIntervals(db_, {});
  ASSERT_TRUE(from_nothing.ok());
  EXPECT_TRUE(from_nothing->empty());
}

}  // namespace
}  // namespace vqldb
