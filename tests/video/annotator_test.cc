#include "src/video/annotator.h"

#include <gtest/gtest.h>

namespace vqldb {
namespace {

TEST(AnnotatorTest, AddEntityCreatesWithAttributes) {
  VideoDatabase db;
  Annotator annotator(&db);
  auto id = annotator.AddEntity("reporter",
                                {{"role", Value::String("anchor")}});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(db.IsEntity(*id));
  EXPECT_EQ(db.GetAttribute(*id, "role")->string_value(), "anchor");
}

TEST(AnnotatorTest, AddEntityReusesExisting) {
  VideoDatabase db;
  Annotator annotator(&db);
  ObjectId first = *annotator.AddEntity("reporter");
  ObjectId second =
      *annotator.AddEntity("reporter", {{"role", Value::String("anchor")}});
  EXPECT_EQ(first, second);
  EXPECT_EQ(db.Entities().size(), 1u);
  EXPECT_TRUE(db.GetAttribute(first, "role").ok());
}

TEST(AnnotatorTest, AddEntityRejectsIntervalSymbol) {
  VideoDatabase db;
  ASSERT_TRUE(db.CreateInterval("gi", GeneralizedInterval::Single(0, 1)).ok());
  Annotator annotator(&db);
  EXPECT_TRUE(annotator.AddEntity("gi").status().IsInvalidArgument());
}

TEST(AnnotatorTest, AnnotateTrackBuildsFig3Structure) {
  VideoDatabase db;
  Annotator annotator(&db);
  OccurrenceTrack track;
  track.entity = "reporter";
  track.extent = *GeneralizedInterval::Make({Fragment{0, 5}, Fragment{20, 30}});
  track.attributes.emplace_back("role", "anchor");
  auto gi = annotator.AnnotateTrack(track);
  ASSERT_TRUE(gi.ok());
  EXPECT_EQ(*db.Resolve("occ_reporter"), *gi);
  ObjectId entity = *db.Resolve("reporter");
  EXPECT_EQ(db.EntitiesOf(*gi)->size(), 1u);
  EXPECT_EQ(db.EntitiesOf(*gi)->front(), entity);
  EXPECT_EQ(db.GetAttribute(entity, "role")->string_value(), "anchor");
  IntervalSet duration = *db.DurationOf(*gi);
  EXPECT_TRUE(duration.Contains(3));
  EXPECT_TRUE(duration.Contains(25));
  EXPECT_FALSE(duration.Contains(10));
}

TEST(AnnotatorTest, AnnotateSceneWithSubject) {
  VideoDatabase db;
  Annotator annotator(&db);
  ASSERT_TRUE(annotator.AddEntity("philip").ok());
  ASSERT_TRUE(annotator.AddEntity("brandon").ok());
  auto gi = annotator.AnnotateScene("crime", GeneralizedInterval::Single(0, 10),
                                    {"philip", "brandon"}, "murder");
  ASSERT_TRUE(gi.ok());
  EXPECT_EQ(db.EntitiesOf(*gi)->size(), 2u);
  EXPECT_EQ(db.GetAttribute(*gi, "subject")->string_value(), "murder");
}

TEST(AnnotatorTest, AssertRelationResolvesSymbols) {
  VideoDatabase db;
  Annotator annotator(&db);
  ASSERT_TRUE(annotator.AddEntity("david").ok());
  ASSERT_TRUE(annotator.AddEntity("chest").ok());
  ASSERT_TRUE(annotator
                  .AnnotateScene("crime", GeneralizedInterval::Single(0, 10),
                                 {"david"})
                  .ok());
  ASSERT_TRUE(annotator.AssertRelation("in", {"david", "chest", "crime"}).ok());
  EXPECT_EQ(db.FactsFor("in").size(), 1u);
  EXPECT_TRUE(
      annotator.AssertRelation("in", {"nobody", "chest", "crime"})
          .IsNotFound());
}

TEST(AnnotatorTest, AnnotateTimelinePopulatesEverything) {
  VideoDatabase db;
  Annotator annotator(&db);
  VideoTimeline timeline(50);
  ASSERT_TRUE(
      timeline.AddTrack({"a", GeneralizedInterval::Single(0, 10), {}}).ok());
  ASSERT_TRUE(
      timeline.AddTrack({"b", GeneralizedInterval::Single(5, 15), {}}).ok());
  ASSERT_TRUE(annotator.AnnotateTimeline(timeline).ok());
  EXPECT_EQ(db.Entities().size(), 2u);
  EXPECT_EQ(db.BaseIntervals().size(), 2u);
  EXPECT_TRUE(db.Validate().ok());
}

}  // namespace
}  // namespace vqldb
