#include "src/video/occurrence.h"

#include <gtest/gtest.h>

#include "src/common/logging.h"

namespace vqldb {
namespace {

TEST(OccurrenceTest, TrackFromPresenceBasic) {
  // Frames at 10 fps: present 0-4, absent 5-9, present 10-14.
  std::vector<bool> presence(15, false);
  for (int i = 0; i < 5; ++i) presence[i] = true;
  for (int i = 10; i < 15; ++i) presence[i] = true;
  auto track = TrackFromPresence("reporter", presence, 10.0);
  ASSERT_TRUE(track.ok());
  EXPECT_EQ(track->entity, "reporter");
  EXPECT_EQ(track->extent.fragment_count(), 2u);
  EXPECT_DOUBLE_EQ(track->extent.fragments()[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(track->extent.fragments()[0].end, 0.5);
  EXPECT_DOUBLE_EQ(track->extent.fragments()[1].begin, 1.0);
  EXPECT_DOUBLE_EQ(track->extent.fragments()[1].end, 1.5);
}

TEST(OccurrenceTest, TrackFromPresenceAllAbsent) {
  auto track = TrackFromPresence("ghost", std::vector<bool>(10, false), 25.0);
  ASSERT_TRUE(track.ok());
  EXPECT_TRUE(track->extent.IsEmpty());
}

TEST(OccurrenceTest, TrackFromPresenceRejectsBadFps) {
  EXPECT_TRUE(
      TrackFromPresence("x", {true}, 0.0).status().IsInvalidArgument());
}

TEST(OccurrenceTest, TimelineAddTrackMergesSameEntity) {
  VideoTimeline timeline(100);
  OccurrenceTrack t1{"reporter", GeneralizedInterval::Single(0, 5), {}};
  OccurrenceTrack t2{"reporter", GeneralizedInterval::Single(20, 30), {}};
  ASSERT_TRUE(timeline.AddTrack(t1).ok());
  ASSERT_TRUE(timeline.AddTrack(t2).ok());
  const OccurrenceTrack* merged = timeline.FindTrack("reporter");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->extent.fragment_count(), 2u);
}

TEST(OccurrenceTest, TimelineRejectsEmptyName) {
  VideoTimeline timeline(10);
  OccurrenceTrack bad{"", GeneralizedInterval::Single(0, 1), {}};
  EXPECT_TRUE(timeline.AddTrack(bad).IsInvalidArgument());
}

TEST(OccurrenceTest, EntitiesAt) {
  VideoTimeline timeline(100);
  ASSERT_TRUE(
      timeline.AddTrack({"a", GeneralizedInterval::Single(0, 10), {}}).ok());
  ASSERT_TRUE(
      timeline.AddTrack({"b", GeneralizedInterval::Single(5, 15), {}}).ok());
  EXPECT_EQ(timeline.EntitiesAt(2), (std::vector<std::string>{"a"}));
  EXPECT_EQ(timeline.EntitiesAt(7), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(timeline.EntitiesAt(50).empty());
}

TEST(OccurrenceTest, CoOccurrenceExact) {
  VideoTimeline timeline(100);
  ASSERT_TRUE(
      timeline.AddTrack({"a", GeneralizedInterval::Single(0, 10), {}}).ok());
  ASSERT_TRUE(
      timeline.AddTrack({"b", GeneralizedInterval::Single(5, 15), {}}).ok());
  GeneralizedInterval co = timeline.CoOccurrence("a", "b");
  EXPECT_EQ(co.ToString(), "[5,10]");
  EXPECT_TRUE(timeline.CoOccurrence("a", "missing").IsEmpty());
}

TEST(OccurrenceTest, EntityNamesSorted) {
  VideoTimeline timeline(10);
  ASSERT_TRUE(
      timeline.AddTrack({"zeta", GeneralizedInterval::Single(0, 1), {}}).ok());
  ASSERT_TRUE(
      timeline.AddTrack({"alpha", GeneralizedInterval::Single(0, 1), {}}).ok());
  EXPECT_EQ(timeline.EntityNames(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace vqldb
