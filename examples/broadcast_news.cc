// Broadcast news: the scenario of the paper's Figures 1-3. A synthetic news
// programme is generated, shots are detected from rendered frame features,
// and the same footage is indexed three ways — segmentation (Fig. 1),
// stratification (Fig. 2) and generalized intervals (Fig. 3) — then queried
// through the rule language to show what each scheme can and cannot answer.
//
// Run: ./build/examples/broadcast_news

#include <iomanip>
#include <iostream>

#include "src/common/logging.h"

#include "src/engine/query.h"
#include "src/storage/catalog.h"
#include "src/video/annotator.h"
#include "src/video/indexing_schemes.h"
#include "src/video/shot_detector.h"
#include "src/video/synthetic.h"

using namespace vqldb;

int main() {
  // 1. "Footage": a 10-minute news programme with 5 recurring people.
  SyntheticArchiveConfig config;
  config.seed = 7;
  config.num_shots = 60;
  config.num_entities = 5;
  config.mean_shot_seconds = 10.0;
  config.presence_probability = 0.35;
  VideoTimeline timeline = GenerateArchive(config);
  std::cout << "Generated news programme: " << timeline.duration()
            << "s, " << timeline.shots().size() << " shots, "
            << timeline.EntityNames().size() << " people\n\n";

  // 2. Machine-derived indices (Section 5.1): shot-change detection over
  // rendered colour-histogram features.
  FrameRenderConfig render;
  render.fps = 12.5;
  FrameStream stream = RenderFrameStream(timeline, render);
  auto shots = ShotDetector().Detect(stream);
  VQLDB_CHECK_OK(shots.status());
  std::cout << "Shot detector: " << shots->size() << " shots detected from "
            << stream.frame_count() << " frames (ground truth "
            << timeline.shots().size() << ")\n\n";

  // 3. The three indexing schemes over the same content.
  std::cout << std::left << std::setw(24) << "scheme" << std::setw(14)
            << "descriptors" << std::setw(14) << "time-records"
            << std::setw(12) << "precision" << "recall\n";
  const std::string probe = "actor0";
  const GeneralizedInterval& truth = timeline.FindTrack(probe)->extent;
  for (auto& scheme : AllIndexingSchemes()) {
    VQLDB_CHECK_OK(scheme->Build(timeline));
    IndexStats stats = scheme->Stats();
    RetrievalQuality q = MeasureQuality(scheme->OccurrencesOf(probe), truth);
    std::cout << std::left << std::setw(24) << scheme->SchemeName()
              << std::setw(14) << stats.descriptor_count << std::setw(14)
              << stats.time_records << std::setw(12) << std::setprecision(3)
              << q.precision << q.recall << "\n";
  }

  // 4. Fig. 3's retrieval win, through the query language: one identifier,
  // all occurrences.
  VideoDatabase db;
  GeneralizedIntervalIndex gii;
  VQLDB_CHECK_OK(gii.Build(timeline));
  VQLDB_CHECK_OK(gii.PopulateDatabase(&db));
  QuerySession session(&db);
  VQLDB_CHECK_OK(session.Load(StandardRuleLibrary()));

  std::cout << "\n?- appears(actor0, G).  (one generalized interval traces "
               "every occurrence)\n";
  auto appearances = session.Query("?- appears(actor0, G).");
  VQLDB_CHECK_OK(appearances.status());
  for (const auto& row : appearances->rows) {
    ObjectId gi = row[0].oid_value();
    std::cout << "   " << db.DisplayName(gi) << " = "
              << db.DurationOf(gi)->ToString() << "\n";
  }

  // 5. Temporal reasoning across occurrence intervals.
  VQLDB_CHECK_OK(session.AddRule(
      "early(G) <- Interval(G), G.duration => (t >= 0 and t <= 120)."));
  auto early = session.Query("?- early(G).");
  VQLDB_CHECK_OK(early.status());
  std::cout << "\npeople appearing only in the first two minutes: "
            << early->rows.size() << "\n";

  auto contains = session.Query("?- contains(G1, G2).");
  VQLDB_CHECK_OK(contains.status());
  std::cout << "containment pairs among occurrence intervals: "
            << contains->rows.size() << "\n";
  return 0;
}
