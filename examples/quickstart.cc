// Quickstart: the paper's own worked example ("The Rope", Section 5.2) from
// zero to answers — declare the database in the query language, ask the six
// Section 6.1 queries and the Section 6.2 derived relations, and persist the
// archive.
//
// Run: ./build/examples/quickstart

#include <iostream>

#include "src/common/logging.h"

#include "src/engine/query.h"
#include "src/storage/text_format.h"

using namespace vqldb;

namespace {

constexpr const char* kRope = R"(
  // Entities of interest (O) with their attributes.
  object o1 { name: "David", role: "Victim" }.
  object o2 { name: "Philip", realname: "Farley Granger", role: "Murderer" }.
  object o3 { name: "Brandon", realname: "John Dall", role: "Murderer" }.
  object o4 { identification: "Chest" }.
  object o5 { name: "Janet", realname: "Joan Chandler" }.
  object o6 { name: "Kenneth", realname: "Douglas Dick" }.
  object o7 { name: "Mr.Kentley", realname: "Cedric Hardwicke" }.
  object o8 { name: "Mrs.Atwater", realname: "Constance Collier" }.
  object o9 { name: "Rupert Cadell", realname: "James Stewart" }.

  // Generalized intervals (I) with duration constraints (Sigma / lambda2)
  // and entity sets (lambda1).
  interval gi1 { duration: (t > 0 and t < 10),
                 entities: {o1, o2, o3, o4},
                 subject: "murder", victim: o1, murderer: {o2, o3} }.
  interval gi2 { duration: (t > 15 and t < 40),
                 entities: {o1, o2, o3, o4, o5, o6, o7, o8, o9},
                 subject: "Giving a party", host: {o2, o3},
                 guest: {o5, o6, o7, o8, o9} }.

  // Relation facts (R): David's body is in the chest during both scenes.
  in(o1, o4, gi1).
  in(o1, o4, gi2).
)";

void Show(QuerySession& session, VideoDatabase& db, const char* label,
          const char* query) {
  std::cout << "-- " << label << "\n   " << query << "\n";
  auto result = session.Query(query);
  if (!result.ok()) {
    std::cout << "   error: " << result.status() << "\n";
    return;
  }
  std::cout << "   " << result->ToString(&db);
  std::cout << "\n";
}

}  // namespace

int main() {
  VideoDatabase db;
  QuerySession session(&db);

  Status st = session.Load(kRope);
  if (!st.ok()) {
    std::cerr << "failed to load the Rope archive: " << st << "\n";
    return 1;
  }
  VideoDatabase::Stats stats = db.GetStats();
  std::cout << "Loaded 'The Rope': " << stats.entity_count << " entities, "
            << stats.base_interval_count << " generalized intervals, "
            << stats.fact_count << " facts\n\n";

  // The six example queries of Section 6.1.
  VQLDB_CHECK_OK(session.AddRule(
      "q1(O) <- Interval(gi1), Object(O), O in gi1.entities."));
  Show(session, db, "objects in the domain of sequence gi1", "?- q1(O).");

  VQLDB_CHECK_OK(session.AddRule(
      "q2(G) <- Interval(G), Object(o9), o9 in G.entities."));
  Show(session, db, "intervals where Rupert Cadell appears", "?- q2(G).");

  VQLDB_CHECK_OK(session.AddRule(
      "q3(G) <- Interval(G), Object(o1), o1 in G.entities, "
      "G.duration => (t > 0 and t < 12)."));
  Show(session, db, "does David appear within the frame (0, 12)?",
       "?- q3(G).");

  VQLDB_CHECK_OK(session.AddRule(
      "q4(G) <- Interval(G), {o2, o3} subset G.entities."));
  Show(session, db, "intervals where Philip and Brandon appear together",
       "?- q4(G).");

  VQLDB_CHECK_OK(session.AddRule(
      "q5(O1, O2, G) <- Interval(G), Object(O1), Object(O2), "
      "O1 in G.entities, O2 in G.entities, in(O1, O2, G)."));
  Show(session, db, "pairs related by `in` within an interval",
       "?- q5(O1, O2, G).");

  VQLDB_CHECK_OK(session.AddRule(
      "q6(G) <- Interval(G), Object(O), O in G.entities, "
      "O.role = \"Murderer\"."));
  Show(session, db, "intervals containing an object with role Murderer",
       "?- q6(G).");

  // Section 6.2: inferring new relationships.
  VQLDB_CHECK_OK(session.AddRule(
      "contains(G1, G2) <- Interval(G1), Interval(G2), "
      "G2.duration => G1.duration."));
  Show(session, db, "containment between intervals (Section 6.2)",
       "?- contains(G1, G2).");

  VQLDB_CHECK_OK(session.AddRule(
      "whole_movie(G1 ++ G2) <- Interval(G1), Interval(G2), Object(o1), "
      "o1 in G1.entities, o1 in G2.entities, G1.duration => (t < 12)."));
  Show(session, db, "constructive rule: concatenate David's scenes",
       "?- whole_movie(G).");

  // The derived interval is a first-class object:
  for (ObjectId id : db.DerivedIntervals()) {
    std::cout << "derived interval " << db.DisplayName(id) << ": duration "
              << db.DurationOf(id)->ToString() << ", "
              << db.EntitiesOf(id)->size() << " entities\n";
  }

  // Round-trip the archive through the text format.
  auto text = TextFormat::Dump(db);
  VQLDB_CHECK_OK(text.status());
  std::cout << "\n-- text archive (loadable, Section 5.2 notation) --\n"
            << *text;
  return 0;
}
