// Virtual editing: composing new, presentable sequences from query answers
// — the application the paper motivates via [29] and supports through
// constructive rules ("to build new sequences from others", Section 7).
//
// The workflow: annotate an interview archive, query for every moment two
// people share the screen, cut a highlight reel from the answers, cap each
// cut for a trailer, and materialize the edit as a first-class interval
// object that later rules can query.
//
// Run: ./build/examples/virtual_editing

#include <iostream>

#include "src/common/logging.h"

#include "src/engine/query.h"
#include "src/video/annotator.h"
#include "src/video/virtual_editing.h"

using namespace vqldb;

int main() {
  VideoDatabase db;
  Annotator annotator(&db);

  // A 300-second interview programme.
  VQLDB_CHECK_OK(annotator.AddEntity("host", {{"role", Value::String("host")}})
                     .status());
  VQLDB_CHECK_OK(
      annotator.AddEntity("guest", {{"role", Value::String("guest")}})
          .status());
  VQLDB_CHECK_OK(
      annotator.AddEntity("band", {{"role", Value::String("music")}})
          .status());

  auto scene = [&](const char* symbol, double begin, double end,
                   std::vector<std::string> people, const char* subject) {
    VQLDB_CHECK_OK(annotator
                       .AnnotateScene(symbol,
                                      GeneralizedInterval::Single(begin, end),
                                      people, subject)
                       .status());
  };
  scene("opening", 0, 30, {"host"}, "monologue");
  scene("interview1", 30, 120, {"host", "guest"}, "interview");
  scene("musical", 120, 180, {"band"}, "performance");
  scene("interview2", 180, 260, {"host", "guest"}, "interview");
  scene("closing", 260, 300, {"host", "guest", "band"}, "farewell");

  QuerySession session(&db);

  // Find every scene where host and guest share the screen.
  VQLDB_CHECK_OK(session.AddRule(
      "shared(G) <- Interval(G), {host, guest} subset G.entities."));
  auto shared = session.Query("?- shared(G).");
  VQLDB_CHECK_OK(shared.status());
  std::cout << "scenes with host and guest together: " << shared->rows.size()
            << "\n";

  // Cut list from the answer set.
  auto reel = SequenceFromQueryColumn(db, *shared, 0);
  VQLDB_CHECK_OK(reel.status());
  std::cout << "full reel:   " << reel->ToString() << "  ("
            << reel->TotalDuration() << "s)\n";

  // Trailer: first 10 seconds of each cut.
  EditList trailer = ClampFragments(*reel, 10);
  std::cout << "trailer:     " << trailer.ToString() << "  ("
            << trailer.TotalDuration() << "s)\n";

  // Materialize the reel; it becomes part of the archive.
  auto reel_gi = MaterializeSequence(&db, "interview_reel", *reel,
                                     {shared->rows[0][0].oid_value()});
  VQLDB_CHECK_OK(reel_gi.status());
  session.Invalidate();

  // The same result, derived *inside* the language with a constructive
  // rule (Section 6.2's concatenate_Gintervals).
  VQLDB_CHECK_OK(session.AddRule(
      "reel(G1 ++ G2) <- Interval(G1), Interval(G2), "
      "{host, guest} subset G1.entities, {host, guest} subset G2.entities."));
  auto constructed = session.Query("?- reel(G).");
  VQLDB_CHECK_OK(constructed.status());
  std::cout << "\nconstructive rule produced " << constructed->rows.size()
            << " sequence objects; widest:\n";
  double best = -1;
  ObjectId best_id;
  for (const auto& row : constructed->rows) {
    IntervalSet d = *db.DurationOf(row[0].oid_value());
    if (d.Measure() > best) {
      best = d.Measure();
      best_id = row[0].oid_value();
    }
  }
  std::cout << "   " << db.DisplayName(best_id) << " = "
            << db.DurationOf(best_id)->ToString() << "\n";

  // Edited sequences are queryable like any other interval.
  VQLDB_CHECK_OK(session.AddRule(
      "covers_closing(G) <- Interval(G), "
      "(t >= 260 and t <= 300) => G.duration."));
  auto covers = session.Query("?- covers_closing(G).");
  VQLDB_CHECK_OK(covers.status());
  std::cout << "\nsequences covering the closing segment: ";
  for (const auto& row : covers->rows) {
    std::cout << db.DisplayName(row[0].oid_value()) << " ";
  }
  std::cout << "\n";
  return 0;
}
