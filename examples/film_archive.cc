// Film archive: a national audio-visual institute scenario (the paper's
// Section 1 motivation) exercising the library's extensions together —
// the taxonomy library (classification/generalization), temporal relation
// operators, aggregates over answer sets, and the snapshot + journal
// durability story.
//
// Run: ./build/examples/film_archive

#include <filesystem>
#include <iostream>

#include "src/common/logging.h"
#include "src/engine/aggregates.h"
#include "src/engine/query.h"
#include "src/storage/binary_format.h"
#include "src/storage/catalog.h"
#include "src/storage/journal.h"

using namespace vqldb;

namespace {

constexpr const char* kArchive = R"(
  // Genre taxonomy (class objects + isa edges).
  object film {}.
  object thriller {}.
  object documentary {}.
  object psych_thriller {}.
  isa(thriller, film).
  isa(documentary, film).
  isa(psych_thriller, thriller).

  // The holdings.
  object rope { title: "The Rope", year: 1948, minutes: 80 }.
  object vertigo { title: "Vertigo", year: 1958, minutes: 128 }.
  object nanook { title: "Nanook of the North", year: 1922, minutes: 78 }.
  has_class(rope, psych_thriller).
  has_class(vertigo, psych_thriller).
  has_class(nanook, documentary).

  // Digitized reels on the institute's master timeline (seconds).
  interval reel_rope { duration: (t >= 0 and t <= 4800),
                       entities: {rope} }.
  interval reel_vertigo { duration: (t >= 5000 and t <= 12680),
                          entities: {vertigo} }.
  interval reel_nanook { duration: (t >= 13000 and t <= 17680),
                         entities: {nanook} }.
  // A retrospective block spliced from two reels.
  interval retrospective { duration: (t >= 0 and t <= 4800) or
                                     (t >= 5000 and t <= 12680),
                           entities: {rope, vertigo},
                           subject: "Hitchcock retrospective" }.

  minutes_of(rope, 80).
  minutes_of(vertigo, 128).
  minutes_of(nanook, 78).
)";

}  // namespace

int main() {
  VideoDatabase db;
  QuerySession session(&db);
  VQLDB_CHECK_OK(session.Load(kArchive));
  VQLDB_CHECK_OK(session.Load(TaxonomyRuleLibrary()));
  VQLDB_CHECK_OK(session.Load(StandardRuleLibrary()));

  // Class-level retrieval: "footage of thrillers" without naming films.
  auto thrillers = session.Query("?- appears_kind(thriller, G).");
  VQLDB_CHECK_OK(thrillers.status());
  std::cout << "reels containing thrillers:\n" << thrillers->ToString(&db);

  // Aggregate the retrieved footage.
  auto total = aggregates::TotalDuration(db, *thrillers, 0);
  VQLDB_CHECK_OK(total.status());
  std::cout << "total thriller footage (overlap counted once): " << *total
            << "s\n\n";

  // Temporal relations between reels.
  VQLDB_CHECK_OK(session.AddRule(
      "airs_before(G1, G2) <- Interval(G1), Interval(G2), "
      "G1.duration before G2.duration."));
  auto order = session.Query("?- airs_before(reel_rope, G).");
  VQLDB_CHECK_OK(order.status());
  std::cout << "reels scheduled after The Rope: " << order->rows.size()
            << "\n";

  // Aggregates over plain answer sets.
  VQLDB_CHECK_OK(session.AddRule(
      "classified(F, C) <- instance_of(F, C), minutes_of(F, M)."));
  auto classified = session.Query("?- classified(F, C).");
  VQLDB_CHECK_OK(classified.status());
  auto per_class = aggregates::GroupCount(*classified, 1);
  VQLDB_CHECK_OK(per_class.status());
  std::cout << "\nholdings per class (closed under generalization):\n";
  for (const auto& [cls, count] : *per_class) {
    std::cout << "  " << db.DisplayName(cls.oid_value()) << ": " << count
              << "\n";
  }
  auto runtime = session.Query("?- minutes_of(F, M).");
  VQLDB_CHECK_OK(runtime.status());
  std::cout << "catalogued runtime: " << *aggregates::Sum(*runtime, 1)
            << " minutes across " << aggregates::Count(*runtime)
            << " films\n";

  // Durability: snapshot now, journal the late addition, recover both.
  std::string snapshot = "/tmp/film_archive.vqdb";
  std::string journal_path = "/tmp/film_archive.log";
  std::filesystem::remove(journal_path);
  VQLDB_CHECK_OK(BinaryFormat::Save(db, snapshot));
  {
    auto journal = Journal::Open(journal_path);
    VQLDB_CHECK_OK(journal.status());
    VQLDB_CHECK_OK(journal->Append(
        "object psycho { title: \"Psycho\", year: 1960, minutes: 109 }."));
    VQLDB_CHECK_OK(journal->Append("has_class(psycho, psych_thriller)."));
  }
  auto recovered = Journal::Recover(snapshot, journal_path);
  VQLDB_CHECK_OK(recovered.status());
  std::cout << "\nrecovered archive: " << recovered->Entities().size()
            << " objects (snapshot " << db.Entities().size()
            << " + journal tail)\n";
  return 0;
}
