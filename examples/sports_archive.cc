// Sports archive: a football-match archive showing schema-less modeling
// (events with different attribute sets, as in [1]'s AVIS examples),
// relations among objects within intervals, recursion over derived
// relations, and persistence of the whole archive.
//
// Run: ./build/examples/sports_archive

#include <iostream>

#include "src/common/logging.h"

#include "src/engine/query.h"
#include "src/storage/binary_format.h"
#include "src/storage/text_format.h"

using namespace vqldb;

namespace {

constexpr const char* kMatch = R"(
  // Players and staff — objects carry whatever attributes fit them.
  object keeper   { name: "Olsen", team: "blue", position: "goalkeeper" }.
  object striker  { name: "Abara", team: "red", position: "forward",
                    shirt: 9 }.
  object winger   { name: "Costa", team: "red", position: "winger",
                    shirt: 11 }.
  object referee  { name: "Meyer" }.

  // Annotated match phases (seconds from kickoff).
  interval warmup   { duration: (t >= 0 and t < 900),
                      entities: {keeper, striker, winger},
                      phase: "warmup" }.
  interval firsthalf { duration: (t >= 900 and t < 3600),
                       entities: {keeper, striker, winger, referee},
                       phase: "play" }.
  // The goal: a non-continuous scene — the build-up and the replay.
  interval goal     { duration: (t >= 2100 and t <= 2112) or
                                (t >= 2160 and t <= 2190),
                      entities: {keeper, striker, winger},
                      phase: "play", event: "goal", scorer: striker,
                      assist: winger }.
  interval secondhalf { duration: (t >= 4500 and t < 7200),
                        entities: {keeper, striker, winger, referee},
                        phase: "play" }.

  // Relations among objects within intervals (R in the 7-tuple).
  passes_to(winger, striker, goal).
  beats(striker, keeper, goal).
  books(referee, striker, secondhalf).
)";

}  // namespace

int main() {
  VideoDatabase db;
  QuerySession session(&db);
  VQLDB_CHECK_OK(session.Load(kMatch));

  std::cout << "match archive: " << db.Entities().size() << " people, "
            << db.BaseIntervals().size() << " annotated intervals, "
            << db.fact_count() << " facts\n\n";

  // Who was involved in the goal, and how?
  VQLDB_CHECK_OK(session.AddRule(
      "involved(O, R) <- Interval(G), Object(O), Anyobject(R), "
      "O in G.entities, passes_to(O, R, G)."));
  auto passes = session.Query("?- involved(O, R).");
  VQLDB_CHECK_OK(passes.status());
  std::cout << "passes in the goal scene:\n" << passes->ToString(&db);

  // The goal happened during the first half: temporal entailment.
  VQLDB_CHECK_OK(session.AddRule(
      "during_phase(E, P) <- Interval(E), Interval(P), "
      "E.duration => P.duration, E != P."));
  auto during = session.Query("?- during_phase(goal, P).");
  VQLDB_CHECK_OK(during.status());
  std::cout << "\nthe goal lies within: " << during->ToString(&db);

  // Attribute-based retrieval across teams.
  VQLDB_CHECK_OK(session.AddRule(
      "red_on_screen(O, G) <- Interval(G), Object(O), O in G.entities, "
      "O.team = \"red\"."));
  auto reds = session.Query("?- red_on_screen(O, goal).");
  VQLDB_CHECK_OK(reds.status());
  std::cout << "\nred players in the goal scene: " << reds->ToString(&db);

  // A chain: who contributed to a goal a booked player scored?
  VQLDB_CHECK_OK(session.AddRule(
      "contributed(O, G) <- Interval(G), Object(O), passes_to(O, S, G)."));
  VQLDB_CHECK_OK(session.AddRule(
      "booked(O) <- Interval(G), Object(O), books(R, O, G)."));
  VQLDB_CHECK_OK(session.AddRule(
      "assist_to_booked(O) <- contributed(O, G), Object(S), "
      "passes_to(O, S, G), booked(S)."));
  auto assists = session.Query("?- assist_to_booked(O).");
  VQLDB_CHECK_OK(assists.status());
  std::cout << "\nassisted a (later booked) scorer: " << assists->ToString(&db);

  // Persist both ways and verify.
  VQLDB_CHECK_OK(TextFormat::DumpToFile(db, "/tmp/match.vql"));
  VQLDB_CHECK_OK(BinaryFormat::Save(db, "/tmp/match.vqdb"));
  auto restored = BinaryFormat::Load("/tmp/match.vqdb");
  VQLDB_CHECK_OK(restored.status());
  std::cout << "\narchive saved to /tmp/match.vql (text) and /tmp/match.vqdb"
               " (binary, "
            << restored->Entities().size() << " entities restored)\n";
  return 0;
}
